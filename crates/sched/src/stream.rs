//! [`PolicyCursor`]: an [`AllocationPolicy`] viewed as a box stream.
//!
//! The scheduler simulator drives policies round by round across *live*
//! co-tenants; the service layer needs the opposite view — **one** job's
//! share sequence as a [`RunCursor`] it can compose with `cancellable` /
//! `take_boxes` and drain through the engine. The cursor fixes a virtual
//! tenant count up front, so the share a job sees in round `r` is a pure
//! function of its own spec (policy, tenants, slot, total cache) and not
//! of which other jobs happen to be in flight. That purity is what makes
//! crash recovery byte-identical: replaying a journaled job after a
//! `kill -9` re-derives exactly the share sequence the lost run saw.

use crate::policy::AllocationPolicy;
use cadapt_core::{Blocks, BoxRun, Cancelled, CoreError, RunCursor};

/// An infinite [`RunCursor`] yielding, round by round, the share an
/// [`AllocationPolicy`] grants tenant `slot` out of `tenants` virtual
/// co-tenants splitting `total` blocks.
///
/// Rounds advance one box per [`RunCursor::next_run`] call; shares are
/// floored at one block (a starved tenant crawls, it does not wedge),
/// matching the run-positivity law every downstream consumer relies on.
#[derive(Debug)]
pub struct PolicyCursor<P> {
    policy: P,
    tenants: usize,
    slot: usize,
    total: Blocks,
    round: u64,
}

impl<P: AllocationPolicy> PolicyCursor<P> {
    /// View `policy` as tenant `slot`'s share stream among `tenants`
    /// virtual co-tenants splitting `total` blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `tenants` is zero, `slot` is
    /// out of range, or `total` is zero.
    pub fn new(policy: P, tenants: usize, slot: usize, total: Blocks) -> Result<Self, CoreError> {
        if tenants == 0 {
            return Err(CoreError::InvalidParameter {
                name: "tenants",
                message: "PolicyCursor tenants must be >= 1".to_string(),
            });
        }
        if slot >= tenants {
            return Err(CoreError::InvalidParameter {
                name: "slot",
                message: format!("PolicyCursor slot {slot} out of range for {tenants} tenants"),
            });
        }
        if total == 0 {
            return Err(CoreError::InvalidParameter {
                name: "total",
                message: "PolicyCursor total cache must be >= 1 block".to_string(),
            });
        }
        Ok(PolicyCursor {
            policy,
            tenants,
            slot,
            total,
            round: 0,
        })
    }

    /// The policy's label (for reports and journals).
    #[must_use]
    pub fn label(&self) -> String {
        self.policy.label()
    }
}

impl<P: AllocationPolicy> RunCursor for PolicyCursor<P> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        let shares = self.policy.allocate(self.tenants, self.total, self.round);
        self.round += 1;
        // Policies promise one share per live tenant; a short vector is a
        // policy bug we degrade to a crawl share rather than a wedge.
        let share = shares.get(self.slot).copied().unwrap_or(1).max(1);
        Ok(Some(BoxRun {
            size: share,
            repeat: 1,
        }))
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        // Policies allocate forever; finiteness comes from composing
        // `take_boxes` (budget) or `cancellable` (deadline) downstream.
        (u64::MAX, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EqualShares, WinnerTakeAll};
    use cadapt_core::{CancelToken, RunCursorExt};

    fn drain(c: &mut impl RunCursor, boxes: usize) -> Vec<Blocks> {
        let mut out = Vec::new();
        while out.len() < boxes {
            let run = c.next_run().expect("not cancelled").expect("infinite");
            for _ in 0..run.repeat.min((boxes - out.len()) as u64) {
                out.push(run.size);
            }
        }
        out
    }

    #[test]
    fn equal_shares_stream_is_constant() {
        let mut c = PolicyCursor::new(EqualShares, 4, 2, 64).unwrap();
        assert_eq!(drain(&mut c, 5), vec![16; 5]);
        assert_eq!(c.size_hint(), (u64::MAX, None));
    }

    #[test]
    fn winner_take_all_stream_rotates_by_slot() {
        let mut slot0 = PolicyCursor::new(WinnerTakeAll { reign: 2 }, 2, 0, 100).unwrap();
        let mut slot1 = PolicyCursor::new(WinnerTakeAll { reign: 2 }, 2, 1, 100).unwrap();
        assert_eq!(drain(&mut slot0, 4), vec![99, 99, 1, 1]);
        assert_eq!(drain(&mut slot1, 4), vec![1, 1, 99, 99]);
    }

    #[test]
    fn stream_is_a_pure_function_of_the_spec() {
        let mut a = PolicyCursor::new(WinnerTakeAll { reign: 3 }, 3, 1, 64).unwrap();
        let mut b = PolicyCursor::new(WinnerTakeAll { reign: 3 }, 3, 1, 64).unwrap();
        assert_eq!(drain(&mut a, 12), drain(&mut b, 12));
    }

    #[test]
    fn composes_with_budget_and_cancellation() {
        let token = CancelToken::new();
        let mut c = PolicyCursor::new(EqualShares, 2, 0, 32)
            .unwrap()
            .take_boxes(3)
            .cancellable(token.clone());
        assert_eq!(drain(&mut c, 3), vec![16, 16, 16]);
        assert_eq!(c.next_run(), Ok(None));
        token.cancel();
        assert_eq!(c.next_run(), Err(Cancelled));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(PolicyCursor::new(EqualShares, 0, 0, 64).is_err());
        assert!(PolicyCursor::new(EqualShares, 2, 2, 64).is_err());
        assert!(PolicyCursor::new(EqualShares, 2, 0, 0).is_err());
    }
}
