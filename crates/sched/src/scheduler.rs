//! The round-based co-scheduler.

use crate::job::{Job, JobOutcome, JobSpec};
use crate::policy::AllocationPolicy;
use cadapt_core::{Blocks, CoreError, Io};
use cadapt_recursion::ExecModel;
use serde::{Deserialize, Serialize};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Total cache blocks shared by the jobs.
    pub total_cache: Blocks,
    /// Execution model for the jobs.
    pub model: ExecModel,
    /// Abort after this many rounds (safety net).
    pub max_rounds: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            total_cache: 1024,
            model: ExecModel::capacity(),
            max_rounds: 50_000_000,
        }
    }
}

/// A batch of jobs sharing one cache under one policy.
pub struct Scheduler<P> {
    jobs: Vec<Job>,
    policy: P,
    config: SchedulerConfig,
}

impl<P> std::fmt::Debug for Scheduler<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("jobs", &self.jobs)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Outcome of a completed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Per-job summaries, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Rounds executed.
    pub rounds: u64,
    /// Total I/Os across the (serialising) bus.
    pub bus_io: Io,
}

impl ScheduleResult {
    /// Aggregate base-case throughput: total progress per bus I/O.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.bus_io == 0 {
            return 0.0;
        }
        let progress: f64 = self.jobs.iter().map(|j| j.progress as f64).sum();
        progress / self.bus_io as f64
    }

    /// Makespan-style metric: bus I/Os until every job finished.
    #[must_use]
    pub fn total_io(&self) -> Io {
        self.bus_io
    }

    /// The worst per-job Eq. 2 ratio — the job the schedule hurt the most.
    #[must_use]
    pub fn worst_ratio(&self) -> f64 {
        self.jobs.iter().map(JobOutcome::ratio).fold(0.0, f64::max)
    }

    /// Jain's fairness index over per-job progress rates (1 = perfectly
    /// fair, 1/k = one job got everything).
    #[must_use]
    pub fn fairness(&self) -> f64 {
        let rates: Vec<f64> = self
            .jobs
            .iter()
            .map(|j| {
                if j.io_used == 0 {
                    0.0
                } else {
                    j.progress as f64 / j.io_used as f64
                }
            })
            .collect();
        let sum: f64 = rates.iter().sum();
        let sum_sq: f64 = rates.iter().map(|r| r * r).sum();
        // cadapt-lint: allow(float-eq) -- sentinel: sum_sq is exactly 0.0 only when every rate is zero; division guard for the fairness index
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (rates.len() as f64 * sum_sq)
    }
}

impl<P: AllocationPolicy> Scheduler<P> {
    /// Admit `specs` as jobs under `policy`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] for non-canonical problem sizes.
    pub fn new(specs: &[JobSpec], policy: P, config: SchedulerConfig) -> Result<Self, CoreError> {
        let jobs = specs
            .iter()
            .map(|&spec| Job::start(spec, config.model))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scheduler {
            jobs,
            policy,
            config,
        })
    }

    /// Run every job to completion.
    ///
    /// Each round: the policy splits the cache among the *live* jobs, each
    /// live job consumes its share as one box, and the bus time advances by
    /// the sum of consumed I/Os (a single shared memory channel).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `max_rounds` is exceeded.
    pub fn run(mut self) -> Result<ScheduleResult, CoreError> {
        let mut rounds: u64 = 0;
        let mut bus_io: Io = 0;
        loop {
            let live: Vec<usize> = (0..self.jobs.len())
                .filter(|&i| !self.jobs[i].is_done())
                .collect();
            if live.is_empty() {
                break;
            }
            if rounds >= self.config.max_rounds {
                return Err(CoreError::InvalidParameter {
                    name: "max_rounds",
                    message: format!(
                        "schedule did not finish within {} rounds",
                        self.config.max_rounds
                    ),
                });
            }
            let shares = self
                .policy
                .allocate(live.len(), self.config.total_cache, rounds);
            debug_assert_eq!(shares.len(), live.len());
            for (&job_idx, &share) in live.iter().zip(&shares) {
                bus_io += self.jobs[job_idx].grant(share);
            }
            rounds += 1;
        }
        Ok(ScheduleResult {
            jobs: self.jobs.iter().map(Job::outcome).collect(),
            rounds,
            bus_io,
        })
    }
}

/// The single-tenant baseline: run one spec alone with the whole cache;
/// its bus I/O is the denominator for utilisation comparisons.
///
/// # Errors
///
/// Propagates [`CoreError`] for non-canonical sizes or exhausted rounds.
pub fn run_alone(spec: JobSpec, config: SchedulerConfig) -> Result<ScheduleResult, CoreError> {
    Scheduler::new(&[spec], crate::policy::EqualShares, config)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ChurnShares, EqualShares, WinnerTakeAll};
    use cadapt_recursion::AbcParams;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn specs(params: AbcParams, n: u64, count: usize) -> Vec<JobSpec> {
        vec![JobSpec::new(params, n); count]
    }

    #[test]
    fn all_jobs_finish_under_equal_shares() {
        let result = Scheduler::new(
            &specs(AbcParams::mm_scan(), 256, 4),
            EqualShares,
            SchedulerConfig {
                total_cache: 128,
                ..SchedulerConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(result.jobs.iter().all(|j| j.done));
        assert_eq!(result.jobs.len(), 4);
        let total_progress: u128 = result.jobs.iter().map(|j| j.progress).sum();
        assert_eq!(total_progress, 4 * 4096); // 4 jobs × 256^1.5 leaves
    }

    #[test]
    fn departures_grow_survivor_shares() {
        // One small job departs early; the big job must then receive
        // larger boxes. Detect via the big job's final ratio being better
        // than an always-half-cache run.
        let mixed = vec![
            JobSpec::new(AbcParams::mm_scan(), 1024),
            JobSpec::new(AbcParams::mm_scan(), 16),
        ];
        let config = SchedulerConfig {
            total_cache: 512,
            ..SchedulerConfig::default()
        };
        let result = Scheduler::new(&mixed, EqualShares, config)
            .unwrap()
            .run()
            .unwrap();
        assert!(result.jobs.iter().all(|j| j.done));
        // The big job eventually ran with the full cache: it received at
        // least one box bigger than the half-cache share.
        let big = &result.jobs[0];
        assert!(big.bounded_potential > 0.0);
        assert!(result.rounds >= 2);
    }

    #[test]
    fn winner_take_all_hurts_fairness() {
        let config = SchedulerConfig {
            total_cache: 256,
            ..SchedulerConfig::default()
        };
        let equal = Scheduler::new(&specs(AbcParams::mm_inplace(), 256, 4), EqualShares, config)
            .unwrap()
            .run()
            .unwrap();
        let wta = Scheduler::new(
            &specs(AbcParams::mm_inplace(), 256, 4),
            WinnerTakeAll { reign: 4 },
            config,
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            wta.fairness() <= equal.fairness() + 1e-9,
            "wta {} vs equal {}",
            wta.fairness(),
            equal.fairness()
        );
    }

    #[test]
    fn churn_completes_and_is_deterministic_per_seed() {
        let config = SchedulerConfig {
            total_cache: 512,
            ..SchedulerConfig::default()
        };
        let run = |seed| {
            Scheduler::new(
                &specs(AbcParams::strassen(), 256, 3),
                ChurnShares::new(ChaCha8Rng::seed_from_u64(seed)),
                config,
            )
            .unwrap()
            .run()
            .unwrap()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).bus_io, run(4).bus_io);
    }

    #[test]
    fn run_alone_is_the_best_case() {
        let spec = JobSpec::new(AbcParams::mm_scan(), 256);
        let config = SchedulerConfig {
            total_cache: 512,
            ..SchedulerConfig::default()
        };
        let alone = run_alone(spec, config).unwrap();
        assert!(alone.jobs[0].done);
        // Alone with cache ≥ n: one box, optimal ratio.
        assert_eq!(alone.jobs[0].boxes_received, 1);
        assert!((alone.jobs[0].ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn round_cap_errors() {
        let config = SchedulerConfig {
            total_cache: 8,
            max_rounds: 2,
            ..SchedulerConfig::default()
        };
        let err = Scheduler::new(&specs(AbcParams::mm_scan(), 1024, 2), EqualShares, config)
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("2 rounds"));
    }

    #[test]
    fn throughput_and_fairness_are_sane() {
        let config = SchedulerConfig {
            total_cache: 256,
            ..SchedulerConfig::default()
        };
        let result = Scheduler::new(&specs(AbcParams::mm_inplace(), 256, 2), EqualShares, config)
            .unwrap()
            .run()
            .unwrap();
        assert!(result.throughput() > 0.0);
        let f = result.fairness();
        assert!((0.5..=1.0 + 1e-9).contains(&f), "fairness {f}");
    }
}
