//! A job: one (a, b, c)-regular execution in flight.

use cadapt_core::{Blocks, CoreError, Io, Leaves, Potential};
use cadapt_recursion::{cursor_for, AbcParams, ExecCursor, ExecModel};
use serde::{Deserialize, Serialize};

/// What to run: algorithm parameters and problem size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The algorithm.
    pub params: AbcParams,
    /// Problem size in blocks (must be canonical for `params`).
    pub n: Blocks,
}

impl JobSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(params: AbcParams, n: Blocks) -> Self {
        JobSpec { params, n }
    }
}

/// A live job in the scheduler.
#[derive(Debug, Clone)]
pub struct Job {
    spec: JobSpec,
    cursor: ExecCursor,
    model: ExecModel,
    /// Boxes (rounds with a non-zero share) this job has received.
    boxes_received: u64,
    /// Σ min(n, share)^{log_b a} over received boxes — the Eq. 2 charge.
    bounded_potential: f64,
    /// I/Os actually consumed on the shared bus.
    io_used: Io,
    /// Base cases completed.
    progress: Leaves,
}

impl Job {
    /// Start a job.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `spec.n` is not canonical.
    pub fn start(spec: JobSpec, model: ExecModel) -> Result<Self, CoreError> {
        Ok(Job {
            spec,
            // Shared closed-form tables from the process-wide cache — k
            // co-scheduled jobs of one mix build them once, not k times.
            cursor: cursor_for(spec.params, spec.n)?,
            model,
            boxes_received: 0,
            bounded_potential: 0.0,
            io_used: 0,
            progress: 0,
        })
    }

    /// The job's specification.
    #[must_use]
    pub fn spec(&self) -> JobSpec {
        self.spec
    }

    /// Has the job completed?
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
    }

    /// Fraction of the serial execution completed, in [0, 1].
    #[must_use]
    pub fn completion(&self) -> f64 {
        let total = self.cursor.closed_forms().total_time();
        if total == 0 {
            return 1.0;
        }
        self.cursor.serial_position() as f64 / total as f64
    }

    /// Give the job one box of `share` blocks (a share of 0 skips the
    /// round). Returns the I/Os it consumed.
    pub fn grant(&mut self, share: Blocks) -> Io {
        if share == 0 || self.is_done() {
            return 0;
        }
        let rho = Potential::new(self.spec.params.a(), self.spec.params.b());
        self.bounded_potential += rho.bounded(self.spec.n, share);
        self.boxes_received += 1;
        let out = self.model.advance(&mut self.cursor, share);
        self.io_used += out.used;
        self.progress += out.progress;
        out.used
    }

    /// Finish-line summary of the job so far.
    #[must_use]
    pub fn outcome(&self) -> JobOutcome {
        let rho = Potential::new(self.spec.params.a(), self.spec.params.b());
        JobOutcome {
            spec: self.spec,
            done: self.is_done(),
            boxes_received: self.boxes_received,
            io_used: self.io_used,
            progress: self.progress,
            bounded_potential: self.bounded_potential,
            required_progress: rho.required_progress(self.spec.n),
        }
    }
}

/// Summary of one job's run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// What ran.
    pub spec: JobSpec,
    /// Whether it completed.
    pub done: bool,
    /// Boxes (rounds with cache) received.
    pub boxes_received: u64,
    /// I/Os consumed on the bus.
    pub io_used: Io,
    /// Base cases completed.
    pub progress: Leaves,
    /// Σ min(n, share)^{log_b a} over received boxes.
    pub bounded_potential: f64,
    /// n^{log_b a} — the progress obligation.
    pub required_progress: f64,
}

impl JobOutcome {
    /// The job's Eq. 2 adaptivity ratio (only meaningful once done).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        // cadapt-lint: allow(float-eq) -- sentinel: required_progress is exactly 0.0 only for an empty job; division guard
        if self.required_progress == 0.0 {
            return 0.0;
        }
        self.bounded_potential / self.required_progress
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    fn job(n: Blocks) -> Job {
        Job::start(JobSpec::new(AbcParams::mm_scan(), n), ExecModel::capacity()).unwrap()
    }

    #[test]
    fn lifecycle() {
        let mut j = job(64);
        assert!(!j.is_done());
        assert_eq!(j.completion(), 0.0);
        // One huge grant completes it.
        let used = j.grant(1 << 20);
        assert!(used > 0);
        assert!(j.is_done());
        assert_eq!(j.completion(), 1.0);
        let outcome = j.outcome();
        assert!(outcome.done);
        assert_eq!(outcome.progress, 512);
        assert_eq!(outcome.boxes_received, 1);
    }

    #[test]
    fn zero_share_skips() {
        let mut j = job(64);
        assert_eq!(j.grant(0), 0);
        assert_eq!(j.outcome().boxes_received, 0);
    }

    #[test]
    fn grants_accumulate_potential() {
        let mut j = job(64);
        while !j.is_done() {
            let _ = j.grant(16);
        }
        let outcome = j.outcome();
        // Same trajectory as the single-run driver: ratio 1.5 (see the
        // recursion crate's constant-box test).
        assert!((outcome.ratio() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn grants_after_done_are_ignored() {
        let mut j = job(16);
        let _ = j.grant(1 << 20);
        assert!(j.is_done());
        assert_eq!(j.grant(64), 0);
        assert_eq!(j.outcome().boxes_received, 1);
    }

    #[test]
    fn bad_size_rejected() {
        assert!(Job::start(
            JobSpec::new(AbcParams::mm_scan(), 63),
            ExecModel::capacity()
        )
        .is_err());
    }
}
