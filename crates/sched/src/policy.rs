//! Cache-allocation policies: who gets how much of the shared cache.

use cadapt_core::Blocks;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A policy assigning each live job a share of the machine's `total`
/// blocks for the coming round. Shares must sum to at most `total`;
/// a job may receive 0 (it idles that round).
pub trait AllocationPolicy {
    /// Compute shares for `live` jobs (identified by index). `round` is the
    /// scheduler's round counter.
    fn allocate(&mut self, live: usize, total: Blocks, round: u64) -> Vec<Blocks>;

    /// Human-readable label for tables.
    fn label(&self) -> String;
}

/// Fair static partitioning: every live job gets ⌊total / live⌋.
///
/// When a job finishes, the survivors' shares grow automatically — the
/// redistribution the paper's intro describes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualShares;

impl AllocationPolicy for EqualShares {
    fn allocate(&mut self, live: usize, total: Blocks, _round: u64) -> Vec<Blocks> {
        if live == 0 {
            return Vec::new();
        }
        vec![(total / live as u64).max(1); live]
    }

    fn label(&self) -> String {
        "equal-shares".to_string()
    }
}

/// Random churn: each round the shares are a fresh random split of the
/// cache (a symmetric Dirichlet-ish split via stick breaking on uniform
/// weights). Models bursty co-tenants grabbing and releasing cache.
#[derive(Debug)]
pub struct ChurnShares {
    rng: ChaCha8Rng, // cadapt-lint: allow(rng-discipline) -- adversary-model randomness, not trial randomness: the policy's draw order is pinned by the round sequence of a single deterministic scheduler run, and the caller seeds it per run
}

impl ChurnShares {
    /// Churning shares driven by the given RNG.
    #[must_use]
    pub fn new(rng: ChaCha8Rng) -> Self {
        ChurnShares { rng }
    }
}

impl AllocationPolicy for ChurnShares {
    // The f64→u64 floor cast saturates by design (shares never exceed `total`).
    #[allow(clippy::cast_possible_truncation)]
    fn allocate(&mut self, live: usize, total: Blocks, _round: u64) -> Vec<Blocks> {
        if live == 0 {
            return Vec::new();
        }
        // Random positive weights, normalised to the total.
        let weights: Vec<f64> = (0..live).map(|_| self.rng.gen_range(0.05..1.0)).collect();
        let sum: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| (((w / sum) * total as f64).floor() as u64).max(1))
            .collect()
    }

    fn label(&self) -> String {
        "churn".to_string()
    }
}

/// Winner-take-all: one job monopolises the cache for a stretch of rounds,
/// then the crown moves on — the cache-residency-imbalance phenomenon
/// (Dice, Marathe, Shavit, SPAA '14) cited in the paper's introduction.
/// Losers receive a single block (they crawl).
#[derive(Debug, Clone, Copy)]
pub struct WinnerTakeAll {
    /// Rounds each winner holds the cache.
    pub reign: u64,
}

impl AllocationPolicy for WinnerTakeAll {
    fn allocate(&mut self, live: usize, total: Blocks, round: u64) -> Vec<Blocks> {
        if live == 0 {
            return Vec::new();
        }
        let winner = cadapt_core::cast::usize_from_u64((round / self.reign.max(1)) % live as u64);
        let loser_share = 1u64;
        let winner_share = total.saturating_sub(loser_share * (live as u64 - 1)).max(1);
        (0..live)
            .map(|i| {
                if i == winner {
                    winner_share
                } else {
                    loser_share
                }
            })
            .collect()
    }

    fn label(&self) -> String {
        format!("winner-take-all({})", self.reign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn equal_shares_split_evenly_and_grow_on_departure() {
        let mut p = EqualShares;
        assert_eq!(p.allocate(4, 64, 0), vec![16, 16, 16, 16]);
        assert_eq!(p.allocate(2, 64, 1), vec![32, 32]);
        assert_eq!(p.allocate(0, 64, 2), Vec::<Blocks>::new());
    }

    #[test]
    fn equal_shares_floor_at_one() {
        let mut p = EqualShares;
        assert_eq!(p.allocate(10, 4, 0), vec![1; 10]);
    }

    #[test]
    fn churn_shares_sum_within_total_and_vary() {
        let mut p = ChurnShares::new(ChaCha8Rng::seed_from_u64(1));
        let a = p.allocate(4, 1000, 0);
        let b = p.allocate(4, 1000, 1);
        assert_ne!(a, b, "churn must churn");
        for shares in [&a, &b] {
            assert!(shares.iter().sum::<u64>() <= 1000 + 4);
            assert!(shares.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn winner_rotates() {
        let mut p = WinnerTakeAll { reign: 2 };
        let r0 = p.allocate(3, 100, 0);
        let r1 = p.allocate(3, 100, 1);
        let r2 = p.allocate(3, 100, 2);
        assert_eq!(r0, r1, "same winner within a reign");
        assert_ne!(r0, r2, "crown moves after the reign");
        assert_eq!(r0.iter().max(), Some(&98));
        assert_eq!(r0.iter().filter(|&&s| s == 1).count(), 2);
    }
}
