//! # cadapt-sched — the system the paper's introduction imagines
//!
//! The paper motivates cache-adaptivity with a systems story: *"If
//! algorithms could gracefully handle changes in their cache allocation,
//! then the system could always fully utilize the cache. Whenever a new
//! task arrives, the system could reclaim some cache from the running
//! tasks… When a task ends, its memory could be distributed among the
//! other tasks."* This crate builds that system as a simulator and
//! quantifies the story (experiment E13):
//!
//! * a [`Job`] is an (a, b, c)-regular execution in flight (driven by the
//!   `cadapt-recursion` cursor);
//! * an [`AllocationPolicy`] splits the machine's cache among the live
//!   jobs each round — equal shares, churning shares, winner-take-all
//!   (the cache-residency-imbalance pathology of Dice et al., cited in
//!   the paper's intro), or a tailored adversary;
//! * the [`Scheduler`] runs rounds: each job receives its allocation as
//!   one box (height = share, width = share I/Os — the square-profile
//!   discipline), the bus serialises the I/Os, and finished jobs release
//!   their share to the survivors.
//!
//! The punchline mirrors the paper: mixes of *adaptive* jobs (MM-Inplace)
//! sustain near-ideal aggregate throughput under any policy, while
//! *non-adaptive* jobs (MM-Scan) lose a logarithmic factor exactly when
//! the allocation pattern happens to resonate with their recursion — and
//! almost never otherwise.
//!
//! This crate is an **extension beyond the paper** (clearly marked as such
//! in DESIGN.md): the paper proves theorems about single jobs on given
//! profiles; here the profiles *emerge* from co-scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod policy;
pub mod scheduler;
pub mod stream;

pub use job::{Job, JobOutcome, JobSpec};
pub use policy::{AllocationPolicy, ChurnShares, EqualShares, WinnerTakeAll};
pub use scheduler::{ScheduleResult, Scheduler, SchedulerConfig};
pub use stream::PolicyCursor;
