//! Property suite for the write-ahead journal: random event logs
//! round-trip byte-exactly through append/close/reopen, truncating a
//! crashed open segment at **every** byte recovers exactly the valid
//! prefix (never an error, never an invented event), and flipping **any**
//! single byte of a sealed segment is detected as typed corruption —
//! silent corruption never replays.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use cadapt_serve::journal::{decode_line, envelope_line};
use cadapt_serve::{
    Algo, JobOutcome, JobResult, JobSpec, Journal, JournalError, JournalEvent, Policy,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per case (parallel test binaries and
/// proptest cases must never share journal dirs).
fn scratch_dir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cadapt-serve-props-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn outcome_from(pick: u64) -> JobOutcome {
    match pick {
        0 => JobOutcome::Completed,
        1 => JobOutcome::Cancelled,
        2 => JobOutcome::DeadlineExceeded,
        3 => JobOutcome::BudgetExhausted,
        _ => JobOutcome::Failed,
    }
}

/// Specs for journaling need not be admissible — the journal stores what
/// it is given — so the generator roams wider than validation allows.
fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        0u64..4,
        0u64..3,
        0u64..1_000_000,
        0u64..4,
        1usize..5,
        0u64..3,
    )
        .prop_map(|(algo, nexp, seed, reign, tenants, extras)| {
            let algo = match algo {
                0 => Algo::MmScan,
                1 => Algo::MmInplace,
                2 => Algo::Strassen,
                _ => Algo::Gep,
            };
            let n = 4u64.pow(u32::try_from(nexp).unwrap_or(0) + 1);
            let policy = if reign == 0 {
                Policy::Equal
            } else {
                Policy::Wta { reign }
            };
            JobSpec {
                algo,
                policy,
                tenants,
                slot: 0,
                seed,
                deadline_ms: (extras == 1).then_some(seed + 1),
                max_boxes: (extras == 2).then_some(seed % 50 + 1),
                max_retries: u32::try_from(seed % 4).unwrap_or(0),
                key: (seed % 5 == 0).then(|| format!("key-{seed}")),
                ..JobSpec::basic(algo, n)
            }
        })
}

fn result_strategy() -> impl Strategy<Value = JobResult> {
    (
        0u64..5,
        1u32..4,
        proptest::collection::vec(1u64..2000, 0..3),
        0u64..10_000,
        (0u64..100_000, 0u64..100_000),
        0u64..64,
    )
        .prop_map(
            |(pick, attempts, backoff_ms, boxes, (io, progress), quarters)| {
                let outcome = outcome_from(pick);
                // Dyadic ratios round-trip exactly through JSON text.
                let ratio = f64::from(u32::try_from(quarters).unwrap_or(0)) * 0.25;
                JobResult {
                    outcome,
                    attempts,
                    backoff_ms,
                    boxes_received: boxes,
                    io_used: u128::from(io),
                    progress: u128::from(progress),
                    ratio,
                    error: (outcome == JobOutcome::Failed).then(|| "injected fault".to_string()),
                }
            },
        )
}

fn event_strategy() -> impl Strategy<Value = JournalEvent> {
    prop_oneof![
        (0u64..50, spec_strategy()).prop_map(|(id, spec)| JournalEvent::Submitted { id, spec }),
        (0u64..50, 0u32..4).prop_map(|(id, attempt)| JournalEvent::Started { id, attempt }),
        (0u64..50).prop_map(|id| JournalEvent::CancelRequested { id }),
        (0u64..50, result_strategy())
            .prop_map(|(id, result)| JournalEvent::Finished { id, result }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every event shape survives the envelope byte-exactly.
    #[test]
    fn envelope_round_trips_any_event(event in event_strategy()) {
        let line = envelope_line(&event);
        prop_assert_eq!(decode_line(&line).unwrap(), event);
    }

    /// Append → (close | crash) → reopen replays exactly what was
    /// appended, at any rotation cadence; recovery is idempotent.
    #[test]
    fn replay_returns_exactly_the_appended_events(
        events in proptest::collection::vec(event_strategy(), 0..10),
        rotate_every in 1u64..6,
        close in 0u64..2,
    ) {
        let dir = scratch_dir("roundtrip");
        let (mut journal, fresh) = Journal::open(&dir, rotate_every).unwrap();
        prop_assert!(fresh.events.is_empty());
        prop_assert!(!fresh.clean_shutdown);
        for event in &events {
            journal.append(event).unwrap();
        }
        let mut expected = events.clone();
        if close == 1 {
            journal.close().unwrap();
            expected.push(JournalEvent::Shutdown);
        } else {
            drop(journal); // crash: the open segment is left behind
        }

        let (second, replay) = Journal::open(&dir, rotate_every).unwrap();
        prop_assert_eq!(&replay.events, &expected);
        prop_assert_eq!(replay.clean_shutdown, close == 1);
        prop_assert!(!replay.dropped_torn_tail);

        // Recovery left only strictly-verifiable state behind: a second
        // crash-and-reopen replays the identical history.
        drop(second);
        let (_, again) = Journal::open(&dir, rotate_every).unwrap();
        prop_assert_eq!(&again.events, &expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A random cut anywhere in a crashed open segment keeps exactly the
    /// newline-terminated prefix of events.
    #[test]
    fn random_truncation_recovers_the_newline_terminated_prefix(
        events in proptest::collection::vec(event_strategy(), 1..5),
        cut_seed in 0u64..10_000,
    ) {
        let dir = scratch_dir("cut");
        let (mut journal, _) = Journal::open(&dir, 1000).unwrap();
        for event in &events {
            journal.append(event).unwrap();
        }
        drop(journal);
        let open = dir.join("wal-00000000.open");
        let full = std::fs::read(&open).unwrap();
        let cut = usize::try_from(cut_seed).unwrap() % full.len();
        std::fs::write(&open, &full[..cut]).unwrap();

        let survivors = full[..cut].iter().filter(|&&b| b == b'\n').count();
        let (_, replay) = Journal::open(&dir, 1000).unwrap();
        prop_assert_eq!(&replay.events, &events[..survivors]);
        prop_assert_eq!(replay.dropped_torn_tail, full[..cut].last().is_some_and(|&b| b != b'\n'));
        prop_assert!(!replay.clean_shutdown);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exhaustive torn-tail sweep: truncate a crashed open segment at EVERY
/// byte offset. Recovery must succeed at all of them, keeping exactly
/// the events whose lines survived complete.
#[test]
fn truncation_at_every_byte_recovers_the_valid_prefix() {
    let events = vec![
        JournalEvent::Submitted {
            id: 0,
            spec: JobSpec {
                seed: 7,
                max_retries: 2,
                key: Some("sweep".to_string()),
                ..JobSpec::basic(Algo::Strassen, 16)
            },
        },
        JournalEvent::Started { id: 0, attempt: 0 },
        JournalEvent::Finished {
            id: 0,
            result: JobResult {
                outcome: JobOutcome::Completed,
                attempts: 1,
                backoff_ms: vec![],
                boxes_received: 9,
                io_used: 1234,
                progress: 4096,
                ratio: 1.25,
                error: None,
            },
        },
    ];
    let staging = scratch_dir("sweep-staging");
    let (mut journal, _) = Journal::open(&staging, 1000).unwrap();
    for event in &events {
        journal.append(event).unwrap();
    }
    drop(journal);
    let full = std::fs::read(staging.join("wal-00000000.open")).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let dir = scratch_dir("sweep");
    for cut in 0..=full.len() {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-00000000.open"), &full[..cut]).unwrap();
        let survivors = full[..cut].iter().filter(|&&b| b == b'\n').count();
        let (_, replay) = Journal::open(&dir, 1000)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got {e}"));
        assert_eq!(
            replay.events,
            events[..survivors],
            "cut at byte {cut}: wrong surviving prefix"
        );
        assert!(!replay.clean_shutdown, "cut at byte {cut}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exhaustive flip sweep: XOR 0x01 into EVERY byte of a cleanly sealed
/// segment. Replay must refuse each variant with a typed
/// [`JournalError::Corrupt`] naming that segment — the CRC envelope,
/// version field, and newline framing leave no silent escape.
#[test]
fn single_byte_flip_in_a_sealed_segment_is_always_detected() {
    let events = vec![
        JournalEvent::Submitted {
            id: 3,
            spec: JobSpec::basic(Algo::MmScan, 64),
        },
        JournalEvent::Started { id: 3, attempt: 0 },
    ];
    let staging = scratch_dir("flip-staging");
    let (mut journal, _) = Journal::open(&staging, 1000).unwrap();
    for event in &events {
        journal.append(event).unwrap();
    }
    journal.close().unwrap();
    let sealed_name = "wal-00000000.log";
    let full = std::fs::read(staging.join(sealed_name)).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let dir = scratch_dir("flip");
    for position in 0..full.len() {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = full.clone();
        bytes[position] ^= 0x01;
        std::fs::write(dir.join(sealed_name), &bytes).unwrap();
        match Journal::open(&dir, 1000) {
            Err(JournalError::Corrupt { segment, .. }) => {
                assert_eq!(segment, sealed_name, "flip at byte {position}");
            }
            Ok((_, replay)) => panic!(
                "SILENT CORRUPTION: flip at byte {position} replayed {} events",
                replay.events.len()
            ),
            Err(other) => panic!("flip at byte {position}: expected Corrupt, got {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wider random flips (any position, any non-zero ASCII-safe mask) on a
/// journal with both sealed and recovered-prefix history: every flip is
/// rejected — Corrupt for in-line damage, and never a silent success.
#[test]
fn random_masked_flips_never_replay_silently() {
    let events = [
        JournalEvent::Submitted {
            id: 0,
            spec: JobSpec::basic(Algo::Gep, 16),
        },
        JournalEvent::CancelRequested { id: 0 },
        JournalEvent::Started { id: 0, attempt: 1 },
        JournalEvent::Shutdown,
    ];
    let staging = scratch_dir("mask-staging");
    // rotate_every 2 → two sealed segments after close().
    let (mut journal, _) = Journal::open(&staging, 2).unwrap();
    for event in &events[..3] {
        journal.append(event).unwrap();
    }
    journal.close().unwrap();
    let first = std::fs::read(staging.join("wal-00000000.log")).unwrap();
    let second = std::fs::read(staging.join("wal-00000001.log")).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let dir = scratch_dir("mask");
    let mut state = 0x5eed_cafe_u64;
    for trial in 0..200 {
        // splitmix-style scramble: deterministic, no RNG crate needed.
        state = state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let in_first = state & 1 == 0;
        let target_len = if in_first { first.len() } else { second.len() };
        let position = usize::try_from((state >> 8) % target_len as u64).unwrap();
        // Masks 0x01..=0x1f keep ASCII bytes valid UTF-8, so the error is
        // always the typed Corrupt, never an opaque read failure.
        let mask = u8::try_from((state >> 40) % 31 + 1).unwrap();

        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut a, mut b) = (first.clone(), second.clone());
        if in_first {
            a[position] ^= mask;
        } else {
            b[position] ^= mask;
        }
        std::fs::write(dir.join("wal-00000000.log"), &a).unwrap();
        std::fs::write(dir.join("wal-00000001.log"), &b).unwrap();
        match Journal::open(&dir, 2) {
            Err(JournalError::Corrupt { .. }) => {}
            Ok(_) => {
                panic!("SILENT CORRUPTION: trial {trial} (mask {mask:#04x} at {position}) replayed")
            }
            Err(other) => panic!("trial {trial}: expected Corrupt, got {other}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
