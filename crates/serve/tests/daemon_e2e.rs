//! In-process end-to-end tests for the daemon: real TCP conversations
//! against a bound daemon exercising the full submit / status / cancel /
//! results / health / drain surface, typed overload and error responses,
//! deadline enforcement, and crash recovery producing results
//! byte-identical to an uninterrupted run.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use cadapt_core::CancelToken;
use cadapt_serve::daemon::request_lines;
use cadapt_serve::{
    run_job, Algo, Daemon, DaemonConfig, HealthReport, JobSpec, Journal, JournalEvent, ServeError,
};
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("cadapt-serve-e2e-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon serving on a background thread; `finish` joins it after the
/// conversation sends `drain`.
struct Live {
    addr: String,
    handle: thread::JoinHandle<Result<(), ServeError>>,
}

fn start(config: DaemonConfig) -> Live {
    let daemon = Daemon::bind(config).expect("daemon binds");
    let addr = daemon.local_addr().to_string();
    let handle = thread::spawn(move || daemon.run());
    Live { addr, handle }
}

fn finish(live: Live) {
    live.handle
        .join()
        .expect("daemon thread exits")
        .expect("daemon drains cleanly");
}

/// Test config: no backoff sleeping, small segments, one worker unless
/// the test raises it.
fn config(dir: &std::path::Path) -> DaemonConfig {
    let mut c = DaemonConfig::new(dir.to_path_buf());
    c.backoff_unit_ms = 0;
    c.rotate_every = 4;
    c.workers = 1;
    c
}

fn ask(addr: &str, lines: &[String]) -> Vec<String> {
    request_lines(addr, lines).expect("conversation completes")
}

fn parse(line: &str) -> Value {
    serde_json::from_str(line).unwrap_or_else(|e| panic!("response not JSON ({e}): {line}"))
}

fn assert_ok(line: &str) -> Value {
    let v = parse(line);
    let ok = v.as_object().and_then(|o| o.get("ok")).cloned();
    assert_eq!(ok, Some(Value::Bool(true)), "expected ok response: {line}");
    v
}

fn error_code(line: &str) -> String {
    let v = parse(line);
    let obj = v.as_object().expect("object response");
    assert_eq!(
        obj.get("ok"),
        Some(&Value::Bool(false)),
        "expected error response: {line}"
    );
    obj.get("error")
        .and_then(Value::as_object)
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("error response without code: {line}"))
        .to_string()
}

/// Extract `result` from a `results` response, rendered compactly (the
/// byte-identity currency of the crash-safety tests).
fn result_bytes(line: &str) -> String {
    assert_ok(line)
        .as_object()
        .and_then(|o| o.get("result"))
        .map(Value::render_compact)
        .unwrap_or_else(|| panic!("results response without result: {line}"))
}

fn result_outcome(line: &str) -> String {
    let v = assert_ok(line);
    v.as_object()
        .and_then(|o| o.get("result"))
        .and_then(Value::as_object)
        .and_then(|r| r.get("outcome"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("results response without outcome: {line}"))
        .to_string()
}

/// The engine's reference answer for a spec, as compact JSON.
fn engine_reference(spec: &JobSpec) -> String {
    serde_json::to_value(&run_job(spec, &CancelToken::new(), 0, &mut |_| {})).render_compact()
}

fn submit(spec: &JobSpec) -> String {
    cadapt_serve::protocol::submit_line(spec)
}

fn id_req(op: &str, id: u64) -> String {
    cadapt_serve::protocol::id_request_line(op, id)
}

fn bare(op: &str) -> String {
    cadapt_serve::protocol::bare_request_line(op)
}

// ------------------------------------------------------------ happy path

#[test]
fn completed_and_budget_results_match_the_engine_byte_for_byte() {
    let dir = scratch_dir("happy");
    let completed = JobSpec {
        total_cache: 16,
        seed: 5,
        ..JobSpec::basic(Algo::MmScan, 64)
    };
    let budgeted = JobSpec {
        total_cache: 8,
        max_boxes: Some(3),
        ..JobSpec::basic(Algo::MmScan, 64)
    };
    let live = start(config(&dir));
    let responses = ask(
        &live.addr,
        &[
            submit(&completed),
            submit(&budgeted),
            bare("drain"),
            id_req("results", 0),
            id_req("results", 1),
        ],
    );
    let first = assert_ok(&responses[0]);
    let first = first.as_object().unwrap();
    assert_eq!(first.get("id").and_then(Value::as_u64), Some(0));
    assert_eq!(first.get("state").and_then(Value::as_str), Some("queued"));
    let drained = assert_ok(&responses[2]);
    assert_eq!(
        drained.as_object().unwrap().get("drained"),
        Some(&Value::Bool(true))
    );
    assert_eq!(result_bytes(&responses[3]), engine_reference(&completed));
    assert_eq!(result_bytes(&responses[4]), engine_reference(&budgeted));
    assert_eq!(result_outcome(&responses[4]), "BudgetExhausted");
    finish(live);

    // The sealed journal carries the whole history plus the marker.
    let (_, replay) = Journal::open(&dir, 4).unwrap();
    assert!(replay.clean_shutdown, "drain must seal a clean shutdown");
    assert!(replay
        .events
        .iter()
        .any(|e| matches!(e, JournalEvent::Finished { id: 0, .. })));
    assert_eq!(replay.events.last(), Some(&JournalEvent::Shutdown));
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------- typed errors

#[test]
fn bad_requests_get_typed_codes_and_never_kill_the_conversation() {
    let dir = scratch_dir("typed");
    let live = start(config(&dir));
    let responses = ask(
        &live.addr,
        &[
            id_req("status", 99),
            "this is not json".to_string(),
            r#"{"op":"submit","spec":{"algo":"MmScan","n":63}}"#.to_string(),
            r#"{"op":"submit","spec":{"algo":"MmScan","n":64,"bogus":1}}"#.to_string(),
            submit(&JobSpec::basic(Algo::MmScan, 64)),
            bare("drain"),
            id_req("results", 7),
        ],
    );
    assert_eq!(error_code(&responses[0]), "unknown-job");
    assert_eq!(error_code(&responses[1]), "protocol");
    assert_eq!(error_code(&responses[2]), "invalid-spec");
    assert_eq!(error_code(&responses[3]), "protocol");
    // After four rejections the same connection still submits fine.
    let ok = assert_ok(&responses[4]);
    assert_eq!(
        ok.as_object().unwrap().get("id").and_then(Value::as_u64),
        Some(0)
    );
    assert_eq!(error_code(&responses[6]), "unknown-job");
    finish(live);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_keys_dedup_to_the_original_id() {
    let dir = scratch_dir("dedup");
    let keyed = JobSpec {
        key: Some("nightly-e1".to_string()),
        ..JobSpec::basic(Algo::MmScan, 64)
    };
    let other = JobSpec {
        key: Some("nightly-e2".to_string()),
        ..JobSpec::basic(Algo::MmInplace, 64)
    };
    let live = start(config(&dir));
    let responses = ask(
        &live.addr,
        &[
            submit(&keyed),
            submit(&keyed),
            submit(&other),
            bare("drain"),
        ],
    );
    let first = assert_ok(&responses[0]);
    let first = first.as_object().unwrap();
    assert_eq!(first.get("id").and_then(Value::as_u64), Some(0));
    assert!(
        first.get("deduped").is_none(),
        "first submit is not a dedup"
    );
    let second = assert_ok(&responses[1]);
    let second = second.as_object().unwrap();
    assert_eq!(second.get("id").and_then(Value::as_u64), Some(0));
    assert_eq!(second.get("deduped"), Some(&Value::Bool(true)));
    let third = assert_ok(&responses[2]);
    assert_eq!(
        third.as_object().unwrap().get("id").and_then(Value::as_u64),
        Some(1),
        "a different key is a different job"
    );
    finish(live);
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------- deadline / cancel / overload

#[test]
fn deadlines_cut_retrying_jobs_off_typed() {
    let dir = scratch_dir("deadline");
    let mut c = config(&dir);
    // Real (scaled-down) backoff sleeps so the wall-clock deadline can
    // fire mid-schedule; the job itself can never complete (8 injected
    // failures with sleeps far past the deadline).
    c.backoff_unit_ms = 2;
    let doomed = JobSpec {
        fail_attempts: 8,
        max_retries: 8,
        seed: 11,
        deadline_ms: Some(15),
        ..JobSpec::basic(Algo::MmScan, 64)
    };
    let live = start(c);
    let responses = ask(
        &live.addr,
        &[submit(&doomed), bare("drain"), id_req("results", 0)],
    );
    assert_eq!(result_outcome(&responses[2]), "DeadlineExceeded");
    finish(live);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_typed_and_cancellation_reaches_queued_and_running_jobs() {
    let dir = scratch_dir("overload");
    let mut c = config(&dir);
    c.workers = 1;
    c.queue_cap = 1;
    c.backoff_unit_ms = 2; // blocker spends ~1.5s in backoff sleeps
    let blocker = JobSpec {
        fail_attempts: 8,
        max_retries: 8,
        seed: 3,
        ..JobSpec::basic(Algo::MmScan, 64)
    };
    let live = start(c);
    assert_ok(&ask(&live.addr, &[submit(&blocker)])[0]);
    // Wait until the single worker has picked the blocker up, so the
    // queue slot below is genuinely contended.
    let mut running = false;
    for _ in 0..500 {
        let status = assert_ok(&ask(&live.addr, &[id_req("status", 0)])[0]);
        if status
            .as_object()
            .unwrap()
            .get("state")
            .and_then(Value::as_str)
            == Some("running")
        {
            running = true;
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    assert!(running, "blocker never started running");

    let responses = ask(
        &live.addr,
        &[
            submit(&JobSpec::basic(Algo::MmScan, 64)), // fills the queue (id 1)
            submit(&JobSpec::basic(Algo::Gep, 64)),    // rejected: queue full
            id_req("cancel", 1),
            id_req("cancel", 0),
            bare("drain"),
            id_req("results", 0),
            id_req("results", 1),
        ],
    );
    assert_ok(&responses[0]);
    assert_eq!(error_code(&responses[1]), "overloaded");
    let cancelled = assert_ok(&responses[2]);
    assert_eq!(
        cancelled.as_object().unwrap().get("cancelled"),
        Some(&Value::Bool(true))
    );
    assert_ok(&responses[3]);
    assert_eq!(result_outcome(&responses[5]), "Cancelled");
    assert_eq!(result_outcome(&responses[6]), "Cancelled");
    finish(live);
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------- crash recovery

#[test]
fn recovery_from_a_mid_job_crash_is_byte_identical_to_an_uninterrupted_run() {
    let spec_one = JobSpec {
        total_cache: 8,
        seed: 21,
        ..JobSpec::basic(Algo::MmScan, 256)
    };
    let spec_two = JobSpec {
        max_boxes: Some(20),
        total_cache: 16,
        key: Some("recover-me".to_string()),
        ..JobSpec::basic(Algo::Strassen, 256)
    };

    // Baseline: the same two specs through an uninterrupted daemon.
    let baseline_dir = scratch_dir("recovery-baseline");
    let live = start(config(&baseline_dir));
    let responses = ask(
        &live.addr,
        &[
            submit(&spec_one),
            submit(&spec_two),
            bare("drain"),
            id_req("results", 0),
            id_req("results", 1),
        ],
    );
    let baseline = [result_bytes(&responses[3]), result_bytes(&responses[4])];
    finish(live);

    // Crash scene: the journal an interrupted daemon leaves behind —
    // both submissions durable, one attempt started, nothing finished,
    // no seal (the handle is dropped exactly as `kill -9` would).
    let crash_dir = scratch_dir("recovery-crash");
    {
        let (mut journal, _) = Journal::open(&crash_dir, 4).unwrap();
        journal
            .append(&JournalEvent::Submitted {
                id: 0,
                spec: spec_one.clone(),
            })
            .unwrap();
        journal
            .append(&JournalEvent::Submitted {
                id: 1,
                spec: spec_two.clone(),
            })
            .unwrap();
        journal
            .append(&JournalEvent::Started { id: 0, attempt: 0 })
            .unwrap();
        drop(journal);
    }

    let daemon = Daemon::bind(config(&crash_dir)).unwrap();
    let replay = daemon.replay();
    assert!(!replay.clean_shutdown, "a crash is not a clean shutdown");
    assert_eq!(replay.events.len(), 3);
    let addr = daemon.local_addr().to_string();
    let handle = thread::spawn(move || daemon.run());
    let responses = ask(
        &addr,
        &[bare("drain"), id_req("results", 0), id_req("results", 1)],
    );
    assert_eq!(
        result_bytes(&responses[1]),
        baseline[0],
        "recovered job 0 must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        result_bytes(&responses[2]),
        baseline[1],
        "recovered job 1 must be byte-identical to the uninterrupted run"
    );
    handle.join().unwrap().unwrap();

    // The recovered daemon's own shutdown was clean and fully journaled.
    let (_, after) = Journal::open(&crash_dir, 4).unwrap();
    assert!(after.clean_shutdown);
    assert!(after
        .events
        .iter()
        .any(|e| matches!(e, JournalEvent::Finished { id: 1, .. })));
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

// ----------------------------------------------------------------- health

#[test]
fn health_reports_the_hook_and_a_degraded_daemon_still_serves() {
    // Without a hook: plain ok.
    let plain_dir = scratch_dir("health-plain");
    let live = start(config(&plain_dir));
    let response = assert_ok(&ask(&live.addr, &[bare("health")])[0]);
    let obj = response.as_object().unwrap();
    assert_eq!(obj.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(
        obj.get("detail").and_then(Value::as_str),
        Some("no self-check configured")
    );
    assert!(obj.get("jobs").and_then(Value::as_object).is_some());
    ask(&live.addr, &[bare("drain")]);
    finish(live);

    // With a failing hook: degraded, not dead — submits still work.
    let degraded_dir = scratch_dir("health-degraded");
    let mut c = config(&degraded_dir);
    c.health_hook = Some(Box::new(|| HealthReport {
        degraded: true,
        detail: "golden self-check failed (stub)".to_string(),
    }));
    let live = start(c);
    let responses = ask(
        &live.addr,
        &[
            bare("health"),
            submit(&JobSpec::basic(Algo::MmScan, 64)),
            bare("drain"),
            id_req("results", 0),
        ],
    );
    let health = assert_ok(&responses[0]);
    let health = health.as_object().unwrap();
    assert_eq!(
        health.get("status").and_then(Value::as_str),
        Some("degraded")
    );
    assert_eq!(
        health.get("detail").and_then(Value::as_str),
        Some("golden self-check failed (stub)")
    );
    assert_ok(&responses[1]);
    assert_eq!(result_outcome(&responses[3]), "Completed");
    finish(live);
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&degraded_dir);
}
