//! Fuzz-style property suite for the wire-protocol parser: arbitrary
//! byte soup, mutated valid requests, and truncated valid requests all
//! produce a typed [`ProtocolError`] or a valid [`Request`] — the parser
//! never panics on any input — and every render helper round-trips
//! through [`parse_request`] losslessly.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use cadapt_serve::protocol::{bare_request_line, id_request_line, submit_line};
use cadapt_serve::{parse_request, Algo, JobSpec, Policy, ProtocolError, Request};
use proptest::prelude::*;

/// Valid-but-roaming specs: anything the wire can carry, not only what
/// admission would accept (parsing and validation are separate layers).
fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        0u64..4,
        1u64..10_000,
        0u64..1_000_000,
        0u64..4,
        (1usize..6, 0usize..6),
        0u64..4,
    )
        .prop_map(|(algo, n, seed, reign, (tenants, slot), extras)| {
            let algo = match algo {
                0 => Algo::MmScan,
                1 => Algo::MmInplace,
                2 => Algo::Strassen,
                _ => Algo::Gep,
            };
            let policy = if reign == 0 {
                Policy::Equal
            } else {
                Policy::Wta { reign }
            };
            JobSpec {
                algo,
                policy,
                tenants,
                slot: slot % tenants,
                total_cache: seed % 512 + 1,
                seed,
                deadline_ms: (extras == 1).then_some(seed + 1),
                max_boxes: (extras == 2).then_some(seed % 99 + 1),
                max_retries: u32::try_from(seed % 9).unwrap_or(0),
                fail_attempts: u32::try_from(seed % 3).unwrap_or(0),
                key: (extras == 3).then(|| format!("key-{seed}")),
                ..JobSpec::basic(algo, n)
            }
        })
}

/// A printable-ish ASCII string with JSON metacharacters over-weighted,
/// so the soup regularly contains braces, quotes, colons, and digits.
fn soup_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (0x20u8..0x7f).prop_map(char::from),
            prop_oneof![
                Just('{'),
                Just('}'),
                Just('"'),
                Just(':'),
                Just(','),
                Just('['),
                Just(']'),
            ],
        ],
        0..80,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    /// Arbitrary lines never panic the parser; failures are typed.
    #[test]
    fn arbitrary_lines_yield_typed_errors_or_valid_requests(line in soup_strategy()) {
        match parse_request(&line) {
            Ok(_) => {}
            Err(
                ProtocolError::NotJson { .. }
                | ProtocolError::NotAnObject
                | ProtocolError::MissingOp
                | ProtocolError::UnknownOp { .. }
                | ProtocolError::BadField { .. },
            ) => {}
        }
    }

    /// Arbitrary raw bytes (including invalid UTF-8, rendered lossily as
    /// a client with a broken encoder would) never panic the parser.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..120)) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&line);
    }

    /// A valid submit line round-trips to the identical spec.
    #[test]
    fn submit_lines_round_trip(spec in spec_strategy()) {
        let line = submit_line(&spec);
        prop_assert_eq!(parse_request(&line).unwrap(), Request::Submit { spec });
    }

    /// Id-carrying requests round-trip for any id, including u64::MAX.
    #[test]
    fn id_requests_round_trip(id in 0u64..=u64::MAX, op in 0u64..3) {
        let (name, expected) = match op {
            0 => ("status", Request::Status { id }),
            1 => ("cancel", Request::Cancel { id }),
            _ => ("results", Request::Results { id }),
        };
        prop_assert_eq!(parse_request(&id_request_line(name, id)).unwrap(), expected);
    }

    /// Mutating one byte of a valid request never panics; it parses to
    /// something, or fails typed.
    #[test]
    fn single_byte_mutations_never_panic(
        spec in spec_strategy(),
        position_seed in 0u64..100_000,
        mask in 1u8..=255,
    ) {
        let line = submit_line(&spec);
        let mut bytes = line.into_bytes();
        let position = usize::try_from(position_seed).unwrap() % bytes.len();
        bytes[position] ^= mask;
        let mutated = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&mutated);
    }

    /// Every proper prefix of a valid submit line is rejected (typed),
    /// and only the full line parses back to the submitted spec.
    #[test]
    fn truncated_submit_lines_are_rejected_typed(spec in spec_strategy(), cut_seed in 0u64..100_000) {
        let line = submit_line(&spec);
        let cut = usize::try_from(cut_seed).unwrap() % line.len();
        prop_assert!(
            parse_request(&line[..cut]).is_err(),
            "prefix of length {} parsed", cut
        );
    }
}

/// Exhaustive truncation sweep over one representative full-featured
/// submit line: no prefix parses, no prefix panics.
#[test]
fn every_truncation_of_a_full_submit_line_is_rejected() {
    let spec = JobSpec {
        policy: Policy::Wta { reign: 3 },
        tenants: 4,
        slot: 2,
        deadline_ms: Some(250),
        max_boxes: Some(40),
        max_retries: 2,
        fail_attempts: 1,
        key: Some("sweep-key".to_string()),
        ..JobSpec::basic(Algo::Strassen, 256)
    };
    let line = submit_line(&spec);
    assert_eq!(
        parse_request(&line).unwrap(),
        Request::Submit { spec },
        "the untruncated line must parse"
    );
    for cut in 0..line.len() {
        assert!(
            parse_request(&line[..cut]).is_err(),
            "prefix of length {cut} parsed: {:?}",
            &line[..cut]
        );
    }
}

/// The two bare ops parse from their render helper, and every other
/// bare-op string is a typed unknown-op rejection.
#[test]
fn bare_ops_parse_and_unknown_ops_are_typed() {
    assert_eq!(
        parse_request(&bare_request_line("health")).unwrap(),
        Request::Health
    );
    assert_eq!(
        parse_request(&bare_request_line("drain")).unwrap(),
        Request::Drain
    );
    for bogus in ["reboot", "submitx", "", "HEALTH", "drain "] {
        assert!(
            matches!(
                parse_request(&bare_request_line(bogus)),
                Err(ProtocolError::UnknownOp { .. })
            ),
            "op {bogus:?} must be rejected as unknown"
        );
    }
}
