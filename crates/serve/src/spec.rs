//! Job specifications: what to run, under which allocation policy, with
//! which limits — plus admission-time validation.
//!
//! A [`JobSpec`] is deliberately **self-contained**: policy, virtual
//! tenant count, slot, and cache size are all part of the spec, so a
//! job's share sequence (and therefore its completed result) is a pure
//! function of the spec alone. That is the property crash recovery
//! leans on: replaying a journaled spec after a `kill -9` reproduces
//! the interrupted run byte for byte.

use crate::error::ServeError;
use cadapt_core::Blocks;
use cadapt_recursion::{AbcParams, ExecModel};
use serde::{Deserialize, Serialize};

/// Upper bound on virtual co-tenants (keeps allocation vectors small).
pub const MAX_TENANTS: usize = 1024;
/// Upper bound on retries (bounds worst-case re-execution work).
pub const MAX_RETRIES: u32 = 8;

/// The four (a, b, c)-regular algorithms the service schedules, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algo {
    /// Matrix multiply with a linear scan at each node (non-adaptive).
    MmScan,
    /// In-place matrix multiply (adaptive).
    MmInplace,
    /// Strassen's matrix multiply.
    Strassen,
    /// Gaussian elimination paradigm.
    Gep,
}

impl Algo {
    /// The `(a, b, c)` parameters this algorithm runs under.
    #[must_use]
    pub fn params(&self) -> AbcParams {
        match self {
            Algo::MmScan => AbcParams::mm_scan(),
            Algo::MmInplace => AbcParams::mm_inplace(),
            Algo::Strassen => AbcParams::strassen(),
            Algo::Gep => AbcParams::gep(),
        }
    }

    /// Stable lowercase label for reports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Algo::MmScan => "mm-scan",
            Algo::MmInplace => "mm-inplace",
            Algo::Strassen => "strassen",
            Algo::Gep => "gep",
        }
    }
}

/// Which allocation policy shapes the job's share stream.
///
/// Only the deterministic policies are exposed: `ChurnShares` needs an
/// RNG minted at run time, which would make the share sequence depend on
/// state outside the spec and break byte-identical crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Fair static partitioning among the virtual tenants.
    Equal,
    /// Winner-take-all rotation (cache-residency imbalance).
    Wta {
        /// Rounds each winner holds the cache (>= 1).
        reign: u64,
    },
}

impl Policy {
    /// Stable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Policy::Equal => "equal-shares".to_string(),
            Policy::Wta { reign } => format!("winner-take-all({reign})"),
        }
    }
}

/// A complete job specification, as journaled and as accepted on the
/// wire (`submit` fills defaults for everything but `algo` and `n`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which algorithm to run.
    pub algo: Algo,
    /// Problem size in blocks (must be canonical for the algorithm).
    pub n: Blocks,
    /// Allocation policy shaping the share stream.
    pub policy: Policy,
    /// Virtual co-tenant count the policy splits the cache among.
    pub tenants: usize,
    /// This job's slot among the virtual tenants.
    pub slot: usize,
    /// Total cache blocks the policy distributes.
    pub total_cache: Blocks,
    /// Seed driving the retry backoff schedule (and nothing else).
    pub seed: u64,
    /// Wall-clock deadline in milliseconds, enforced between runs.
    pub deadline_ms: Option<u64>,
    /// Box budget: the job is cut off after this many boxes.
    pub max_boxes: Option<u64>,
    /// Retries after a failed (panicked) attempt, capped at
    /// [`MAX_RETRIES`].
    pub max_retries: u32,
    /// Injected-fault knob: the first `fail_attempts` attempts panic
    /// deliberately (exercised by the fault harness; 0 in normal use).
    pub fail_attempts: u32,
    /// Idempotency key: a second submit with the same key returns the
    /// original job id instead of enqueueing a duplicate.
    pub key: Option<String>,
}

impl JobSpec {
    /// A minimal spec for `algo` at size `n` with library defaults:
    /// equal shares, one tenant, 64 cache blocks, seed 0, no limits.
    #[must_use]
    pub fn basic(algo: Algo, n: Blocks) -> JobSpec {
        JobSpec {
            algo,
            n,
            policy: Policy::Equal,
            tenants: 1,
            slot: 0,
            total_cache: 64,
            seed: 0,
            deadline_ms: None,
            max_boxes: None,
            max_retries: 0,
            fail_attempts: 0,
            key: None,
        }
    }

    /// Admission-time validation: every rejection reason a client can
    /// fix before the job is journaled.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSpec`] describing the first violation found.
    pub fn validate(&self) -> Result<(), ServeError> {
        let reject = |message: String| Err(ServeError::InvalidSpec { message });
        if self.tenants == 0 || self.tenants > MAX_TENANTS {
            return reject(format!("tenants must be in 1..={MAX_TENANTS}"));
        }
        if self.slot >= self.tenants {
            return reject(format!(
                "slot {} out of range for {} tenants",
                self.slot, self.tenants
            ));
        }
        if self.total_cache == 0 {
            return reject("total_cache must be >= 1 block".to_string());
        }
        if let Policy::Wta { reign } = self.policy {
            if reign == 0 {
                return reject("winner-take-all reign must be >= 1".to_string());
            }
        }
        if self.deadline_ms == Some(0) {
            return reject("deadline_ms must be >= 1 when present".to_string());
        }
        if self.max_boxes == Some(0) {
            return reject("max_boxes must be >= 1 when present".to_string());
        }
        if self.max_retries > MAX_RETRIES {
            return reject(format!("max_retries must be <= {MAX_RETRIES}"));
        }
        if let Some(key) = &self.key {
            if key.is_empty() || key.len() > 128 {
                return reject("key must be 1..=128 bytes".to_string());
            }
        }
        // Canonical-size check: the same validation execution will apply,
        // done now so the rejection happens before the job is journaled.
        if let Err(e) = cadapt_sched::Job::start(
            cadapt_sched::JobSpec::new(self.algo.params(), self.n),
            ExecModel::capacity(),
        ) {
            return reject(format!(
                "n={} is not canonical for {}: {e}",
                self.n,
                self.algo.as_str()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_spec_validates() {
        assert!(JobSpec::basic(Algo::MmScan, 64).validate().is_ok());
        assert!(JobSpec::basic(Algo::MmInplace, 64).validate().is_ok());
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        let cases: Vec<(JobSpec, &str)> = vec![
            (
                JobSpec {
                    tenants: 0,
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "tenants",
            ),
            (
                JobSpec {
                    slot: 2,
                    tenants: 2,
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "slot",
            ),
            (
                JobSpec {
                    total_cache: 0,
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "total_cache",
            ),
            (
                JobSpec {
                    policy: Policy::Wta { reign: 0 },
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "reign",
            ),
            (
                JobSpec {
                    deadline_ms: Some(0),
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "deadline_ms",
            ),
            (
                JobSpec {
                    max_boxes: Some(0),
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "max_boxes",
            ),
            (
                JobSpec {
                    max_retries: 99,
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "max_retries",
            ),
            (
                JobSpec {
                    key: Some(String::new()),
                    ..JobSpec::basic(Algo::MmScan, 64)
                },
                "key",
            ),
            (JobSpec::basic(Algo::MmScan, 63), "canonical"),
        ];
        for (spec, needle) in cases {
            match spec.validate() {
                Err(ServeError::InvalidSpec { message }) => {
                    assert!(
                        message.contains(needle),
                        "{message} should mention {needle}"
                    );
                }
                other => panic!("expected InvalidSpec mentioning {needle}, got {other:?}"),
            }
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = JobSpec {
            policy: Policy::Wta { reign: 3 },
            deadline_ms: Some(250),
            key: Some("k1".to_string()),
            ..JobSpec::basic(Algo::Strassen, 128)
        };
        let text = serde_json::to_string(&spec).expect("render");
        let back: JobSpec = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, spec);
    }

    #[test]
    fn algo_labels_are_stable() {
        assert_eq!(Algo::MmScan.as_str(), "mm-scan");
        assert_eq!(Algo::Gep.as_str(), "gep");
        assert_eq!(Policy::Wta { reign: 2 }.label(), "winner-take-all(2)");
    }
}
