//! # cadapt-serve — the crash-safe experiment job service
//!
//! The ROADMAP's north star is a long-running service scheduling
//! experiment and analysis jobs on the deterministic engine. This crate
//! is that service layer: a dependency-free daemon speaking
//! newline-delimited JSON over TCP (`submit` / `status` / `cancel` /
//! `results` / `health` / `drain`), executing (a, b, c)-regular jobs
//! whose cache shares come from `cadapt-sched` allocation policies made
//! load-bearing via [`cadapt_sched::PolicyCursor`].
//!
//! Robustness properties, each pinned by tests:
//!
//! * **Crash safety** — every state transition is appended to a
//!   CRC-enveloped write-ahead [`journal`] before it takes effect;
//!   `kill -9` mid-job followed by restart replays the journal,
//!   re-enqueues incomplete jobs, and produces results byte-identical
//!   to an uninterrupted run (execution is per-job deterministic).
//! * **Deadlines and budgets** — enforced through the typed
//!   [`cadapt_core::CancelToken`] between runs and a `take_boxes` cap,
//!   surfaced as [`JobOutcome::DeadlineExceeded`] /
//!   [`JobOutcome::BudgetExhausted`]; never as torn journal state.
//! * **Admission control** — a bounded queue with typed overload
//!   rejection; memory use cannot grow without bound under load.
//! * **Deterministic retry** — panicking attempts are contained by
//!   `catch_unwind` and retried on an exponential-plus-jitter schedule
//!   that is a pure function of the job seed ([`retry`]).
//! * **Graceful drain** — `drain` stops admission, finishes in-flight
//!   work, journals a clean-shutdown marker, and exits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod error;
pub mod journal;
pub mod outcome;
pub mod protocol;
pub mod retry;
pub mod spec;

pub use daemon::{Daemon, DaemonConfig, HealthHook, HealthReport, JobState};
pub use engine::run_job;
pub use error::ServeError;
pub use journal::{Journal, JournalError, JournalEvent, Replay};
pub use outcome::{JobOutcome, JobResult};
pub use protocol::{parse_request, ProtocolError, Request};
pub use spec::{Algo, JobSpec, Policy};
