//! Deterministic retry backoff: exponential base plus seeded jitter.
//!
//! The schedule is a **pure function of the job seed and the attempt
//! number** — no RNG object is minted and no clock is read — so a
//! journal replay after a crash re-derives the exact backoff trace the
//! interrupted run produced, and the fault harness can assert the
//! schedule byte-for-byte from the seed alone. Jitter comes from a
//! splitmix64 hash, not a stateful generator: the workspace confines
//! `ChaCha8Rng` minting to the trial engine, and a hash of (seed,
//! attempt) gives the same statistical spread without carrying state.

/// One round of the splitmix64 mixer (Steele, Lea, Flood '14): a
/// bijective avalanche hash on 64 bits.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Backoff before retry `attempt` (1-based), in milliseconds: an
/// exponential base `2^min(attempt, 10)` plus jitter in `[0, base)`
/// hashed from `(seed, attempt)`. Deterministic and stateless.
#[must_use]
pub fn backoff_ms(seed: u64, attempt: u32) -> u64 {
    let base = 1u64 << attempt.min(10);
    let jitter = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F)) % base;
    base + jitter
}

/// The full schedule for `retries` retries: `backoff_ms(seed, 1..=retries)`.
#[must_use]
pub fn backoff_schedule(seed: u64, retries: u32) -> Vec<u64> {
    (1..=retries).map(|a| backoff_ms(seed, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_reproducible_from_the_seed() {
        assert_eq!(backoff_schedule(7, 4), backoff_schedule(7, 4));
        assert_ne!(backoff_schedule(7, 4), backoff_schedule(8, 4));
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        for seed in [0u64, 1, 99, u64::MAX] {
            for attempt in 1..=12u32 {
                let base = 1u64 << attempt.min(10);
                let d = backoff_ms(seed, attempt);
                assert!(
                    d >= base && d < 2 * base,
                    "attempt {attempt}: {d} vs base {base}"
                );
            }
        }
    }

    #[test]
    fn splitmix_avalanche_differs_on_neighbour_inputs() {
        assert_ne!(splitmix64(0), splitmix64(1));
        // Known value pinned so the hash cannot drift silently.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn schedule_length_matches_retries() {
        assert!(backoff_schedule(3, 0).is_empty());
        assert_eq!(backoff_schedule(3, 5).len(), 5);
    }
}
