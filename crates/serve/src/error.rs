//! Typed service-layer errors.
//!
//! Every failure a client or operator can see is a variant here, with a
//! stable machine-readable [`ServeError::code`] used both on the wire
//! (`{"ok":false,"error":{"code":…}}`) and in the process exit-code map
//! (`cadapt-bench` maps any `ServeError` to exit code 7).

use crate::journal::JournalError;
use crate::protocol::ProtocolError;
use std::fmt;

/// Any error raised by the service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A request line failed to parse as a protocol request.
    Protocol(ProtocolError),
    /// The write-ahead journal rejected an operation (I/O failure or
    /// detected corruption).
    Journal(JournalError),
    /// Admission control rejected a submit: the bounded queue is full.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The daemon is draining and no longer admits jobs.
    Draining,
    /// The referenced job id has never been submitted.
    UnknownJob {
        /// The id the client asked about.
        id: u64,
    },
    /// The job exists but has not finished; its results are not yet
    /// available.
    NotFinished {
        /// The id the client asked about.
        id: u64,
    },
    /// The submitted job specification is invalid.
    InvalidSpec {
        /// Why the spec was rejected.
        message: String,
    },
    /// An OS-level I/O failure outside the journal (sockets, mostly).
    Io {
        /// What the daemon was doing.
        context: String,
        /// The underlying error rendered as text.
        message: String,
    },
}

impl ServeError {
    /// Stable machine-readable error code for wire responses.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Protocol(_) => "protocol",
            ServeError::Journal(_) => "journal",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Draining => "draining",
            ServeError::UnknownJob { .. } => "unknown-job",
            ServeError::NotFinished { .. } => "not-finished",
            ServeError::InvalidSpec { .. } => "invalid-spec",
            ServeError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Journal(e) => write!(f, "journal error: {e}"),
            ServeError::Overloaded { capacity } => {
                write!(f, "queue full ({capacity} jobs); retry after a drain")
            }
            ServeError::Draining => write!(f, "daemon is draining; submissions are closed"),
            ServeError::UnknownJob { id } => write!(f, "unknown job id {id}"),
            ServeError::NotFinished { id } => write!(f, "job {id} has not finished"),
            ServeError::InvalidSpec { message } => write!(f, "invalid job spec: {message}"),
            ServeError::Io { context, message } => {
                write!(f, "i/o failure while {context}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<JournalError> for ServeError {
    fn from(e: JournalError) -> Self {
        ServeError::Journal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(ServeError::Draining.code(), "draining");
        assert_eq!(ServeError::Overloaded { capacity: 4 }.code(), "overloaded");
        assert_eq!(ServeError::UnknownJob { id: 9 }.code(), "unknown-job");
        assert_eq!(ServeError::NotFinished { id: 9 }.code(), "not-finished");
        assert_eq!(
            ServeError::InvalidSpec {
                message: "x".into()
            }
            .code(),
            "invalid-spec"
        );
    }

    #[test]
    fn display_mentions_the_id() {
        let text = ServeError::UnknownJob { id: 42 }.to_string();
        assert!(text.contains("42"));
    }
}
