//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response line per request. A request is an
//! object with an `"op"` field naming the operation; `submit` carries a
//! `"spec"` object in which only `algo` and `n` are mandatory (every
//! other [`JobSpec`] field has a documented default). Malformed input of
//! any shape — non-JSON bytes, wrong types, unknown operations, unknown
//! spec fields — is rejected with a typed [`ProtocolError`]; the parser
//! never panics (a property pinned by a fuzz proptest).

use crate::spec::JobSpec;
use serde::{Map, Number, Value};
use std::fmt;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for execution.
    Submit {
        /// The full spec, defaults applied.
        spec: JobSpec,
    },
    /// Ask for a job's lifecycle state.
    Status {
        /// The job id.
        id: u64,
    },
    /// Request cooperative cancellation of a job.
    Cancel {
        /// The job id.
        id: u64,
    },
    /// Fetch the final result record of a finished job.
    Results {
        /// The job id.
        id: u64,
    },
    /// Service health, including the golden self-check when configured.
    Health,
    /// Stop admitting jobs, finish in-flight work, shut down cleanly.
    Drain,
}

/// Why a request line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The line is not valid JSON.
    NotJson {
        /// The JSON parser's message.
        message: String,
    },
    /// The line parsed, but is not a JSON object.
    NotAnObject,
    /// The object has no string `"op"` field.
    MissingOp,
    /// The `"op"` names no known operation.
    UnknownOp {
        /// What the client sent.
        op: String,
    },
    /// A field is missing, has the wrong type, or is unknown.
    BadField {
        /// Which field.
        field: String,
        /// What is wrong with it.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NotJson { message } => write!(f, "request is not JSON: {message}"),
            ProtocolError::NotAnObject => write!(f, "request must be a JSON object"),
            ProtocolError::MissingOp => write!(f, "request object has no string \"op\" field"),
            ProtocolError::UnknownOp { op } => write!(
                f,
                "unknown op {op:?} (expected submit/status/cancel/results/health/drain)"
            ),
            ProtocolError::BadField { field, message } => {
                write!(f, "bad field {field:?}: {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A field's default-value constructor; `None` marks the field mandatory.
type FieldDefault = Option<fn() -> Value>;

/// The spec fields `submit` understands, with their defaults (`None` =
/// mandatory). Order matches [`JobSpec`]'s declaration order so the
/// reconstructed object deserializes positionally clean.
const SPEC_FIELDS: [(&str, FieldDefault); 12] = [
    ("algo", None),
    ("n", None),
    ("policy", Some(|| Value::String("Equal".to_string()))),
    ("tenants", Some(|| Value::Number(Number::U(1)))),
    ("slot", Some(|| Value::Number(Number::U(0)))),
    ("total_cache", Some(|| Value::Number(Number::U(64)))),
    ("seed", Some(|| Value::Number(Number::U(0)))),
    ("deadline_ms", Some(|| Value::Null)),
    ("max_boxes", Some(|| Value::Null)),
    ("max_retries", Some(|| Value::Number(Number::U(0)))),
    ("fail_attempts", Some(|| Value::Number(Number::U(0)))),
    ("key", Some(|| Value::Null)),
];

fn bad_field(field: &str, message: impl Into<String>) -> ProtocolError {
    ProtocolError::BadField {
        field: field.to_string(),
        message: message.into(),
    }
}

/// Extract a `u64` id field.
fn id_field(obj: &Map) -> Result<u64, ProtocolError> {
    match obj.get("id") {
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad_field("id", "expected a non-negative integer")),
        None => Err(bad_field("id", "missing")),
    }
}

/// Rebuild a full [`JobSpec`] value from a client-supplied partial spec
/// object: defaults filled in, unknown fields rejected.
fn spec_from_value(v: &Value) -> Result<JobSpec, ProtocolError> {
    let obj = v
        .as_object()
        .ok_or_else(|| bad_field("spec", "expected an object"))?;
    for (key, _) in obj.iter() {
        if !SPEC_FIELDS.iter().any(|(name, _)| name == key) {
            return Err(bad_field(key, "unknown spec field"));
        }
    }
    let mut full = Map::new();
    for (name, default) in SPEC_FIELDS {
        match (obj.get(name), default) {
            (Some(given), _) => full.insert(name, given.clone()),
            (None, Some(make)) => full.insert(name, make()),
            (None, None) => return Err(bad_field(name, "missing (mandatory spec field)")),
        }
    }
    serde_json::from_value(&Value::Object(full))
        .map_err(|e| bad_field("spec", format!("does not parse as a job spec: {e}")))
}

/// Parse one request line.
///
/// # Errors
///
/// A typed [`ProtocolError`] for every malformed shape; this function
/// never panics on any input.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value: Value = serde_json::from_str(line).map_err(|e| ProtocolError::NotJson {
        message: e.to_string(),
    })?;
    let obj = value.as_object().ok_or(ProtocolError::NotAnObject)?;
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or(ProtocolError::MissingOp)?;
    match op {
        "submit" => {
            let spec_value = obj
                .get("spec")
                .ok_or_else(|| bad_field("spec", "missing"))?;
            Ok(Request::Submit {
                spec: spec_from_value(spec_value)?,
            })
        }
        "status" => Ok(Request::Status { id: id_field(obj)? }),
        "cancel" => Ok(Request::Cancel { id: id_field(obj)? }),
        "results" => Ok(Request::Results { id: id_field(obj)? }),
        "health" => Ok(Request::Health),
        "drain" => Ok(Request::Drain),
        other => Err(ProtocolError::UnknownOp {
            op: other.to_string(),
        }),
    }
}

/// Render the request line that submits `spec` (used by the client CLI
/// and the fault harness; round-trips through [`parse_request`]).
#[must_use]
pub fn submit_line(spec: &JobSpec) -> String {
    let mut obj = Map::new();
    obj.insert("op", Value::String("submit".to_string()));
    obj.insert("spec", serde_json::to_value(spec));
    render_object(obj)
}

/// Render a one-field id request line (`status`/`cancel`/`results`).
#[must_use]
pub fn id_request_line(op: &str, id: u64) -> String {
    let mut obj = Map::new();
    obj.insert("op", Value::String(op.to_string()));
    obj.insert("id", Value::Number(Number::U(u128::from(id))));
    render_object(obj)
}

/// Render a no-argument request line (`health`/`drain`).
#[must_use]
pub fn bare_request_line(op: &str) -> String {
    let mut obj = Map::new();
    obj.insert("op", Value::String(op.to_string()));
    render_object(obj)
}

fn render_object(obj: Map) -> String {
    serde_json::to_string(&Value::Object(obj)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Algo, Policy};

    #[test]
    fn minimal_submit_gets_defaults() {
        let req = parse_request(r#"{"op":"submit","spec":{"algo":"MmScan","n":64}}"#).unwrap();
        let Request::Submit { spec } = req else {
            panic!("expected submit")
        };
        assert_eq!(spec, JobSpec::basic(Algo::MmScan, 64));
    }

    #[test]
    fn full_submit_round_trips() {
        let spec = JobSpec {
            policy: Policy::Wta { reign: 2 },
            tenants: 3,
            slot: 1,
            deadline_ms: Some(100),
            max_boxes: Some(500),
            max_retries: 2,
            key: Some("k".to_string()),
            ..JobSpec::basic(Algo::Gep, 256)
        };
        let line = submit_line(&spec);
        let Request::Submit { spec: back } = parse_request(&line).unwrap() else {
            panic!("expected submit")
        };
        assert_eq!(back, spec);
    }

    #[test]
    fn id_requests_parse() {
        assert_eq!(
            parse_request(&id_request_line("status", 7)).unwrap(),
            Request::Status { id: 7 }
        );
        assert_eq!(
            parse_request(&id_request_line("cancel", 8)).unwrap(),
            Request::Cancel { id: 8 }
        );
        assert_eq!(
            parse_request(&id_request_line("results", 9)).unwrap(),
            Request::Results { id: 9 }
        );
        assert_eq!(
            parse_request(&bare_request_line("health")).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(&bare_request_line("drain")).unwrap(),
            Request::Drain
        );
    }

    #[test]
    fn malformed_lines_get_typed_errors() {
        assert!(matches!(
            parse_request("not json at all"),
            Err(ProtocolError::NotJson { .. })
        ));
        assert!(matches!(
            parse_request("[1,2,3]"),
            Err(ProtocolError::NotAnObject)
        ));
        assert!(matches!(
            parse_request(r#"{"x":1}"#),
            Err(ProtocolError::MissingOp)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"reboot"}"#),
            Err(ProtocolError::UnknownOp { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"status"}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"status","id":-4}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"submit","spec":{"algo":"MmScan"}}"#),
            Err(ProtocolError::BadField { .. })
        ));
        assert!(matches!(
            parse_request(r#"{"op":"submit","spec":{"algo":"MmScan","n":64,"bogus":1}}"#),
            Err(ProtocolError::BadField { .. })
        ));
    }
}
