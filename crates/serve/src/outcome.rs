//! Typed job outcomes and the per-job result record.

use serde::{Deserialize, Serialize};

/// How a job ended. Every termination path has a name: nothing exits
/// the service as a bare error string or a silent partial record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed,
    /// A client cancelled it (`cancel` request).
    Cancelled,
    /// The deadline enforcer cut it off between runs.
    DeadlineExceeded,
    /// The box budget (`max_boxes`) ran out before completion.
    BudgetExhausted,
    /// Every attempt panicked; retries are exhausted.
    Failed,
}

impl JobOutcome {
    /// Stable lowercase label for reports and wire payloads.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::DeadlineExceeded => "deadline-exceeded",
            JobOutcome::BudgetExhausted => "budget-exhausted",
            JobOutcome::Failed => "failed",
        }
    }
}

/// The final record for one job, journaled in the `Finished` event and
/// returned verbatim by the `results` request.
///
/// For [`JobOutcome::Completed`] and [`JobOutcome::BudgetExhausted`]
/// jobs every field is a pure function of the [`crate::JobSpec`], which
/// is what makes recovered results byte-identical to an uninterrupted
/// run. Deadline and cancel outcomes depend on when the token fired;
/// their numeric fields describe how far the job got.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Attempts executed (1 + retries actually used).
    pub attempts: u32,
    /// The backoff delays (ms) slept between attempts, in order — the
    /// seeded schedule prefix that was actually consumed.
    pub backoff_ms: Vec<u64>,
    /// Boxes the winning (final) attempt received.
    pub boxes_received: u64,
    /// I/Os the final attempt consumed.
    pub io_used: u128,
    /// Base cases the final attempt completed.
    pub progress: u128,
    /// The Eq. 2 adaptivity ratio of the final attempt.
    pub ratio: f64,
    /// Panic payload of the last attempt, for `Failed` outcomes.
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(JobOutcome::Completed.as_str(), "completed");
        assert_eq!(JobOutcome::DeadlineExceeded.as_str(), "deadline-exceeded");
        assert_eq!(JobOutcome::BudgetExhausted.as_str(), "budget-exhausted");
    }

    #[test]
    fn result_json_round_trips() {
        let r = JobResult {
            outcome: JobOutcome::Failed,
            attempts: 3,
            backoff_ms: vec![2, 5],
            boxes_received: 0,
            io_used: 0,
            progress: 0,
            ratio: 0.0,
            error: Some("injected fault".to_string()),
        };
        let text = serde_json::to_string(&r).expect("render");
        let back: JobResult = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, r);
    }
}
