//! The job executor: drives one [`JobSpec`] on the scheduling engine
//! with cooperative cancellation, box budgets, panic isolation, and
//! deterministic retry.
//!
//! Execution is **per-job deterministic**: the share sequence comes from
//! a [`PolicyCursor`] parameterised entirely by the spec (policy ×
//! virtual tenants × slot × total cache), never from live co-tenants, so
//! a completed result is a pure function of the spec. Deadlines and user
//! cancels arrive through the [`CancelToken`] and are observed *between
//! runs* (the PR 9 cancellation law); budgets are a `take_boxes` cap on
//! the same stream. A panicking attempt is contained by `catch_unwind`
//! and retried on the seeded backoff schedule, so one poisoned job never
//! takes the worker — let alone the daemon — down with it.

use crate::outcome::{JobOutcome, JobResult};
use crate::retry::backoff_ms;
use crate::spec::{JobSpec, Policy};
use cadapt_core::{CancelKind, CancelToken, RunCursor, RunCursorExt};
use cadapt_recursion::ExecModel;
use cadapt_sched::{EqualShares, Job, PolicyCursor, WinnerTakeAll};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::Duration;

/// How one attempt ended (before retry policy is applied).
enum Attempt {
    /// Ran to completion (or budget exhaustion) with these stats.
    Finished {
        /// Terminal outcome: `Completed` or `BudgetExhausted`.
        outcome: JobOutcome,
        stats: Stats,
    },
    /// The cancel token fired between runs.
    Cut { kind: CancelKind, stats: Stats },
}

/// Numeric footprint of one attempt, copied out of the sched-layer
/// outcome so the journal owns its own stable shape.
#[derive(Clone, Copy)]
struct Stats {
    boxes_received: u64,
    io_used: u128,
    progress: u128,
    ratio: f64,
}

impl Stats {
    fn from_job(job: &Job) -> Stats {
        let o = job.outcome();
        Stats {
            boxes_received: o.boxes_received,
            io_used: o.io_used,
            progress: o.progress,
            ratio: o.ratio(),
        }
    }

    const ZERO: Stats = Stats {
        boxes_received: 0,
        io_used: 0,
        progress: 0,
        ratio: 0.0,
    };
}

/// Drive one attempt to a terminal state. Panics propagate to the
/// `catch_unwind` in [`run_job`]; spec validation has already happened
/// at admission, so constructor failures here are defects worth the
/// loud exit rather than a quiet mis-result.
fn run_attempt(spec: &JobSpec, attempt: u32, token: &CancelToken) -> Attempt {
    if attempt < spec.fail_attempts {
        // The injected-fault knob: the fault harness uses this to prove
        // per-trial isolation and the seeded retry schedule end to end.
        // cadapt-lint: allow(panic-reach) -- deliberate injected fault, contained by run_job's catch_unwind and surfaced as a typed Failed outcome
        panic!(
            "injected fault: attempt {attempt} of {}",
            spec.fail_attempts
        );
    }
    let sched_spec = cadapt_sched::JobSpec::new(spec.algo.params(), spec.n);
    let started = Job::start(sched_spec, ExecModel::capacity());
    // cadapt-lint: allow(panic-reach) -- spec was validated at admission with the identical constructor; a failure here is a defect, and the panic is contained by run_job's catch_unwind
    let mut job = started.expect("spec validated at admission");
    // The policy arms have different cursor types; each boxes its own
    // composed pipeline (PolicyCursor construction bounds were validated
    // at admission via JobSpec::validate's identical checks).
    let mut stream: Box<dyn RunCursor> = match spec.policy {
        Policy::Equal => compose(
            PolicyCursor::new(EqualShares, spec.tenants, spec.slot, spec.total_cache),
            spec.max_boxes,
            token,
        ),
        Policy::Wta { reign } => compose(
            PolicyCursor::new(
                WinnerTakeAll { reign },
                spec.tenants,
                spec.slot,
                spec.total_cache,
            ),
            spec.max_boxes,
            token,
        ),
    };
    loop {
        match stream.next_run() {
            Err(_cancelled) => {
                return Attempt::Cut {
                    kind: token.kind().unwrap_or(CancelKind::User),
                    stats: Stats::from_job(&job),
                }
            }
            Ok(None) => {
                // The budget stream ran dry; the job either finished on
                // the final box or ran out of allowance.
                let outcome = if job.is_done() {
                    JobOutcome::Completed
                } else {
                    JobOutcome::BudgetExhausted
                };
                return Attempt::Finished {
                    outcome,
                    stats: Stats::from_job(&job),
                };
            }
            Ok(Some(run)) => {
                for _ in 0..run.repeat {
                    let _ = job.grant(run.size);
                    if job.is_done() {
                        return Attempt::Finished {
                            outcome: JobOutcome::Completed,
                            stats: Stats::from_job(&job),
                        };
                    }
                }
            }
        }
    }
}

/// Attach the budget cap and cancellation gate to a policy stream and
/// box it for uniform driving.
fn compose<C: RunCursor + 'static>(
    cursor: Result<C, cadapt_core::CoreError>,
    max_boxes: Option<u64>,
    token: &CancelToken,
) -> Box<dyn RunCursor> {
    // cadapt-lint: allow(panic-reach) -- bounds checked at admission (tenants/slot/total_cache); contained by run_job's catch_unwind
    let cursor = cursor.expect("cursor bounds validated at admission");
    match max_boxes {
        Some(budget) => Box::new(cursor.take_boxes(budget).cancellable(token.clone())),
        None => Box::new(cursor.cancellable(token.clone())),
    }
}

/// Render a panic payload as text (the two shapes `panic!` produces).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Execute `spec` to a terminal [`JobResult`].
///
/// `on_attempt` fires before each attempt (the daemon journals a
/// `Started` event there). `backoff_unit_ms` scales the seeded backoff
/// sleeps — 1 for real milliseconds, 0 to skip sleeping in tests; the
/// *recorded* schedule is always the unscaled pure function of the seed.
pub fn run_job(
    spec: &JobSpec,
    token: &CancelToken,
    backoff_unit_ms: u64,
    on_attempt: &mut dyn FnMut(u32),
) -> JobResult {
    let mut slept: Vec<u64> = Vec::new();
    let mut attempt: u32 = 0;
    loop {
        on_attempt(attempt);
        let outcome = catch_unwind(AssertUnwindSafe(|| run_attempt(spec, attempt, token)));
        match outcome {
            Ok(Attempt::Finished { outcome, stats }) => {
                return JobResult {
                    outcome,
                    attempts: attempt + 1,
                    backoff_ms: slept,
                    boxes_received: stats.boxes_received,
                    io_used: stats.io_used,
                    progress: stats.progress,
                    ratio: stats.ratio,
                    error: None,
                };
            }
            Ok(Attempt::Cut { kind, stats }) => {
                let outcome = match kind {
                    CancelKind::User => JobOutcome::Cancelled,
                    CancelKind::Deadline => JobOutcome::DeadlineExceeded,
                    CancelKind::Budget => JobOutcome::BudgetExhausted,
                };
                return JobResult {
                    outcome,
                    attempts: attempt + 1,
                    backoff_ms: slept,
                    boxes_received: stats.boxes_received,
                    io_used: stats.io_used,
                    progress: stats.progress,
                    ratio: stats.ratio,
                    error: None,
                };
            }
            Err(payload) => {
                let error = panic_text(payload.as_ref());
                if attempt >= spec.max_retries || token.is_cancelled() {
                    let outcome = if token.is_cancelled() {
                        match token.kind() {
                            Some(CancelKind::Deadline) => JobOutcome::DeadlineExceeded,
                            Some(CancelKind::Budget) => JobOutcome::BudgetExhausted,
                            _ => JobOutcome::Cancelled,
                        }
                    } else {
                        JobOutcome::Failed
                    };
                    return JobResult {
                        outcome,
                        attempts: attempt + 1,
                        backoff_ms: slept,
                        boxes_received: 0,
                        io_used: 0,
                        progress: 0,
                        ratio: Stats::ZERO.ratio,
                        error: Some(error),
                    };
                }
                let delay = backoff_ms(spec.seed, attempt + 1);
                slept.push(delay);
                if backoff_unit_ms > 0 {
                    thread::sleep(Duration::from_millis(delay.saturating_mul(backoff_unit_ms)));
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::backoff_schedule;
    use crate::spec::Algo;

    fn run(spec: &JobSpec) -> JobResult {
        run_job(spec, &CancelToken::new(), 0, &mut |_| {})
    }

    #[test]
    fn completes_and_is_deterministic() {
        let spec = JobSpec::basic(Algo::MmScan, 64);
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a.outcome, JobOutcome::Completed);
        assert_eq!(a, b, "completed results must be bit-identical");
        assert!(a.progress > 0 && a.io_used > 0 && a.boxes_received > 0);
    }

    #[test]
    fn budget_exhaustion_is_typed_and_deterministic() {
        let spec = JobSpec {
            max_boxes: Some(2),
            total_cache: 8, // 8-block shares cannot finish n=64 in 2 boxes
            ..JobSpec::basic(Algo::MmScan, 64)
        };
        let a = run(&spec);
        assert_eq!(a.outcome, JobOutcome::BudgetExhausted);
        assert_eq!(a.boxes_received, 2);
        assert!(a.progress > 0, "partial progress is reported");
        assert_eq!(run(&spec), a);
    }

    #[test]
    fn exact_budget_completion_beats_exhaustion() {
        // Find how many boxes completion takes, then grant exactly that.
        let free = run(&JobSpec::basic(Algo::MmScan, 64));
        let spec = JobSpec {
            max_boxes: Some(free.boxes_received),
            ..JobSpec::basic(Algo::MmScan, 64)
        };
        assert_eq!(run(&spec).outcome, JobOutcome::Completed);
    }

    #[test]
    fn pre_cancelled_token_yields_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let r = run_job(&JobSpec::basic(Algo::MmScan, 64), &token, 0, &mut |_| {});
        assert_eq!(r.outcome, JobOutcome::Cancelled);
        assert_eq!(r.boxes_received, 0);
    }

    #[test]
    fn deadline_kind_maps_to_deadline_outcome() {
        let token = CancelToken::new();
        token.cancel_with(CancelKind::Deadline);
        let r = run_job(&JobSpec::basic(Algo::MmScan, 64), &token, 0, &mut |_| {});
        assert_eq!(r.outcome, JobOutcome::DeadlineExceeded);
    }

    #[test]
    fn injected_faults_retry_on_the_seeded_schedule() {
        let spec = JobSpec {
            fail_attempts: 2,
            max_retries: 3,
            seed: 42,
            ..JobSpec::basic(Algo::MmScan, 64)
        };
        let mut attempts_seen = Vec::new();
        let r = run_job(&spec, &CancelToken::new(), 0, &mut |a| {
            attempts_seen.push(a)
        });
        assert_eq!(r.outcome, JobOutcome::Completed);
        assert_eq!(r.attempts, 3);
        assert_eq!(attempts_seen, vec![0, 1, 2]);
        assert_eq!(r.backoff_ms, backoff_schedule(42, 2));
    }

    #[test]
    fn exhausted_retries_fail_with_the_panic_text() {
        let spec = JobSpec {
            fail_attempts: 5,
            max_retries: 1,
            ..JobSpec::basic(Algo::MmScan, 64)
        };
        let r = run(&spec);
        assert_eq!(r.outcome, JobOutcome::Failed);
        assert_eq!(r.attempts, 2);
        assert_eq!(r.backoff_ms.len(), 1);
        assert!(r.error.as_deref().unwrap_or("").contains("injected fault"));
    }

    #[test]
    fn wta_policy_jobs_complete_with_higher_box_counts_for_losers() {
        let winner = JobSpec {
            policy: Policy::Wta { reign: 4 },
            tenants: 2,
            slot: 0,
            total_cache: 128,
            ..JobSpec::basic(Algo::MmInplace, 64)
        };
        let loser = JobSpec {
            slot: 1,
            ..winner.clone()
        };
        let (w, l) = (run(&winner), run(&loser));
        assert_eq!(w.outcome, JobOutcome::Completed);
        assert_eq!(l.outcome, JobOutcome::Completed);
        assert!(
            l.boxes_received > w.boxes_received,
            "starved slot needs more rounds"
        );
    }
}
