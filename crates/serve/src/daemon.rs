//! The daemon: NDJSON-over-TCP front end, bounded admission queue,
//! worker pool, deadline watcher, and crash-recovering startup.
//!
//! Concurrency never touches result bytes: workers execute jobs through
//! the deterministic engine (each job's share stream is a pure function
//! of its spec), so the only things the OS schedule can influence are
//! *when* a job runs and whether a wall-clock deadline cuts it short —
//! both surfaced as typed outcomes, never as different result bytes for
//! completed jobs. That separation is why this module may spawn threads
//! and read clocks under the `nondet-source` service carve-out.

use crate::engine;
use crate::error::ServeError;
use crate::journal::{Journal, JournalEvent, Replay};
use crate::outcome::JobResult;
use crate::protocol::{parse_request, Request};
use crate::spec::JobSpec;
use cadapt_core::{CancelKind, CancelToken};
use serde::{Map, Number, Value};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Lifecycle state of a job, as reported by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Reached a terminal outcome; `results` will serve it.
    Done,
}

impl JobState {
    /// Stable lowercase label for wire responses.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// What the configured health probe reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// True when the probe found a problem (e.g. a golden mismatch);
    /// the daemon still serves, but advertises the degradation.
    pub degraded: bool,
    /// Human-readable probe detail.
    pub detail: String,
}

/// An in-process health probe (the bench CLI injects the golden
/// self-check here, keeping this crate free of a bench dependency).
pub type HealthHook = Box<dyn Fn() -> HealthReport + Send + Sync>;

/// Daemon configuration.
pub struct DaemonConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Directory for the write-ahead journal.
    pub journal_dir: PathBuf,
    /// Admission-queue capacity; submits beyond it are rejected typed.
    pub queue_cap: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Journal records per segment before rotation.
    pub rotate_every: u64,
    /// Scale factor for retry backoff sleeps (0 disables sleeping; the
    /// recorded schedule is unaffected).
    pub backoff_unit_ms: u64,
    /// Optional in-process health probe.
    pub health_hook: Option<HealthHook>,
}

impl DaemonConfig {
    /// Defaults: loopback on an ephemeral port, 64-job queue, 2 workers,
    /// 256-record segments, real-millisecond backoff.
    #[must_use]
    pub fn new(journal_dir: PathBuf) -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            journal_dir,
            queue_cap: 64,
            workers: 2,
            rotate_every: 256,
            backoff_unit_ms: 1,
            health_hook: None,
        }
    }
}

impl std::fmt::Debug for DaemonConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonConfig")
            .field("addr", &self.addr)
            .field("journal_dir", &self.journal_dir)
            .field("queue_cap", &self.queue_cap)
            .field("workers", &self.workers)
            .field("rotate_every", &self.rotate_every)
            .field("backoff_unit_ms", &self.backoff_unit_ms)
            .field("health_hook", &self.health_hook.is_some())
            .finish()
    }
}

/// One job's live record.
struct Entry {
    spec: JobSpec,
    state: JobState,
    token: CancelToken,
    started: Option<Instant>,
    result: Option<JobResult>,
}

/// Mutable daemon state, all under one lock.
struct Core {
    jobs: BTreeMap<u64, Entry>,
    queue: VecDeque<u64>,
    keys: BTreeMap<String, u64>,
    next_id: u64,
    running: usize,
    draining: bool,
    journal: Option<Journal>,
}

impl Core {
    fn counts(&self) -> (usize, usize, usize) {
        let done = self
            .jobs
            .values()
            .filter(|e| e.state == JobState::Done)
            .count();
        (self.queue.len(), self.running, done)
    }

    fn journal_append(&mut self, event: &JournalEvent) -> Result<(), ServeError> {
        match self.journal.as_mut() {
            Some(j) => j.append(event).map_err(ServeError::from),
            None => Err(ServeError::Io {
                context: "journaling after shutdown".to_string(),
                message: "journal already sealed".to_string(),
            }),
        }
    }
}

struct Shared {
    core: Mutex<Core>,
    /// Signalled when the queue gains work or draining starts.
    work: Condvar,
    /// Signalled when a job finishes (drain waits on this).
    idle: Condvar,
    /// Set once drain has fully quiesced; unblocks the accept loop.
    shutting_down: AtomicBool,
    backoff_unit_ms: u64,
}

/// Lock the core, absorbing poison: the journal-and-queue state is
/// repaired from the journal on restart, so a panicked holder (already
/// contained by `catch_unwind` in the engine) must not wedge the daemon.
fn lock_core(shared: &Shared) -> std::sync::MutexGuard<'_, Core> {
    match shared.core.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A bound daemon, ready to run.
impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers)
            .field("queue_cap", &self.queue_cap)
            .finish_non_exhaustive()
    }
}

/// A bound daemon, ready to run: the journal is recovered and the
/// listener bound, but no thread is live yet.
pub struct Daemon {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    workers: usize,
    queue_cap: usize,
    health_hook: Option<HealthHook>,
    replay: Replay,
}

impl Daemon {
    /// Open (recovering if necessary) the journal, rebuild state, and
    /// bind the listener. No thread starts until [`Daemon::run`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if replay finds corruption;
    /// [`ServeError::Io`] if the bind fails.
    pub fn bind(config: DaemonConfig) -> Result<Daemon, ServeError> {
        let (journal, replay) = Journal::open(&config.journal_dir, config.rotate_every)?;
        let core = rebuild(&replay, journal);
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Io {
            context: format!("binding {}", config.addr),
            message: e.to_string(),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Io {
            context: "reading bound address".to_string(),
            message: e.to_string(),
        })?;
        let shared = Arc::new(Shared {
            core: Mutex::new(core),
            work: Condvar::new(),
            idle: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            backoff_unit_ms: config.backoff_unit_ms,
        });
        Ok(Daemon {
            listener,
            local_addr,
            shared,
            workers: config.workers.max(1),
            queue_cap: config.queue_cap.max(1),
            health_hook: config.health_hook,
            replay,
        })
    }

    /// The address the daemon actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// What journal replay found at startup (for operator logging).
    #[must_use]
    pub fn replay(&self) -> &Replay {
        &self.replay
    }

    /// Serve until a `drain` request completes. Blocks the caller;
    /// spawns workers, the deadline watcher, and one thread per client
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Journal`] if the clean-shutdown seal fails.
    pub fn run(self) -> Result<(), ServeError> {
        let Daemon {
            listener,
            local_addr,
            shared,
            workers,
            queue_cap,
            health_hook,
            replay: _,
        } = self;
        let health_hook = health_hook.map(Arc::new);

        let mut worker_handles = Vec::new();
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(thread::spawn(move || worker_loop(&shared)));
        }
        let watcher_handle = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || deadline_watcher(&shared))
        };

        let mut client_handles = Vec::new();
        for stream in listener.incoming() {
            if shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&shared);
            let hook = health_hook.clone();
            client_handles.push(thread::spawn(move || {
                handle_client(stream, &shared, hook.as_deref(), local_addr, queue_cap);
            }));
        }

        for handle in worker_handles {
            let _ = handle.join();
        }
        let _ = watcher_handle.join();
        // Let in-flight conversations finish (a client may still be
        // reading results after its drain) before sealing the journal;
        // handlers exit at client EOF.
        for handle in client_handles {
            let _ = handle.join();
        }

        let mut core = lock_core(&shared);
        match core.journal.take() {
            Some(journal) => journal.close().map_err(ServeError::from),
            None => Ok(()),
        }
    }
}

/// Rebuild daemon state from a journal replay: completed jobs keep
/// their results, incomplete jobs re-enter the queue in id order, and
/// journaled cancel requests re-fire their tokens.
fn rebuild(replay: &Replay, journal: Journal) -> Core {
    let mut jobs: BTreeMap<u64, Entry> = BTreeMap::new();
    let mut keys: BTreeMap<String, u64> = BTreeMap::new();
    let mut next_id = 0u64;
    for event in &replay.events {
        match event {
            JournalEvent::Submitted { id, spec } => {
                if let Some(key) = &spec.key {
                    keys.insert(key.clone(), *id);
                }
                jobs.insert(
                    *id,
                    Entry {
                        spec: spec.clone(),
                        state: JobState::Queued,
                        token: CancelToken::new(),
                        started: None,
                        result: None,
                    },
                );
                next_id = next_id.max(id + 1);
            }
            JournalEvent::Started { .. } => {
                // The attempt never finished (no Finished event follows,
                // or one does and overrides below); the re-run starts
                // from scratch — execution is deterministic, so the
                // replayed result matches what the lost run would have
                // produced.
            }
            JournalEvent::CancelRequested { id } => {
                if let Some(entry) = jobs.get_mut(id) {
                    entry.token.cancel_with(CancelKind::User);
                }
            }
            JournalEvent::Finished { id, result } => {
                if let Some(entry) = jobs.get_mut(id) {
                    entry.state = JobState::Done;
                    entry.result = Some(result.clone());
                }
            }
            JournalEvent::Shutdown => {}
        }
    }
    let queue: VecDeque<u64> = jobs
        .iter()
        .filter(|(_, e)| e.state != JobState::Done)
        .map(|(id, _)| *id)
        .collect();
    Core {
        jobs,
        queue,
        keys,
        next_id,
        running: 0,
        draining: false,
        journal: Some(journal),
    }
}

/// Worker: pop, journal the attempt, execute outside the lock, journal
/// the result. Exits when draining finds the queue empty.
fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec, token) = {
            let mut core = lock_core(shared);
            loop {
                if let Some(id) = core.queue.pop_front() {
                    let Some(entry) = core.jobs.get_mut(&id) else {
                        continue;
                    };
                    entry.state = JobState::Running;
                    entry.started = Some(Instant::now());
                    let picked = (id, entry.spec.clone(), entry.token.clone());
                    core.running += 1;
                    break picked;
                }
                if core.draining {
                    return;
                }
                core = match shared.work.wait(core) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };

        let shared_for_attempts = shared;
        let mut on_attempt = |attempt: u32| {
            let mut core = lock_core(shared_for_attempts);
            let _ = core.journal_append(&JournalEvent::Started { id, attempt });
        };
        let result = engine::run_job(&spec, &token, shared.backoff_unit_ms, &mut on_attempt);

        let mut core = lock_core(shared);
        let _ = core.journal_append(&JournalEvent::Finished {
            id,
            result: result.clone(),
        });
        if let Some(entry) = core.jobs.get_mut(&id) {
            entry.state = JobState::Done;
            entry.result = Some(result);
        }
        core.running -= 1;
        shared.idle.notify_all();
    }
}

/// Scan running jobs every few milliseconds and fire the deadline
/// cancellation on any that have overstayed. Observed between runs by
/// the engine's cancellable stream.
fn deadline_watcher(shared: &Shared) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        {
            let core = lock_core(shared);
            for entry in core.jobs.values() {
                if entry.state != JobState::Running {
                    continue;
                }
                let (Some(deadline_ms), Some(started)) = (entry.spec.deadline_ms, entry.started)
                else {
                    continue;
                };
                if started.elapsed() >= Duration::from_millis(deadline_ms) {
                    entry.token.cancel_with(CancelKind::Deadline);
                }
            }
        }
        thread::sleep(Duration::from_millis(2));
    }
}

// ------------------------------------------------------------ responses

fn ok_fields(fields: Vec<(&str, Value)>) -> String {
    let mut obj = Map::new();
    obj.insert("ok", Value::Bool(true));
    for (k, v) in fields {
        obj.insert(k, v);
    }
    Value::Object(obj).render_compact()
}

fn err_line(err: &ServeError) -> String {
    let mut inner = Map::new();
    inner.insert("code", Value::String(err.code().to_string()));
    inner.insert("message", Value::String(err.to_string()));
    let mut obj = Map::new();
    obj.insert("ok", Value::Bool(false));
    obj.insert("error", Value::Object(inner));
    Value::Object(obj).render_compact()
}

fn num(n: u64) -> Value {
    Value::Number(Number::U(u128::from(n)))
}

// ------------------------------------------------------------ handlers

fn handle_client(
    stream: TcpStream,
    shared: &Shared,
    health_hook: Option<&HealthHook>,
    local_addr: SocketAddr,
    queue_cap: usize,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(e) => err_line(&ServeError::Protocol(e)),
            Ok(Request::Submit { spec }) => handle_submit(shared, spec, queue_cap),
            Ok(Request::Status { id }) => handle_status(shared, id),
            Ok(Request::Cancel { id }) => handle_cancel(shared, id),
            Ok(Request::Results { id }) => handle_results(shared, id),
            Ok(Request::Health) => handle_health(shared, health_hook),
            Ok(Request::Drain) => handle_drain(shared, local_addr),
        };
        let write = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if write.is_err() {
            break;
        }
    }
}

fn handle_submit(shared: &Shared, spec: JobSpec, queue_cap: usize) -> String {
    if let Err(e) = spec.validate() {
        return err_line(&e);
    }
    let mut core = lock_core(shared);
    if core.draining {
        return err_line(&ServeError::Draining);
    }
    if let Some(key) = &spec.key {
        if let Some(&existing) = core.keys.get(key) {
            let state = core
                .jobs
                .get(&existing)
                .map_or(JobState::Queued, |e| e.state);
            return ok_fields(vec![
                ("id", num(existing)),
                ("state", Value::String(state.as_str().to_string())),
                ("deduped", Value::Bool(true)),
            ]);
        }
    }
    if core.queue.len() >= queue_cap {
        return err_line(&ServeError::Overloaded {
            capacity: queue_cap,
        });
    }
    let id = core.next_id;
    // WAL discipline: the spec is durable before the job becomes
    // visible; a crash between the two replays the submit.
    if let Err(e) = core.journal_append(&JournalEvent::Submitted {
        id,
        spec: spec.clone(),
    }) {
        return err_line(&e);
    }
    core.next_id += 1;
    if let Some(key) = &spec.key {
        core.keys.insert(key.clone(), id);
    }
    core.jobs.insert(
        id,
        Entry {
            spec,
            state: JobState::Queued,
            token: CancelToken::new(),
            started: None,
            result: None,
        },
    );
    core.queue.push_back(id);
    shared.work.notify_one();
    ok_fields(vec![
        ("id", num(id)),
        (
            "state",
            Value::String(JobState::Queued.as_str().to_string()),
        ),
    ])
}

fn handle_status(shared: &Shared, id: u64) -> String {
    let core = lock_core(shared);
    match core.jobs.get(&id) {
        None => err_line(&ServeError::UnknownJob { id }),
        Some(entry) => {
            let mut fields = vec![
                ("id", num(id)),
                ("state", Value::String(entry.state.as_str().to_string())),
            ];
            if let Some(result) = &entry.result {
                fields.push((
                    "outcome",
                    Value::String(result.outcome.as_str().to_string()),
                ));
            }
            ok_fields(fields)
        }
    }
}

fn handle_cancel(shared: &Shared, id: u64) -> String {
    let mut core = lock_core(shared);
    match core.jobs.get(&id) {
        None => return err_line(&ServeError::UnknownJob { id }),
        Some(entry) if entry.state == JobState::Done => {
            return ok_fields(vec![
                ("id", num(id)),
                ("state", Value::String(JobState::Done.as_str().to_string())),
                ("cancelled", Value::Bool(false)),
            ]);
        }
        Some(_) => {}
    }
    if let Err(e) = core.journal_append(&JournalEvent::CancelRequested { id }) {
        return err_line(&e);
    }
    if let Some(entry) = core.jobs.get(&id) {
        entry.token.cancel_with(CancelKind::User);
    }
    shared.work.notify_all();
    ok_fields(vec![("id", num(id)), ("cancelled", Value::Bool(true))])
}

fn handle_results(shared: &Shared, id: u64) -> String {
    let core = lock_core(shared);
    match core.jobs.get(&id) {
        None => err_line(&ServeError::UnknownJob { id }),
        Some(entry) => match &entry.result {
            None => err_line(&ServeError::NotFinished { id }),
            Some(result) => ok_fields(vec![
                ("id", num(id)),
                ("result", serde_json::to_value(result)),
            ]),
        },
    }
}

fn handle_health(shared: &Shared, health_hook: Option<&HealthHook>) -> String {
    let (queued, running, done, draining) = {
        let core = lock_core(shared);
        let (q, r, d) = core.counts();
        (q, r, d, core.draining)
    };
    let probe = health_hook.map(|hook| hook());
    let degraded = probe.as_ref().is_some_and(|p| p.degraded);
    let detail = probe.map_or_else(|| "no self-check configured".to_string(), |p| p.detail);
    let mut jobs = Map::new();
    jobs.insert("queued", num(queued as u64));
    jobs.insert("running", num(running as u64));
    jobs.insert("done", num(done as u64));
    ok_fields(vec![
        (
            "status",
            Value::String(if degraded { "degraded" } else { "ok" }.to_string()),
        ),
        ("detail", Value::String(detail)),
        ("draining", Value::Bool(draining)),
        ("jobs", Value::Object(jobs)),
    ])
}

fn handle_drain(shared: &Shared, local_addr: SocketAddr) -> String {
    let drained_jobs = {
        let mut core = lock_core(shared);
        core.draining = true;
        shared.work.notify_all();
        // Block until every queued and running job reaches a terminal
        // state; the response line is the "fully drained" signal.
        while !core.queue.is_empty() || core.running > 0 {
            core = match shared.idle.wait(core) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        core.counts().2
    };
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        // Sentinel connection: unblock the accept loop so run() can
        // join workers and seal the journal.
        let _ = TcpStream::connect(local_addr);
    }
    ok_fields(vec![
        ("drained", Value::Bool(true)),
        ("done", num(drained_jobs as u64)),
    ])
}

// ------------------------------------------------------------ client

/// Send request lines to a daemon and collect one response line per
/// request (the thin client used by the CLI and the fault harness).
///
/// # Errors
///
/// [`ServeError::Io`] on connect/read/write failures.
pub fn request_lines(addr: &str, lines: &[String]) -> Result<Vec<String>, ServeError> {
    let io = |context: &str, e: std::io::Error| ServeError::Io {
        context: context.to_string(),
        message: e.to_string(),
    };
    let stream = TcpStream::connect(addr).map_err(|e| io(&format!("connecting {addr}"), e))?;
    let mut writer = stream.try_clone().map_err(|e| io("cloning stream", e))?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| io("sending request", e))?;
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| io("reading response", e))?;
        if n == 0 {
            return Err(ServeError::Io {
                context: "reading response".to_string(),
                message: "connection closed before a response arrived".to_string(),
            });
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}

/// One-shot [`request_lines`].
///
/// # Errors
///
/// [`ServeError::Io`] on connect/read/write failures, or if the daemon
/// closed without responding.
pub fn request_line(addr: &str, line: &str) -> Result<String, ServeError> {
    let mut responses = request_lines(addr, &[line.to_string()])?;
    responses.pop().ok_or_else(|| ServeError::Io {
        context: "reading response".to_string(),
        message: "no response line".to_string(),
    })
}
