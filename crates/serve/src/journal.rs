//! The crash-safe write-ahead job journal.
//!
//! Every state transition the daemon must survive — submission, attempt
//! start, cancellation request, completion, clean shutdown — is appended
//! to a segmented log *before* it takes effect, one compact CRC-enveloped
//! JSON line per event (the same `{"cadapt_envelope":1,"crc32":…,
//! "payload":…}` envelope the artifact store uses, applied per line).
//!
//! Durability discipline:
//!
//! * **Append**: write the line, then `sync_data` — an acknowledged event
//!   is on disk before the daemon acts on it.
//! * **Rotation**: the active segment `wal-<seq>.open` is sealed by
//!   `sync_all` + atomic rename to `wal-<seq>.log` + directory fsync once
//!   it reaches the configured record count; sealed segments are
//!   immutable and verified strictly.
//! * **Recovery**: sealed segments must verify line-for-line (any CRC or
//!   parse failure is typed [`JournalError::Corrupt`] — silent corruption
//!   never replays). A leftover `.open` segment is the crash case: its
//!   valid prefix is kept, a torn **final** line is dropped (the only
//!   damage an interrupted append can cause), and the prefix is re-sealed
//!   via tmp + fsync + rename before a fresh segment starts. An invalid
//!   line *before* a valid one is real corruption and refuses to replay.
//!
//! A [`JournalEvent::Shutdown`] as the final event of a fully-sealed log
//! is the clean-shutdown marker; its absence tells the restarting daemon
//! to re-enqueue incomplete jobs.

use crate::outcome::JobResult;
use crate::spec::JobSpec;
use cadapt_core::checksum::crc32_tag;
use serde::{Deserialize, Map, Number, Serialize, Value};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Envelope format version (shared with the artifact store).
pub const ENVELOPE_VERSION: u64 = 1;

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A job was admitted; its spec is now durable.
    Submitted {
        /// The id assigned at admission.
        id: u64,
        /// The full spec (defaults applied).
        spec: JobSpec,
    },
    /// An execution attempt began.
    Started {
        /// Which job.
        id: u64,
        /// Which attempt (0-based).
        attempt: u32,
    },
    /// A client asked for cancellation.
    CancelRequested {
        /// Which job.
        id: u64,
    },
    /// The job reached a terminal outcome.
    Finished {
        /// Which job.
        id: u64,
        /// The final record, as served by `results`.
        result: JobResult,
    },
    /// Clean-shutdown marker: the daemon drained and stopped on purpose.
    Shutdown,
}

/// Why the journal refused an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level I/O failure.
    Io {
        /// What the journal was doing.
        context: String,
        /// The underlying error rendered as text.
        message: String,
    },
    /// A sealed segment (or the non-tail part of the open segment)
    /// failed verification; replay refuses to proceed.
    Corrupt {
        /// The segment file name.
        segment: String,
        /// 1-based line number of the first bad line.
        line: usize,
        /// What failed (parse, version, CRC, payload shape).
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { context, message } => {
                write!(f, "journal i/o failure while {context}: {message}")
            }
            JournalError::Corrupt {
                segment,
                line,
                reason,
            } => write!(f, "journal corruption in {segment} line {line}: {reason}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(context: &str, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        context: context.to_string(),
        message: e.to_string(),
    }
}

/// Render one event as a compact CRC-enveloped JSON line (no newline).
#[must_use]
pub fn envelope_line(event: &JournalEvent) -> String {
    let payload = serde_json::to_value(event);
    let mut envelope = Map::new();
    envelope.insert(
        "cadapt_envelope",
        Value::Number(Number::U(u128::from(ENVELOPE_VERSION))),
    );
    envelope.insert(
        "crc32",
        Value::String(crc32_tag(payload.render_compact().as_bytes())),
    );
    envelope.insert("payload", payload);
    Value::Object(envelope).render_compact()
}

/// Decode one journal line, verifying envelope version and CRC.
///
/// # Errors
///
/// A human-readable reason string (wrapped into [`JournalError::Corrupt`]
/// with position information by the caller).
pub fn decode_line(line: &str) -> Result<JournalEvent, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("line is not JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| "envelope is not an object".to_string())?;
    let version = obj
        .get("cadapt_envelope")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing `cadapt_envelope` version field".to_string())?;
    if version != ENVELOPE_VERSION {
        return Err(format!(
            "unsupported envelope version {version} (expected {ENVELOPE_VERSION})"
        ));
    }
    let declared = obj
        .get("crc32")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing `crc32` field".to_string())?;
    let payload = obj
        .get("payload")
        .ok_or_else(|| "missing `payload` field".to_string())?;
    let actual = crc32_tag(payload.render_compact().as_bytes());
    if declared != actual {
        return Err(format!(
            "CRC mismatch: declared {declared}, computed {actual}"
        ));
    }
    serde_json::from_value(payload).map_err(|e| format!("payload is not a journal event: {e}"))
}

/// What replay found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Every surviving event, in append order across segments.
    pub events: Vec<JournalEvent>,
    /// Whether the previous daemon shut down cleanly (all segments
    /// sealed and the final event is [`JournalEvent::Shutdown`]).
    pub clean_shutdown: bool,
    /// Sealed segments read.
    pub segments: u64,
    /// Whether a torn final line was dropped from a crashed open segment.
    pub dropped_torn_tail: bool,
}

/// The append handle over the journal directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    seq: u64,
    file: File,
    records: u64,
    rotate_every: u64,
}

fn segment_name(seq: u64, sealed: bool) -> String {
    let ext = if sealed { "log" } else { "open" };
    format!("wal-{seq:08}.{ext}")
}

/// Parse `wal-<seq>.<ext>` back into `(seq, sealed)`.
fn parse_segment_name(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("wal-")?;
    let (digits, ext) = rest.split_once('.')?;
    let seq = digits.parse::<u64>().ok()?;
    match ext {
        "log" => Some((seq, true)),
        "open" => Some((seq, false)),
        _ => None,
    }
}

fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    let d = File::open(dir).map_err(|e| io_err("opening journal dir for fsync", &e))?;
    d.sync_all().map_err(|e| io_err("fsyncing journal dir", &e))
}

/// Split file content into lines, reporting whether the final line is
/// newline-terminated.
fn split_lines(content: &str) -> (Vec<&str>, bool) {
    let terminated = content.ends_with('\n');
    let lines: Vec<&str> = content.split('\n').filter(|l| !l.is_empty()).collect();
    (lines, terminated)
}

impl Journal {
    /// Open (and if necessary recover) the journal at `dir`, replaying
    /// every surviving event, then start a fresh open segment.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on filesystem failures;
    /// [`JournalError::Corrupt`] if a sealed segment — or any non-tail
    /// line of a crashed open segment — fails verification.
    pub fn open(dir: &Path, rotate_every: u64) -> Result<(Journal, Replay), JournalError> {
        fs::create_dir_all(dir).map_err(|e| io_err("creating journal dir", &e))?;
        let mut sealed: Vec<u64> = Vec::new();
        let mut open_segs: Vec<u64> = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| io_err("listing journal dir", &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing journal dir", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            match parse_segment_name(name) {
                Some((seq, true)) => sealed.push(seq),
                Some((seq, false)) => open_segs.push(seq),
                None => {}
            }
        }
        sealed.sort_unstable();
        open_segs.sort_unstable();
        // A seq with both a sealed and an open file means a previous
        // recovery crashed between sealing the rewrite and removing the
        // crashed original; the sealed copy is authoritative.
        open_segs.retain(|seq| {
            if sealed.binary_search(seq).is_ok() {
                let _ = fs::remove_file(dir.join(segment_name(*seq, false)));
                false
            } else {
                true
            }
        });

        let mut events = Vec::new();
        for &seq in &sealed {
            let name = segment_name(seq, true);
            let path = dir.join(&name);
            let content =
                fs::read_to_string(&path).map_err(|e| io_err("reading sealed segment", &e))?;
            let (lines, terminated) = split_lines(&content);
            for (i, line) in lines.iter().enumerate() {
                let last = i + 1 == lines.len();
                if last && !terminated {
                    return Err(JournalError::Corrupt {
                        segment: name.clone(),
                        line: i + 1,
                        reason: "sealed segment ends without a newline".to_string(),
                    });
                }
                match decode_line(line) {
                    Ok(ev) => events.push(ev),
                    Err(reason) => {
                        return Err(JournalError::Corrupt {
                            segment: name.clone(),
                            line: i + 1,
                            reason,
                        })
                    }
                }
            }
        }

        // A leftover open segment is the crash case: keep the valid
        // prefix, drop a torn final line, refuse anything worse.
        let mut dropped_torn_tail = false;
        let had_open = !open_segs.is_empty();
        for &seq in &open_segs {
            let name = segment_name(seq, false);
            let path = dir.join(&name);
            let content =
                fs::read_to_string(&path).map_err(|e| io_err("reading open segment", &e))?;
            let (lines, terminated) = split_lines(&content);
            let mut kept_lines: Vec<&str> = Vec::new();
            for (i, line) in lines.iter().enumerate() {
                let last = i + 1 == lines.len();
                match decode_line(line) {
                    Ok(ev) if !last || terminated => {
                        kept_lines.push(line);
                        events.push(ev);
                    }
                    // An unterminated final line is torn even if its
                    // bytes happen to verify so far; drop it — the
                    // append never acknowledged.
                    Ok(_) => dropped_torn_tail = true,
                    Err(reason) if last => {
                        dropped_torn_tail = true;
                        let _ = reason;
                    }
                    Err(reason) => {
                        return Err(JournalError::Corrupt {
                            segment: name.clone(),
                            line: i + 1,
                            reason,
                        })
                    }
                }
            }
            // Re-seal the surviving prefix via tmp + fsync + rename so the
            // next replay sees only strictly-verifiable sealed segments.
            let tmp = dir.join(format!("{name}.tmp"));
            {
                let mut f =
                    File::create(&tmp).map_err(|e| io_err("creating recovery tmp file", &e))?;
                for line in &kept_lines {
                    f.write_all(line.as_bytes())
                        .and_then(|()| f.write_all(b"\n"))
                        .map_err(|e| io_err("rewriting recovered segment", &e))?;
                }
                f.sync_all()
                    .map_err(|e| io_err("fsyncing recovered segment", &e))?;
            }
            fs::rename(&tmp, dir.join(segment_name(seq, true)))
                .map_err(|e| io_err("sealing recovered segment", &e))?;
            fs::remove_file(&path).map_err(|e| io_err("removing crashed open segment", &e))?;
            sync_dir(dir)?;
        }

        let clean_shutdown = !had_open && matches!(events.last(), Some(JournalEvent::Shutdown));
        let next_seq = sealed
            .iter()
            .chain(open_segs.iter())
            .max()
            .map_or(0, |m| m + 1);
        let journal = Journal::start_segment(dir.to_path_buf(), next_seq, rotate_every)?;
        let replay = Replay {
            events,
            clean_shutdown,
            segments: sealed.len() as u64 + open_segs.len() as u64,
            dropped_torn_tail,
        };
        Ok((journal, replay))
    }

    fn start_segment(dir: PathBuf, seq: u64, rotate_every: u64) -> Result<Journal, JournalError> {
        let path = dir.join(segment_name(seq, false));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("creating open segment", &e))?;
        sync_dir(&dir)?;
        Ok(Journal {
            dir,
            seq,
            file,
            records: 0,
            rotate_every: rotate_every.max(1),
        })
    }

    /// Append one event durably: the line is on disk when this returns.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the write or fsync fails.
    pub fn append(&mut self, event: &JournalEvent) -> Result<(), JournalError> {
        let mut line = envelope_line(event);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err("appending journal event", &e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsyncing journal append", &e))?;
        self.records += 1;
        if self.records >= self.rotate_every {
            self.rotate()?;
        }
        Ok(())
    }

    /// Seal the active segment and start the next one.
    fn rotate(&mut self) -> Result<(), JournalError> {
        self.seal_current()?;
        let next = Journal::start_segment(self.dir.clone(), self.seq + 1, self.rotate_every)?;
        *self = next;
        Ok(())
    }

    fn seal_current(&mut self) -> Result<(), JournalError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("fsyncing segment before seal", &e))?;
        let open_path = self.dir.join(segment_name(self.seq, false));
        let sealed_path = self.dir.join(segment_name(self.seq, true));
        fs::rename(&open_path, &sealed_path).map_err(|e| io_err("sealing segment", &e))?;
        sync_dir(&self.dir)
    }

    /// Clean shutdown: append the [`JournalEvent::Shutdown`] marker and
    /// seal the active segment, consuming the journal.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the final append or seal fails.
    pub fn close(mut self) -> Result<(), JournalError> {
        // Append without triggering rotation: the marker belongs to the
        // segment being sealed.
        let mut line = envelope_line(&JournalEvent::Shutdown);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err("appending shutdown marker", &e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsyncing shutdown marker", &e))?;
        self.seal_current()
    }

    /// The directory this journal lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{JobOutcome, JobResult};
    use crate::spec::{Algo, JobSpec};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cadapt-serve-journal-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_events() -> Vec<JournalEvent> {
        let spec = JobSpec::basic(Algo::MmScan, 64);
        vec![
            JournalEvent::Submitted { id: 0, spec },
            JournalEvent::Started { id: 0, attempt: 0 },
            JournalEvent::Finished {
                id: 0,
                result: JobResult {
                    outcome: JobOutcome::Completed,
                    attempts: 1,
                    backoff_ms: vec![],
                    boxes_received: 12,
                    io_used: 345,
                    progress: 512,
                    ratio: 1.5,
                    error: None,
                },
            },
        ]
    }

    #[test]
    fn events_survive_close_and_reopen() {
        let dir = scratch_dir("reopen");
        let (mut j, replay) = Journal::open(&dir, 100).unwrap();
        assert!(replay.events.is_empty());
        assert!(!replay.clean_shutdown);
        for ev in sample_events() {
            j.append(&ev).unwrap();
        }
        j.close().unwrap();

        let (_j2, replay) = Journal::open(&dir, 100).unwrap();
        let mut expected = sample_events();
        expected.push(JournalEvent::Shutdown);
        assert_eq!(replay.events, expected);
        assert!(replay.clean_shutdown);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_replay_spans_them() {
        let dir = scratch_dir("rotate");
        let (mut j, _) = Journal::open(&dir, 2).unwrap();
        for ev in sample_events() {
            j.append(&ev).unwrap();
        }
        // 3 events with rotate_every=2: one sealed segment + one open.
        let sealed = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.ends_with(".log"))
            .count();
        assert_eq!(sealed, 1);
        drop(j); // simulate crash: open segment left behind
        let (_j2, replay) = Journal::open(&dir, 2).unwrap();
        assert_eq!(replay.events, sample_events());
        assert!(!replay.clean_shutdown);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_open_segment_is_dropped_not_fatal() {
        let dir = scratch_dir("torn");
        let (mut j, _) = Journal::open(&dir, 100).unwrap();
        for ev in sample_events() {
            j.append(&ev).unwrap();
        }
        drop(j);
        // Tear the final line mid-byte.
        let open = dir.join(segment_name(0, false));
        let content = fs::read(&open).unwrap();
        fs::write(&open, &content[..content.len() - 7]).unwrap();

        let (_j2, replay) = Journal::open(&dir, 100).unwrap();
        assert_eq!(replay.events, sample_events()[..2].to_vec());
        assert!(replay.dropped_torn_tail);
        assert!(!replay.clean_shutdown);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_sealed_segment_is_typed_and_fatal() {
        let dir = scratch_dir("corrupt");
        let (mut j, _) = Journal::open(&dir, 2).unwrap();
        for ev in sample_events() {
            j.append(&ev).unwrap();
        }
        j.close().unwrap();
        // Flip one byte inside the first sealed segment's payload.
        let sealed = dir.join(segment_name(0, true));
        let mut content = fs::read(&sealed).unwrap();
        let mid = content.len() / 2;
        content[mid] ^= 0x01;
        fs::write(&sealed, &content).unwrap();

        match Journal::open(&dir, 2) {
            Err(JournalError::Corrupt { segment, .. }) => {
                assert_eq!(segment, segment_name(0, true));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn envelope_line_round_trips_every_event_shape() {
        for ev in sample_events().into_iter().chain([
            JournalEvent::CancelRequested { id: 3 },
            JournalEvent::Shutdown,
        ]) {
            let line = envelope_line(&ev);
            assert_eq!(decode_line(&line).unwrap(), ev);
        }
    }

    #[test]
    fn decode_rejects_bad_envelopes_with_reasons() {
        assert!(decode_line("garbage").is_err());
        assert!(decode_line("[]").is_err());
        assert!(
            decode_line(r#"{"cadapt_envelope":2,"crc32":"crc32:0","payload":1}"#)
                .unwrap_err()
                .contains("version")
        );
        assert!(decode_line(r#"{"cadapt_envelope":1,"payload":1}"#)
            .unwrap_err()
            .contains("crc32"));
        let good = envelope_line(&JournalEvent::Shutdown);
        let tampered = good.replace("Shutdown", "Shutdow2");
        assert!(decode_line(&tampered).unwrap_err().contains("CRC mismatch"));
    }
}
