//! Property-based validation of the trace bytecode: compilation round-trips
//! every event stream exactly, the streaming-sink route matches
//! recompilation of the recorded trace byte for byte, and the decoder's
//! size hints are exact.
//!
//! The generators deliberately mix the shapes the encoder optimises for
//! (strided scans → `RUN`, short cycles → `LOOP`) with adversarial noise
//! (random touches, leaf bursts, near-`u64::MAX` addresses exercising the
//! wrapping delta arithmetic) so both the fast paths and the spill paths
//! of the windowed loop detector are hit.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use cadapt_trace::{compile, TraceCompiler, TraceSink, Tracer};
use proptest::prelude::*;

/// One step of a generated workload, replayed identically into any sink.
#[derive(Debug, Clone)]
enum Op {
    /// A single touch of a small-universe block (re-accesses are common).
    Touch(u64),
    /// A touch near the top of the address space (wrapping deltas).
    TouchHigh(u64),
    /// A leaf mark.
    Leaf,
    /// A strided scan — what the encoder folds into `RUN` tokens.
    Strided { start: u64, stride: u64, len: usize },
    /// A repeated short cycle — what the loop detector folds into `LOOP`.
    Cycle { blocks: Vec<u64>, reps: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..40).prop_map(Op::Touch),
        (0u64..50).prop_map(|x| Op::TouchHigh(u64::MAX - x)),
        Just(Op::Leaf),
        ((0u64..1000), (0u64..9), (1usize..40)).prop_map(|(start, stride, len)| Op::Strided {
            start,
            stride,
            len
        }),
        (proptest::collection::vec(0u64..20, 1..6), (1usize..12))
            .prop_map(|(blocks, reps)| Op::Cycle { blocks, reps }),
    ]
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(), 0..60)
}

/// Replay the generated ops into any sink (block_words = 1, so touches are
/// block ids directly).
fn run_ops<S: TraceSink>(ops: &[Op], sink: &mut S) {
    for op in ops {
        match op {
            Op::Touch(b) | Op::TouchHigh(b) => sink.touch(*b),
            Op::Leaf => sink.leaf(),
            Op::Strided { start, stride, len } => {
                for i in 0..*len {
                    sink.touch(start.wrapping_add(stride.wrapping_mul(i as u64)));
                }
            }
            Op::Cycle { blocks, reps } => {
                for _ in 0..*reps {
                    for &b in blocks {
                        sink.touch(b);
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decoding the compiled program reproduces the recorded event vector
    /// exactly, and the program's stored counts equal the trace's.
    #[test]
    fn compilation_round_trips(ops in ops_strategy()) {
        let mut tracer = Tracer::new(1);
        run_ops(&ops, &mut tracer);
        let trace = tracer.into_trace();
        let program = compile(&trace);
        let decoded: Vec<_> = program.events().collect();
        prop_assert_eq!(decoded.as_slice(), trace.events());
        prop_assert_eq!(program.accesses(), trace.accesses());
        prop_assert_eq!(program.leaves(), trace.leaves());
        prop_assert_eq!(program.distinct_blocks(), trace.distinct_blocks());
    }

    /// Streaming events straight into a `TraceCompiler` (the structural
    /// emission route the kernels use) produces a program byte-identical
    /// to compiling the recorded trace after the fact.
    #[test]
    fn sink_route_equals_recompilation(ops in ops_strategy()) {
        let mut tracer = Tracer::new(1);
        run_ops(&ops, &mut tracer);
        let trace = tracer.into_trace();

        let mut compiler = TraceCompiler::new(1);
        run_ops(&ops, &mut compiler);
        let direct = compiler.finish();

        prop_assert_eq!(compile(&trace), direct);
    }

    /// Internal iteration (`fold`, the replay fast path) yields exactly
    /// the events external iteration (`next`) yields, from any split
    /// point — including states mid-run and mid-loop.
    #[test]
    fn internal_fold_equals_external_iteration(ops in ops_strategy(), split in 0usize..64) {
        let mut compiler = TraceCompiler::new(1);
        run_ops(&ops, &mut compiler);
        let program = compiler.finish();
        let via_next: Vec<_> = program.events().collect();
        let split = split.min(via_next.len());
        let mut iter = program.events();
        for _ in 0..split {
            iter.next();
        }
        let via_fold = iter.fold(Vec::new(), |mut v, e| { v.push(e); v });
        prop_assert_eq!(via_fold.as_slice(), &via_next[split..]);
    }

    /// The decoder's `size_hint` is exact at every step of iteration.
    #[test]
    fn size_hints_are_exact(ops in ops_strategy()) {
        let mut compiler = TraceCompiler::new(1);
        run_ops(&ops, &mut compiler);
        let program = compiler.finish();
        let total = usize::try_from(program.event_count()).unwrap();
        let mut events = program.events();
        for remaining in (1..=total).rev() {
            prop_assert_eq!(events.size_hint(), (remaining, Some(remaining)));
            prop_assert!(events.next().is_some());
        }
        prop_assert_eq!(events.size_hint(), (0, Some(0)));
        prop_assert!(events.next().is_none());
    }
}
