//! Traced Strassen matrix multiplication — (7, 4, 1)-regular.
//!
//! Seven half-size products stitched together by element-wise add/subtract
//! scans: T(N) = 7 T(N/4) + Θ(N/B). The paper's conclusion highlights that
//! all known subcubic multiplications (Strassen included) sit in the gap
//! regime (a = 7 > b = 4, c = 1) — logarithmically non-adaptive in the
//! worst case, adaptive in expectation under smoothing.

use crate::bytecode::{TraceCompiler, TraceProgram};
use crate::matrix::ZMatrix;
use crate::tracer::{AddressSpace, BlockTrace, TraceSink, TracedBuf, Tracer};

/// A window into a traced buffer: (offset, length implied by context).
type Win<'a> = (&'a TracedBuf, usize);

fn scan_binop<S: TraceSink>(
    space: &mut AddressSpace,
    tracer: &mut S,
    x: Win<'_>,
    y: Win<'_>,
    len: usize,
    sub: bool,
) -> TracedBuf {
    let mut out = space.alloc(len);
    for i in 0..len {
        let a = x.0.read(x.1 + i, tracer);
        let b = y.0.read(y.1 + i, tracer);
        out.write(i, if sub { a - b } else { a + b }, tracer);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn strassen_rec<S: TraceSink>(
    space: &mut AddressSpace,
    tracer: &mut S,
    a: &TracedBuf,
    a_off: usize,
    b: &TracedBuf,
    b_off: usize,
    side: usize,
) -> TracedBuf {
    if side == 1 {
        let mut out = space.alloc(1);
        let v = a.read(a_off, tracer) * b.read(b_off, tracer);
        out.write(0, v, tracer);
        tracer.leaf();
        return out;
    }
    let half = side / 2;
    let q = half * half;
    let [a11, a12, a21, a22] = [a_off, a_off + q, a_off + 2 * q, a_off + 3 * q];
    let [b11, b12, b21, b22] = [b_off, b_off + q, b_off + 2 * q, b_off + 3 * q];

    // Operand scans (each Θ(q), together the level's Θ(N) linear work).
    let s1 = scan_binop(space, tracer, (a, a11), (a, a22), q, false); // A11+A22
    let s2 = scan_binop(space, tracer, (b, b11), (b, b22), q, false); // B11+B22
    let s3 = scan_binop(space, tracer, (a, a21), (a, a22), q, false); // A21+A22
    let s4 = scan_binop(space, tracer, (b, b12), (b, b22), q, true); // B12−B22
    let s5 = scan_binop(space, tracer, (b, b21), (b, b11), q, true); // B21−B11
    let s6 = scan_binop(space, tracer, (a, a11), (a, a12), q, false); // A11+A12
    let s7 = scan_binop(space, tracer, (a, a21), (a, a11), q, true); // A21−A11
    let s8 = scan_binop(space, tracer, (b, b11), (b, b12), q, false); // B11+B12
    let s9 = scan_binop(space, tracer, (a, a12), (a, a22), q, true); // A12−A22
    let s10 = scan_binop(space, tracer, (b, b21), (b, b22), q, false); // B21+B22

    // Seven recursive products.
    let m1 = strassen_rec(space, tracer, &s1, 0, &s2, 0, half);
    let m2 = strassen_rec(space, tracer, &s3, 0, b, b11, half);
    let m3 = strassen_rec(space, tracer, a, a11, &s4, 0, half);
    let m4 = strassen_rec(space, tracer, a, a22, &s5, 0, half);
    let m5 = strassen_rec(space, tracer, &s6, 0, b, b22, half);
    let m6 = strassen_rec(space, tracer, &s7, 0, &s8, 0, half);
    let m7 = strassen_rec(space, tracer, &s9, 0, &s10, 0, half);

    // Combine scans: C11 = M1+M4−M5+M7, C12 = M3+M5, C21 = M2+M4,
    // C22 = M1−M2+M3+M6.
    let mut out = space.alloc(side * side);
    for i in 0..q {
        let v = m1.read(i, tracer) + m4.read(i, tracer) - m5.read(i, tracer) + m7.read(i, tracer);
        out.write(i, v, tracer);
    }
    for i in 0..q {
        let v = m3.read(i, tracer) + m5.read(i, tracer);
        out.write(q + i, v, tracer);
    }
    for i in 0..q {
        let v = m2.read(i, tracer) + m4.read(i, tracer);
        out.write(2 * q + i, v, tracer);
    }
    for i in 0..q {
        let v = m1.read(i, tracer) - m2.read(i, tracer) + m3.read(i, tracer) + m6.read(i, tracer);
        out.write(3 * q + i, v, tracer);
    }
    out
}

/// Multiply `a · b` with Strassen's algorithm, reporting every access to
/// `sink`.
///
/// # Panics
///
/// Panics if the matrices differ in side.
pub fn strassen_with<S: TraceSink>(
    a: &ZMatrix,
    b: &ZMatrix,
    block_words: u64,
    sink: &mut S,
) -> ZMatrix {
    assert_eq!(a.side(), b.side(), "sides must match");
    let mut space = AddressSpace::new(block_words);
    let ta = space.alloc_from(a.z_data());
    let tb = space.alloc_from(b.z_data());
    let out = strassen_rec(&mut space, sink, &ta, 0, &tb, 0, a.side());
    ZMatrix::from_z_data(a.side(), out.untraced())
}

/// Multiply `a · b` with Strassen's algorithm, returning the product and
/// the block trace at block size `block_words`.
///
/// # Panics
///
/// Panics if the matrices differ in side.
#[must_use]
pub fn strassen(a: &ZMatrix, b: &ZMatrix, block_words: u64) -> (ZMatrix, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let result = strassen_with(a, b, block_words, &mut tracer);
    (result, tracer.into_trace())
}

/// Multiply `a · b` with Strassen's algorithm, emitting the trace directly
/// as bytecode — no event vector is ever materialised.
#[must_use]
pub fn strassen_compiled(a: &ZMatrix, b: &ZMatrix, block_words: u64) -> (ZMatrix, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let result = strassen_with(a, b, block_words, &mut compiler);
    (result, compiler.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::naive_multiply;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(side: usize, seed: u64) -> ZMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<f64> = (0..side * side)
            .map(|_| f64::from(rng.gen_range(-3i8..=3)))
            .collect();
        ZMatrix::from_row_major(side, &rows)
    }

    #[test]
    fn strassen_correct_up_to_16() {
        for side in [1usize, 2, 4, 8, 16] {
            let a = random_matrix(side, 21);
            let b = random_matrix(side, 22);
            let (c, _) = strassen(&a, &b, 4);
            let expected = naive_multiply(side, &a.to_row_major(), &b.to_row_major());
            assert_eq!(c.to_row_major(), expected, "side {side}");
        }
    }

    #[test]
    fn leaf_count_is_seven_to_the_log() {
        // side = 2^k ⇒ 7^k base multiplications.
        let side = 8; // k = 3
        let a = random_matrix(side, 23);
        let b = random_matrix(side, 24);
        let (_, t) = strassen(&a, &b, 1);
        assert_eq!(t.leaves(), 7u128.pow(3));
    }

    #[test]
    fn fewer_leaves_than_classical() {
        let side = 16;
        let a = random_matrix(side, 25);
        let b = random_matrix(side, 26);
        let (_, ts) = strassen(&a, &b, 4);
        let (_, tc) = crate::mm::mm_scan(&a, &b, 4);
        assert!(ts.leaves() < tc.leaves(), "7^k < 8^k");
    }

    #[test]
    fn agrees_with_mm_scan() {
        let a = random_matrix(8, 27);
        let b = random_matrix(8, 28);
        let (c1, _) = strassen(&a, &b, 2);
        let (c2, _) = crate::mm::mm_scan(&a, &b, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn compiled_emission_matches_recorded_trace() {
        let a = random_matrix(8, 29);
        let b = random_matrix(8, 30);
        let (c1, trace) = strassen(&a, &b, 4);
        let (c2, program) = strassen_compiled(&a, &b, 4);
        assert_eq!(c1, c2);
        assert_eq!(crate::bytecode::compile(&trace), program);
        let decoded: Vec<_> = program.events().collect();
        assert_eq!(decoded, trace.events());
    }
}
