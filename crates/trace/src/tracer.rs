//! Memory-access tracing infrastructure.
//!
//! Algorithms in this crate operate on [`TracedBuf`]s — flat `f64` buffers
//! with a base address in a shared word-granularity address space. Every
//! read and write reports its address to the [`Tracer`], which maps words
//! to blocks of `block_words` words each and appends a [`TraceEvent`].
//! Base cases additionally mark progress with [`Tracer::leaf`], giving the
//! replayer the same progress signal the abstract model uses.

use cadapt_core::{Blocks, Leaves};
// cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
use std::collections::HashSet;

/// A consumer of instrumented memory accesses and leaf marks.
///
/// The traced kernels are generic over this trait, so one instrumented
/// recursion can either *record* (a [`Tracer`] materialising a
/// [`BlockTrace`]) or *compile* (a `bytecode::TraceCompiler` emitting the
/// compact program directly) — the event stream seen by a sink is
/// identical either way.
pub trait TraceSink {
    /// Report an access (read or write) to word address `addr`.
    fn touch(&mut self, addr: u64);
    /// Report a completed base-case subproblem.
    fn leaf(&mut self);
}

/// One event of a block trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An access (read or write) to the given block.
    Access(u64),
    /// A base-case subproblem completed here.
    Leaf,
}

/// A recorded block-level trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTrace {
    events: Vec<TraceEvent>,
    distinct_blocks: Blocks,
    accesses: u64,
    leaves: Leaves,
}

impl BlockTrace {
    /// The events, in program order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of distinct blocks touched — the working-set size, i.e. the
    /// trace's "problem size in blocks" for Eq. 2 purposes.
    #[must_use]
    pub fn distinct_blocks(&self) -> Blocks {
        self.distinct_blocks
    }

    /// Total base-case marks.
    #[must_use]
    pub fn leaves(&self) -> Leaves {
        self.leaves
    }

    /// Total accesses (excluding leaf marks). Counted at record time, so
    /// this is O(1) — no per-call scan of the event vector.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// Collects a [`BlockTrace`] from instrumented code.
#[derive(Debug)]
pub struct Tracer {
    block_words: u64,
    events: Vec<TraceEvent>,
    // cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
    seen: HashSet<u64>,
    accesses: u64,
    leaves: Leaves,
}

impl Tracer {
    /// A tracer mapping `block_words` consecutive words to one block.
    ///
    /// # Panics
    ///
    /// Panics if `block_words == 0`.
    #[must_use]
    pub fn new(block_words: u64) -> Self {
        assert!(block_words >= 1, "blocks must hold at least one word");
        Tracer {
            block_words,
            events: Vec::new(),
            // cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
            seen: HashSet::new(),
            accesses: 0,
            leaves: 0,
        }
    }

    /// A tracer with its event buffer and distinct-block set preallocated
    /// from known counts — e.g. the running counts a compiled
    /// [`crate::bytecode::TraceProgram`] carries for the same workload.
    /// Recording then never reallocates mid-trace. Capacities are hints:
    /// the recorded trace is bit-identical to one from [`Tracer::new`].
    ///
    /// # Panics
    ///
    /// Panics if `block_words == 0`.
    #[must_use]
    pub fn with_capacity(
        block_words: u64,
        accesses: u64,
        leaves: Leaves,
        distinct_blocks: Blocks,
    ) -> Self {
        assert!(block_words >= 1, "blocks must hold at least one word");
        let events = u128::from(accesses) + leaves;
        Tracer {
            block_words,
            events: Vec::with_capacity(usize::try_from(events).unwrap_or(0)),
            // cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
            seen: HashSet::with_capacity(usize::try_from(distinct_blocks).unwrap_or(0)),
            accesses: 0,
            leaves: 0,
        }
    }

    /// The block size in words.
    #[must_use]
    pub fn block_words(&self) -> u64 {
        self.block_words
    }

    /// Record an access to word address `addr`.
    pub fn touch(&mut self, addr: u64) {
        let block = addr / self.block_words;
        self.seen.insert(block);
        self.accesses += 1;
        self.events.push(TraceEvent::Access(block));
    }

    /// Record a completed base case.
    pub fn leaf(&mut self) {
        self.leaves += 1;
        self.events.push(TraceEvent::Leaf);
    }

    /// Finish tracing.
    #[must_use]
    pub fn into_trace(self) -> BlockTrace {
        BlockTrace {
            events: self.events,
            distinct_blocks: self.seen.len() as Blocks,
            accesses: self.accesses,
            leaves: self.leaves,
        }
    }
}

impl TraceSink for Tracer {
    fn touch(&mut self, addr: u64) {
        Tracer::touch(self, addr);
    }

    fn leaf(&mut self) {
        Tracer::leaf(self);
    }
}

/// Bump allocator for the traced address space; allocations are
/// block-aligned so distinct buffers never share a block.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
    block_words: u64,
}

impl AddressSpace {
    /// A fresh address space with the given block size in words.
    ///
    /// # Panics
    ///
    /// Panics if `block_words == 0`.
    #[must_use]
    pub fn new(block_words: u64) -> Self {
        assert!(block_words >= 1, "blocks must hold at least one word");
        AddressSpace {
            next: 0,
            block_words,
        }
    }

    /// Allocate a zeroed buffer of `words` words.
    #[must_use]
    pub fn alloc(&mut self, words: usize) -> TracedBuf {
        let base = self.next;
        let len = words as u64;
        // Round the next base up to a block boundary.
        let end = base + len;
        self.next = end.div_ceil(self.block_words) * self.block_words;
        TracedBuf {
            base,
            data: vec![0.0; words],
        }
    }

    /// Allocate a buffer initialised from a slice.
    #[must_use]
    pub fn alloc_from(&mut self, values: &[f64]) -> TracedBuf {
        let mut buf = self.alloc(values.len());
        buf.data.copy_from_slice(values);
        buf
    }

    /// Total words allocated (including alignment padding).
    #[must_use]
    pub fn words_allocated(&self) -> u64 {
        self.next
    }
}

/// A flat `f64` buffer whose accesses are reported to a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TracedBuf {
    base: u64,
    data: Vec<f64>,
}

impl TracedBuf {
    /// Length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Base word address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Traced read of word `i`.
    #[must_use]
    pub fn read<S: TraceSink>(&self, i: usize, t: &mut S) -> f64 {
        t.touch(self.base + i as u64);
        self.data[i]
    }

    /// Traced write of word `i`.
    pub fn write<S: TraceSink>(&mut self, i: usize, value: f64, t: &mut S) {
        t.touch(self.base + i as u64);
        self.data[i] = value;
    }

    /// Untraced view of the contents (for verification against references —
    /// never inside traced algorithms).
    #[must_use]
    pub fn untraced(&self) -> &[f64] {
        &self.data
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_maps_words_to_blocks() {
        let mut t = Tracer::new(4);
        t.touch(0);
        t.touch(3);
        t.touch(4);
        t.touch(11);
        let trace = t.into_trace();
        assert_eq!(
            trace.events(),
            &[
                TraceEvent::Access(0),
                TraceEvent::Access(0),
                TraceEvent::Access(1),
                TraceEvent::Access(2),
            ]
        );
        assert_eq!(trace.distinct_blocks(), 3);
        assert_eq!(trace.accesses(), 4);
    }

    #[test]
    fn leaf_marks_counted() {
        let mut t = Tracer::new(1);
        t.touch(5);
        t.leaf();
        t.leaf();
        let trace = t.into_trace();
        assert_eq!(trace.leaves(), 2);
        assert_eq!(trace.accesses(), 1);
    }

    #[test]
    fn address_space_block_aligns() {
        let mut space = AddressSpace::new(4);
        let a = space.alloc(3);
        let b = space.alloc(5);
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 4, "second buffer starts on a fresh block");
        let c = space.alloc(1);
        assert_eq!(c.base(), 12);
        assert_eq!(space.words_allocated(), 16);
    }

    #[test]
    fn buffers_never_share_blocks() {
        let mut space = AddressSpace::new(8);
        let mut tracer = Tracer::new(8);
        let a = space.alloc(3);
        let b = space.alloc(3);
        let _ = a.read(2, &mut tracer);
        let _ = b.read(0, &mut tracer);
        let trace = tracer.into_trace();
        assert_eq!(trace.distinct_blocks(), 2);
    }

    #[test]
    fn traced_read_write_round_trip() {
        let mut space = AddressSpace::new(2);
        let mut tracer = Tracer::new(2);
        let mut buf = space.alloc(4);
        buf.write(1, 2.5, &mut tracer);
        assert_eq!(buf.read(1, &mut tracer), 2.5);
        assert_eq!(buf.untraced()[1], 2.5);
        assert_eq!(tracer.into_trace().accesses(), 2);
    }

    #[test]
    fn preallocated_tracer_records_identically() {
        let record = |mut t: Tracer| {
            for addr in [0u64, 7, 3, 3, 19] {
                t.touch(addr);
            }
            t.leaf();
            t.touch(2);
            t.into_trace()
        };
        let plain = record(Tracer::new(4));
        let sized = record(Tracer::with_capacity(4, 6, 1, 3));
        assert_eq!(plain, sized);
        assert_eq!(plain.accesses(), 6);
    }

    #[test]
    fn alloc_from_copies() {
        let mut space = AddressSpace::new(2);
        let buf = space.alloc_from(&[1.0, 2.0, 3.0]);
        assert_eq!(buf.untraced(), &[1.0, 2.0, 3.0]);
    }
}
