//! Traced divide-and-conquer matrix multiplication: MM-Scan and MM-Inplace.
//!
//! The paper's §3 canonical pair:
//!
//! * **MM-Scan** computes the eight quadrant products into temporaries and
//!   merges them with element-wise addition scans. Its I/O recurrence is
//!   T(N) = 8 T(N/4) + Θ(N/B) — (8, 4, 1)-regular, optimal in the DAM but
//!   *not* cache-adaptive.
//! * **MM-Inplace** accumulates elementary products directly into the
//!   output (C += A·B); no merge scans — (8, 4, 0)-regular and optimally
//!   cache-adaptive (footnote 5).
//!
//! Both run on Z-Morton matrices so each quadrant is a contiguous
//! (offset, side) window of the buffer.

use crate::bytecode::{TraceCompiler, TraceProgram};
use crate::matrix::ZMatrix;
use crate::tracer::{AddressSpace, BlockTrace, TraceSink, TracedBuf, Tracer};

/// Quadrant word offsets within a Z-ordered matrix window of side `side`:
/// (TL, TR, BL, BR), each a contiguous run of (side/2)² words.
fn quadrants(offset: usize, side: usize) -> [usize; 4] {
    let q = (side / 2) * (side / 2);
    [offset, offset + q, offset + 2 * q, offset + 3 * q]
}

/// Element-wise addition scan: out[i] = x[x_off + i] + y[y_off + i].
fn add_scan<S: TraceSink>(
    space: &mut AddressSpace,
    tracer: &mut S,
    x: &TracedBuf,
    x_off: usize,
    y: &TracedBuf,
    y_off: usize,
    len: usize,
) -> TracedBuf {
    let mut out = space.alloc(len);
    for i in 0..len {
        let v = x.read(x_off + i, tracer) + y.read(y_off + i, tracer);
        out.write(i, v, tracer);
    }
    out
}

fn mm_scan_rec<S: TraceSink>(
    space: &mut AddressSpace,
    tracer: &mut S,
    a: &TracedBuf,
    a_off: usize,
    b: &TracedBuf,
    b_off: usize,
    side: usize,
) -> TracedBuf {
    if side == 1 {
        let mut out = space.alloc(1);
        let v = a.read(a_off, tracer) * b.read(b_off, tracer);
        out.write(0, v, tracer);
        tracer.leaf();
        return out;
    }
    let half = side / 2;
    let q = half * half;
    let [a11, a12, a21, a22] = quadrants(a_off, side);
    let [b11, b12, b21, b22] = quadrants(b_off, side);
    // Eight recursive products…
    let p11a = mm_scan_rec(space, tracer, a, a11, b, b11, half);
    let p11b = mm_scan_rec(space, tracer, a, a12, b, b21, half);
    let p12a = mm_scan_rec(space, tracer, a, a11, b, b12, half);
    let p12b = mm_scan_rec(space, tracer, a, a12, b, b22, half);
    let p21a = mm_scan_rec(space, tracer, a, a21, b, b11, half);
    let p21b = mm_scan_rec(space, tracer, a, a22, b, b21, half);
    let p22a = mm_scan_rec(space, tracer, a, a21, b, b12, half);
    let p22b = mm_scan_rec(space, tracer, a, a22, b, b22, half);
    // …then the linear merge scan (Θ(side²) = Θ(N) work).
    let c11 = add_scan(space, tracer, &p11a, 0, &p11b, 0, q);
    let c12 = add_scan(space, tracer, &p12a, 0, &p12b, 0, q);
    let c21 = add_scan(space, tracer, &p21a, 0, &p21b, 0, q);
    let c22 = add_scan(space, tracer, &p22a, 0, &p22b, 0, q);
    // Assemble the result window (contiguous copy, part of the scan).
    let mut out = space.alloc(side * side);
    for (qi, quad) in [c11, c12, c21, c22].iter().enumerate() {
        for i in 0..q {
            let v = quad.read(i, tracer);
            out.write(qi * q + i, v, tracer);
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn mm_inplace_rec<S: TraceSink>(
    tracer: &mut S,
    a: &TracedBuf,
    a_off: usize,
    b: &TracedBuf,
    b_off: usize,
    c: &mut TracedBuf,
    c_off: usize,
    side: usize,
) {
    if side == 1 {
        let v = c.read(c_off, tracer) + a.read(a_off, tracer) * b.read(b_off, tracer);
        c.write(c_off, v, tracer);
        tracer.leaf();
        return;
    }
    let half = side / 2;
    let [a11, a12, a21, a22] = quadrants(a_off, side);
    let [b11, b12, b21, b22] = quadrants(b_off, side);
    let [c11, c12, c21, c22] = quadrants(c_off, side);
    mm_inplace_rec(tracer, a, a11, b, b11, c, c11, half);
    mm_inplace_rec(tracer, a, a12, b, b21, c, c11, half);
    mm_inplace_rec(tracer, a, a11, b, b12, c, c12, half);
    mm_inplace_rec(tracer, a, a12, b, b22, c, c12, half);
    mm_inplace_rec(tracer, a, a21, b, b11, c, c21, half);
    mm_inplace_rec(tracer, a, a22, b, b21, c, c21, half);
    mm_inplace_rec(tracer, a, a21, b, b12, c, c22, half);
    mm_inplace_rec(tracer, a, a22, b, b22, c, c22, half);
}

/// Multiply `a · b` with MM-Scan, reporting every access to `sink`.
///
/// # Panics
///
/// Panics if the matrices differ in side.
pub fn mm_scan_with<S: TraceSink>(
    a: &ZMatrix,
    b: &ZMatrix,
    block_words: u64,
    sink: &mut S,
) -> ZMatrix {
    assert_eq!(a.side(), b.side(), "sides must match");
    let mut space = AddressSpace::new(block_words);
    let ta = space.alloc_from(a.z_data());
    let tb = space.alloc_from(b.z_data());
    let out = mm_scan_rec(&mut space, sink, &ta, 0, &tb, 0, a.side());
    ZMatrix::from_z_data(a.side(), out.untraced())
}

/// Multiply `a · b` with MM-Scan, returning the product and the block trace
/// at block size `block_words`.
///
/// # Panics
///
/// Panics if the matrices differ in side.
#[must_use]
pub fn mm_scan(a: &ZMatrix, b: &ZMatrix, block_words: u64) -> (ZMatrix, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let result = mm_scan_with(a, b, block_words, &mut tracer);
    (result, tracer.into_trace())
}

/// Multiply `a · b` with MM-Scan, emitting the trace directly as bytecode
/// — no event vector is ever materialised.
#[must_use]
pub fn mm_scan_compiled(a: &ZMatrix, b: &ZMatrix, block_words: u64) -> (ZMatrix, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let result = mm_scan_with(a, b, block_words, &mut compiler);
    (result, compiler.finish())
}

/// Multiply `a · b` with MM-Inplace, reporting every access to `sink`.
///
/// # Panics
///
/// Panics if the matrices differ in side.
pub fn mm_inplace_with<S: TraceSink>(
    a: &ZMatrix,
    b: &ZMatrix,
    block_words: u64,
    sink: &mut S,
) -> ZMatrix {
    assert_eq!(a.side(), b.side(), "sides must match");
    let mut space = AddressSpace::new(block_words);
    let ta = space.alloc_from(a.z_data());
    let tb = space.alloc_from(b.z_data());
    let mut out = space.alloc(a.side() * a.side());
    mm_inplace_rec(sink, &ta, 0, &tb, 0, &mut out, 0, a.side());
    ZMatrix::from_z_data(a.side(), out.untraced())
}

/// Multiply `a · b` with MM-Inplace, returning the product and the block
/// trace at block size `block_words`.
///
/// # Panics
///
/// Panics if the matrices differ in side.
#[must_use]
pub fn mm_inplace(a: &ZMatrix, b: &ZMatrix, block_words: u64) -> (ZMatrix, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let result = mm_inplace_with(a, b, block_words, &mut tracer);
    (result, tracer.into_trace())
}

/// Multiply `a · b` with MM-Inplace, emitting the trace directly as
/// bytecode — no event vector is ever materialised.
#[must_use]
pub fn mm_inplace_compiled(a: &ZMatrix, b: &ZMatrix, block_words: u64) -> (ZMatrix, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let result = mm_inplace_with(a, b, block_words, &mut compiler);
    (result, compiler.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::naive_multiply;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(side: usize, seed: u64) -> ZMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows: Vec<f64> = (0..side * side)
            .map(|_| f64::from(rng.gen_range(-4i8..=4)))
            .collect();
        ZMatrix::from_row_major(side, &rows)
    }

    #[test]
    fn mm_scan_correct_up_to_16() {
        for side in [1usize, 2, 4, 8, 16] {
            let a = random_matrix(side, 1);
            let b = random_matrix(side, 2);
            let (c, _) = mm_scan(&a, &b, 4);
            let expected = naive_multiply(side, &a.to_row_major(), &b.to_row_major());
            assert_eq!(c.to_row_major(), expected, "side {side}");
        }
    }

    #[test]
    fn mm_inplace_correct_up_to_16() {
        for side in [1usize, 2, 4, 8, 16] {
            let a = random_matrix(side, 3);
            let b = random_matrix(side, 4);
            let (c, _) = mm_inplace(&a, &b, 4);
            let expected = naive_multiply(side, &a.to_row_major(), &b.to_row_major());
            assert_eq!(c.to_row_major(), expected, "side {side}");
        }
    }

    #[test]
    fn both_algorithms_agree() {
        let a = random_matrix(8, 5);
        let b = random_matrix(8, 6);
        let (c1, _) = mm_scan(&a, &b, 2);
        let (c2, _) = mm_inplace(&a, &b, 2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn leaf_counts_are_cubic() {
        let side = 8;
        let a = random_matrix(side, 7);
        let b = random_matrix(side, 8);
        let (_, t1) = mm_scan(&a, &b, 1);
        let (_, t2) = mm_inplace(&a, &b, 1);
        assert_eq!(t1.leaves(), (side * side * side) as u128);
        assert_eq!(t2.leaves(), (side * side * side) as u128);
    }

    #[test]
    fn scan_variant_touches_more_blocks() {
        // MM-Scan allocates temporaries at every level; its working set is
        // a log factor larger, and its access count strictly higher.
        let a = random_matrix(16, 9);
        let b = random_matrix(16, 10);
        let (_, t_scan) = mm_scan(&a, &b, 4);
        let (_, t_inplace) = mm_inplace(&a, &b, 4);
        assert!(t_scan.distinct_blocks() > t_inplace.distinct_blocks());
        assert!(t_scan.accesses() > t_inplace.accesses());
    }

    #[test]
    fn inplace_working_set_is_three_matrices() {
        let side = 16;
        let a = random_matrix(side, 11);
        let b = random_matrix(side, 12);
        let block_words = 4;
        let (_, t) = mm_inplace(&a, &b, block_words);
        let expected_blocks = 3 * (side * side) as u64 / block_words;
        assert_eq!(t.distinct_blocks(), expected_blocks);
    }

    #[test]
    fn compiled_emission_matches_recorded_trace() {
        let a = random_matrix(8, 15);
        let b = random_matrix(8, 16);
        for (recorded, compiled) in [
            {
                let (c1, t) = mm_scan(&a, &b, 4);
                let (c2, p) = mm_scan_compiled(&a, &b, 4);
                assert_eq!(c1, c2);
                (t, p)
            },
            {
                let (c1, t) = mm_inplace(&a, &b, 4);
                let (c2, p) = mm_inplace_compiled(&a, &b, 4);
                assert_eq!(c1, c2);
                (t, p)
            },
        ] {
            assert_eq!(crate::bytecode::compile(&recorded), compiled);
            let decoded: Vec<_> = compiled.events().collect();
            assert_eq!(decoded, recorded.events());
        }
    }

    #[test]
    fn block_size_one_equals_word_granularity() {
        let a = random_matrix(4, 13);
        let b = random_matrix(4, 14);
        let (_, t) = mm_inplace(&a, &b, 1);
        assert_eq!(t.distinct_blocks(), 3 * 16);
    }
}
