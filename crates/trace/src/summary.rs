//! Reuse-distance summaries of block traces.
//!
//! A [`TraceSummary`] is computed **once** per trace in O(A log A) (A =
//! number of accesses) and then answers, in closed form, the questions the
//! LRU simulator in `cadapt-paging` answers by replaying every reference:
//!
//! * **Fixed caches** — by the classical stack-distance theorem
//!   (Mattson et al. 1970), an access hits a capacity-C LRU cache iff its
//!   *stack distance* (distinct blocks touched since the previous access
//!   to the same block, the block itself included) is at most C. The
//!   fault count of *every* capacity is therefore a suffix sum of one
//!   stack-distance histogram: [`TraceSummary::faults_fixed`] answers a
//!   capacity query in O(log A) after the one-time build.
//! * **Square-profile boxes** — a box of size x grants x blocks of cache
//!   *cleared at the box start* and a budget of x I/Os. Inside such a box
//!   inserts never exceed capacity, so nothing is ever evicted, and an
//!   access hits iff its previous access lies inside the same box. Per-box
//!   fault counts reduce to counting "cold" accesses (previous access
//!   before the box start) against the [`prev1`](TraceSummary::prev1)
//!   array — pure arithmetic on two integer arrays, no cache state.
//! * **Arbitrary m(t) profiles** — under LRU the resident set at any
//!   instant is exactly the top-k of the global recency stack, where k
//!   evolves as min-with-m(t) on shrinks and +1 on insertions. An access
//!   hits iff its global stack distance is at most the current k, so the
//!   whole replay is one pass over the precomputed
//!   [`depths`](TraceSummary::depths) array.
//!
//! The closed forms are **exact**, not approximations — the analytic
//! replayers in `cadapt-paging::analytic` are proven equal to the
//! simulator fault-for-fault (see `tests/integration_analytic_equivalence`
//! and the proptest suite in `crates/paging`).
//!
//! Leaf marks (progress) attach to the preceding access:
//! [`leaves_before`](TraceSummary::leaves_before) turns per-box progress
//! counting into two prefix-sum lookups.

use crate::stream::TraceStream;
use crate::tracer::TraceEvent;
use cadapt_core::{cast, Blocks, Io, Leaves};
// cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert) to map blocks to their latest access position; iteration order is never observed
use std::collections::HashMap;

/// Fenwick tree over access positions, used to count "latest occurrence"
/// flags inside a position range while building stack distances.
///
/// Counts are stored modulo 2⁶⁴ (the classic wrapping trick): every prefix
/// sum of the true flag multiset is non-negative, so the wrapped value is
/// the exact value.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0; len + 1],
        }
    }

    /// Add `delta` (possibly the wrapped −1) at 0-based position `i`.
    fn add(&mut self, i: usize, delta: u64) {
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] = self.tree[idx].wrapping_add(delta);
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based, inclusive).
    fn prefix(&self, i: usize) -> u64 {
        let mut idx = i + 1;
        let mut sum = 0u64;
        while idx > 0 {
            sum = sum.wrapping_add(self.tree[idx]);
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }
}

/// Positional and reuse-distance structure of one trace stream,
/// computed once and queried per capacity / per box.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    accesses: u64,
    distinct_blocks: Blocks,
    total_leaves: Leaves,
    /// `prev1[j]` = 1 + access index of the previous access to the same
    /// block, or 0 when access `j` touches its block for the first time.
    /// An access `j` inside a box starting at access `s` is *warm* iff
    /// `prev1[j] > s`.
    prev1: Vec<u64>,
    /// `depth[j]` = LRU stack distance of access `j` (distinct blocks
    /// touched since the previous access to the same block, inclusive of
    /// the block itself), or 0 for a first access (infinite distance).
    depth: Vec<u64>,
    /// The finite entries of `depth`, sorted ascending — the
    /// stack-distance histogram in cumulative form.
    depth_sorted: Vec<u64>,
    /// `leaf_before[j]` = leaf marks occurring before access `j` in event
    /// order; the final entry (index `accesses`) is the total leaf count.
    leaf_before: Vec<Leaves>,
}

impl TraceSummary {
    /// Build the summary in O(A log A) time and O(A) space from any
    /// [`TraceStream`] — a recorded [`crate::tracer::BlockTrace`] or a
    /// compiled [`crate::bytecode::TraceProgram`] decoded on the fly; the
    /// result is identical either way because the stream contract fixes
    /// the event sequence.
    #[must_use]
    pub fn new<T: TraceStream + ?Sized>(trace: &T) -> Self {
        let events = trace.events();
        let access_count = trace.accesses();
        let a = cast::usize_from_u64(access_count);
        let mut prev1 = Vec::with_capacity(a);
        let mut depth = Vec::with_capacity(a);
        let mut leaf_before = Vec::with_capacity(a + 1);
        let mut depth_sorted = Vec::new();
        // cadapt-lint: allow(nondet-source) -- HashMap is point-probed only (get/insert); iteration order is never observed
        let mut last_pos: HashMap<u64, u64> = HashMap::new();
        let mut flags = Fenwick::new(a);
        let mut leaves: Leaves = 0;
        let mut j: u64 = 0;
        for event in events {
            match event {
                TraceEvent::Leaf => leaves += 1,
                TraceEvent::Access(block) => {
                    leaf_before.push(leaves);
                    let ju = cast::usize_from_u64(j);
                    match last_pos.insert(block, j) {
                        None => {
                            prev1.push(0);
                            depth.push(0);
                        }
                        Some(p) => {
                            let pu = cast::usize_from_u64(p);
                            prev1.push(p + 1);
                            // Distinct blocks strictly between p and j are
                            // the "latest occurrence" flags in (p, j); the
                            // block itself adds 1.
                            let between = if ju > pu + 1 {
                                flags.prefix(ju - 1).wrapping_sub(flags.prefix(pu))
                            } else {
                                0
                            };
                            let d = between + 1;
                            depth.push(d);
                            depth_sorted.push(d);
                            // The block's latest occurrence moves to j.
                            flags.add(pu, 1u64.wrapping_neg());
                        }
                    }
                    flags.add(ju, 1);
                    j += 1;
                }
            }
        }
        leaf_before.push(leaves);
        depth_sorted.sort_unstable();
        TraceSummary {
            accesses: access_count,
            distinct_blocks: trace.distinct_blocks(),
            total_leaves: leaves,
            prev1,
            depth,
            depth_sorted,
            leaf_before,
        }
    }

    /// Total accesses A (leaf marks excluded).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Distinct blocks touched — the trace's working-set size.
    #[must_use]
    pub fn distinct_blocks(&self) -> Blocks {
        self.distinct_blocks
    }

    /// Total leaf marks.
    #[must_use]
    pub fn leaves(&self) -> Leaves {
        self.total_leaves
    }

    /// The `prev1` array: previous-access index + 1 per access, 0 for
    /// first touches. Length [`accesses`](Self::accesses).
    #[must_use]
    pub fn prev1(&self) -> &[u64] {
        &self.prev1
    }

    /// The LRU stack distances per access, 0 meaning infinite (first
    /// touch). Length [`accesses`](Self::accesses).
    #[must_use]
    pub fn depths(&self) -> &[u64] {
        &self.depth
    }

    /// Leaf marks before each access in event order; the trailing entry is
    /// the total. Length [`accesses`](Self::accesses) + 1.
    #[must_use]
    pub fn leaves_before(&self) -> &[Leaves] {
        &self.leaf_before
    }

    /// Exact fault count of a constant LRU cache of `cache_blocks` blocks
    /// on this trace, by the stack-distance theorem — equal, access for
    /// access, to `replay_fixed` in `cadapt-paging`. O(log A).
    #[must_use]
    pub fn faults_fixed(&self, cache_blocks: Blocks) -> Io {
        let warm_hits = self.depth_sorted.partition_point(|&d| d <= cache_blocks);
        let warm_misses = self.depth_sorted.len() - warm_hits;
        Io::from(self.distinct_blocks) + Io::from(cast::u64_from_usize(warm_misses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{BlockTrace, Tracer};

    fn trace_of(blocks: &[u64]) -> BlockTrace {
        let mut t = Tracer::new(1);
        for &b in blocks {
            t.touch(b);
        }
        t.into_trace()
    }

    #[test]
    fn prev1_and_depths_on_a_hand_trace() {
        // Blocks: a b a c b a
        let s = TraceSummary::new(&trace_of(&[1, 2, 1, 3, 2, 1]));
        assert_eq!(s.accesses(), 6);
        assert_eq!(s.distinct_blocks(), 3);
        assert_eq!(s.prev1(), &[0, 0, 1, 0, 2, 3]);
        // Stack distances: a(∞) b(∞) a(2: b,a) c(∞) b(3: a,c,b) a(3: c,b,a)
        assert_eq!(s.depths(), &[0, 0, 2, 0, 3, 3]);
    }

    #[test]
    fn faults_match_the_stack_distance_theorem() {
        let s = TraceSummary::new(&trace_of(&[1, 2, 1, 3, 2, 1]));
        // C=0: everything misses. C=1: only immediate re-accesses hit
        // (none here). C=2: the depth-2 access hits. C≥3: all repeats hit.
        assert_eq!(s.faults_fixed(0), 6);
        assert_eq!(s.faults_fixed(1), 6);
        assert_eq!(s.faults_fixed(2), 5);
        assert_eq!(s.faults_fixed(3), 3);
        assert_eq!(s.faults_fixed(1 << 40), 3);
    }

    #[test]
    fn immediate_reuse_has_depth_one() {
        let s = TraceSummary::new(&trace_of(&[5, 5, 5]));
        assert_eq!(s.depths(), &[0, 1, 1]);
        assert_eq!(s.faults_fixed(1), 1);
    }

    #[test]
    fn leaf_prefixes_attach_to_the_following_access() {
        let mut t = Tracer::new(1);
        t.leaf();
        t.touch(1);
        t.leaf();
        t.leaf();
        t.touch(2);
        t.leaf();
        let s = TraceSummary::new(&t.into_trace());
        assert_eq!(s.leaves_before(), &[1, 3, 4]);
        assert_eq!(s.leaves(), 4);
    }

    #[test]
    fn empty_and_leaf_only_traces() {
        let s = TraceSummary::new(&trace_of(&[]));
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.leaves_before(), &[0]);
        assert_eq!(s.faults_fixed(16), 0);

        let mut t = Tracer::new(1);
        t.leaf();
        t.leaf();
        let s = TraceSummary::new(&t.into_trace());
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.leaves(), 2);
        assert_eq!(s.leaves_before(), &[2]);
    }

    #[test]
    fn scan_has_no_finite_depths() {
        let s = TraceSummary::new(&trace_of(&[1, 2, 3, 4, 5]));
        assert!(s.depths().iter().all(|&d| d == 0));
        assert_eq!(s.faults_fixed(1 << 20), 5);
    }
}
