//! The [`TraceStream`] abstraction: anything that can stream a block
//! trace's events in program order.
//!
//! Both trace representations implement it — the recorded
//! [`BlockTrace`] (a materialised `Vec<TraceEvent>`) and the compiled
//! [`TraceProgram`] (bytecode decoded on the fly) — so the LRU replayers
//! in `cadapt-paging` and the reuse-distance summary builder are written
//! once, generically, and consume either without an intermediate vector.
//! Replaying a program must equal replaying the trace it was compiled
//! from event-for-event; the equivalence tests pin exactly that.

use crate::bytecode::{ProgramEvents, TraceProgram};
use crate::tracer::{BlockTrace, TraceEvent};
use cadapt_core::{Blocks, Leaves};

/// A source of trace events plus the O(1) aggregate counts replayers and
/// summaries need without a decoding pass.
pub trait TraceStream {
    /// The streaming iterator type (exact `size_hint` where possible).
    type Events<'a>: Iterator<Item = TraceEvent>
    where
        Self: 'a;

    /// Stream the events in program order.
    fn events(&self) -> Self::Events<'_>;

    /// Total accesses (excluding leaf marks).
    fn accesses(&self) -> u64;

    /// Number of distinct blocks touched.
    fn distinct_blocks(&self) -> Blocks;

    /// Total base-case marks.
    fn leaves(&self) -> Leaves;
}

impl TraceStream for BlockTrace {
    type Events<'a> = std::iter::Copied<std::slice::Iter<'a, TraceEvent>>;

    fn events(&self) -> Self::Events<'_> {
        BlockTrace::events(self).iter().copied()
    }

    fn accesses(&self) -> u64 {
        BlockTrace::accesses(self)
    }

    fn distinct_blocks(&self) -> Blocks {
        BlockTrace::distinct_blocks(self)
    }

    fn leaves(&self) -> Leaves {
        BlockTrace::leaves(self)
    }
}

impl TraceStream for TraceProgram {
    type Events<'a> = ProgramEvents<'a>;

    fn events(&self) -> Self::Events<'_> {
        TraceProgram::events(self)
    }

    fn accesses(&self) -> u64 {
        TraceProgram::accesses(self)
    }

    fn distinct_blocks(&self) -> Blocks {
        TraceProgram::distinct_blocks(self)
    }

    fn leaves(&self) -> Leaves {
        TraceProgram::leaves(self)
    }
}

impl<T: TraceStream + ?Sized> TraceStream for &T {
    type Events<'a>
        = T::Events<'a>
    where
        Self: 'a;

    fn events(&self) -> Self::Events<'_> {
        (**self).events()
    }

    fn accesses(&self) -> u64 {
        (**self).accesses()
    }

    fn distinct_blocks(&self) -> Blocks {
        (**self).distinct_blocks()
    }

    fn leaves(&self) -> Leaves {
        (**self).leaves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::tracer::Tracer;

    fn sample() -> BlockTrace {
        let mut t = Tracer::new(2);
        for addr in [0u64, 1, 2, 9, 4, 4, 9] {
            t.touch(addr);
        }
        t.leaf();
        t.touch(30);
        t.leaf();
        t.into_trace()
    }

    fn collect<T: TraceStream>(stream: &T) -> Vec<TraceEvent> {
        stream.events().collect()
    }

    #[test]
    fn both_implementations_stream_the_same_events() {
        let trace = sample();
        let program = compile(&trace);
        assert_eq!(collect(&trace), collect(&program));
        assert_eq!(collect(&trace), BlockTrace::events(&trace));
        assert_eq!(
            TraceStream::accesses(&trace),
            TraceStream::accesses(&program)
        );
        assert_eq!(
            TraceStream::distinct_blocks(&trace),
            TraceStream::distinct_blocks(&program)
        );
        assert_eq!(TraceStream::leaves(&trace), TraceStream::leaves(&program));
    }

    #[test]
    fn reference_forwarding_works() {
        let trace = sample();
        let by_ref: &BlockTrace = &trace;
        assert_eq!(collect(&by_ref), collect(&trace));
    }
}
