//! Traced cache-oblivious edit distance — the boundary method,
//! (4, 2, 1)-regular.
//!
//! The classic cache-oblivious dynamic program (in the style of
//! Chowdhury–Ramachandran): an s × s region of the DP grid is solved from
//! its top/left input boundaries by recursing into its four s/2 × s/2
//! quadrants in dependency order (TL, TR, BL, BR) and stitching their
//! boundaries with linear scans. With problem "size" measured by the string
//! length, each problem spawns 4 half-size subproblems plus Θ(s) scan work
//! — a = 4 > b = 2, c = 1: the gap regime, with a different (a, b) than the
//! matrix-multiplication family.
//!
//! The implementation computes the true Levenshtein distance (verified
//! against the textbook O(n²) DP) while tracing every access to the
//! strings and boundary buffers.

use crate::bytecode::{TraceCompiler, TraceProgram};
use crate::tracer::{AddressSpace, BlockTrace, TraceSink, TracedBuf, Tracer};

struct EditCtx<'a, S> {
    space: &'a mut AddressSpace,
    tracer: &'a mut S,
    x: TracedBuf,
    y: TracedBuf,
}

impl<S: TraceSink> EditCtx<'_, S> {
    /// Traced copy of `src[off .. off + len]` into a fresh buffer (a scan).
    fn copy_scan(&mut self, src: &TracedBuf, off: usize, len: usize) -> TracedBuf {
        let mut out = self.space.alloc(len);
        for i in 0..len {
            let v = src.read(off + i, self.tracer);
            out.write(i, v, self.tracer);
        }
        out
    }

    /// Traced concatenation of two buffers (a scan).
    fn concat_scan(&mut self, a: &TracedBuf, b: &TracedBuf) -> TracedBuf {
        let mut out = self.space.alloc(a.len() + b.len());
        for i in 0..a.len() {
            let v = a.read(i, self.tracer);
            out.write(i, v, self.tracer);
        }
        for i in 0..b.len() {
            let v = b.read(i, self.tracer);
            out.write(a.len() + i, v, self.tracer);
        }
        out
    }

    /// Solve the s × s region with top-left cell (i0, j0) (0-based string
    /// indices), given `top[j] = D[i0][j0 + j + 1]`, `left[i] =
    /// D[i0 + i + 1][j0]`, and `corner = D[i0][j0]`. Returns (bottom,
    /// right): `bottom[j] = D[i0 + s][j0 + j + 1]`, `right[i] =
    /// D[i0 + i + 1][j0 + s]`.
    fn solve(
        &mut self,
        i0: usize,
        j0: usize,
        s: usize,
        top: &TracedBuf,
        left: &TracedBuf,
        corner: f64,
    ) -> (TracedBuf, TracedBuf) {
        debug_assert_eq!(top.len(), s);
        debug_assert_eq!(left.len(), s);
        if s == 1 {
            let xc = self.x.read(i0, self.tracer);
            let yc = self.y.read(j0, self.tracer);
            let t = top.read(0, self.tracer);
            let l = left.read(0, self.tracer);
            // Exact inequality of the input cell values is the edit-distance
            // substitution test itself, not an accounting comparison.
            #[allow(clippy::float_cmp)]
            let sub = corner + f64::from(xc != yc);
            let d = sub.min(t + 1.0).min(l + 1.0);
            let mut bottom = self.space.alloc(1);
            bottom.write(0, d, self.tracer);
            let mut right = self.space.alloc(1);
            right.write(0, d, self.tracer);
            self.tracer.leaf();
            return (bottom, right);
        }
        let h = s / 2;
        // Boundary splits (linear scans).
        let top_l = self.copy_scan(top, 0, h);
        let top_r = self.copy_scan(top, h, h);
        let left_t = self.copy_scan(left, 0, h);
        let left_b = self.copy_scan(left, h, h);
        // Corners for the side quadrants come off the parent boundaries.
        let corner_tr = top.read(h - 1, self.tracer);
        let corner_bl = left.read(h - 1, self.tracer);

        let (bot_tl, right_tl) = self.solve(i0, j0, h, &top_l, &left_t, corner);
        let corner_br = bot_tl.read(h - 1, self.tracer);
        let (bot_tr, right_tr) = self.solve(i0, j0 + h, h, &top_r, &right_tl, corner_tr);
        let (bot_bl, right_bl) = self.solve(i0 + h, j0, h, &bot_tl, &left_b, corner_bl);
        let (bot_br, right_br) = self.solve(i0 + h, j0 + h, h, &bot_tr, &right_bl, corner_br);

        // Stitch output boundaries (linear scans).
        let bottom = self.concat_scan(&bot_bl, &bot_br);
        let right = self.concat_scan(&right_tr, &right_br);
        (bottom, right)
    }
}

/// Compute the Levenshtein distance between two equal-length strings whose
/// length is a power of two, reporting every access to `sink`.
///
/// # Panics
///
/// Panics unless `x.len() == y.len()` and the length is a positive power of
/// two.
pub fn edit_distance_with<S: TraceSink>(x: &[u8], y: &[u8], block_words: u64, sink: &mut S) -> u64 {
    assert_eq!(x.len(), y.len(), "strings must have equal length");
    let n = x.len();
    assert!(
        n.is_power_of_two(),
        "length must be a positive power of two"
    );
    let mut space = AddressSpace::new(block_words);
    let xs: Vec<f64> = x.iter().map(|&c| f64::from(c)).collect();
    let ys: Vec<f64> = y.iter().map(|&c| f64::from(c)).collect();
    let tx = space.alloc_from(&xs);
    let ty = space.alloc_from(&ys);
    // Initial boundaries: D[0][j] = j, D[i][0] = i.
    let top_init: Vec<f64> = (1..=n).map(|j| j as f64).collect();
    let left_init: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let top = space.alloc_from(&top_init);
    let left = space.alloc_from(&left_init);
    let mut ctx = EditCtx {
        space: &mut space,
        tracer: &mut *sink,
        x: tx,
        y: ty,
    };
    let (bottom, _right) = ctx.solve(0, 0, n, &top, &left, 0.0);
    let d = bottom.read(n - 1, sink);
    cadapt_core::cast::u64_from_f64(d)
}

/// Compute the Levenshtein distance between two equal-length strings whose
/// length is a power of two, tracing at block size `block_words`.
///
/// # Panics
///
/// Panics unless `x.len() == y.len()` and the length is a positive power of
/// two.
#[must_use]
pub fn edit_distance(x: &[u8], y: &[u8], block_words: u64) -> (u64, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let d = edit_distance_with(x, y, block_words, &mut tracer);
    (d, tracer.into_trace())
}

/// As [`edit_distance`], emitting the trace directly as bytecode — no
/// event vector is ever materialised.
#[must_use]
pub fn edit_distance_compiled(x: &[u8], y: &[u8], block_words: u64) -> (u64, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let d = edit_distance_with(x, y, block_words, &mut compiler);
    (d, compiler.finish())
}

/// Textbook O(n²) Levenshtein distance (reference for verification).
#[must_use]
pub fn naive_edit_distance(x: &[u8], y: &[u8]) -> u64 {
    let (n, m) = (x.len(), y.len());
    let mut prev: Vec<u64> = (0..=m as u64).collect();
    let mut cur = vec![0u64; m + 1];
    for i in 1..=n {
        cur[0] = i as u64;
        for j in 1..=m {
            let sub = prev[j - 1] + u64::from(x[i - 1] != y[j - 1]); // cadapt-lint: allow(panic-reach) -- 1 <= i <= n = x.len() and 1 <= j <= m = y.len(), so all offsets are in-bounds
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1); // cadapt-lint: allow(panic-reach) -- j >= 1 and both rows have m+1 entries
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identical_strings_have_distance_zero() {
        let s = b"abcdabcd";
        let (d, _) = edit_distance(s, s, 4);
        assert_eq!(d, 0);
    }

    #[test]
    fn known_distances() {
        assert_eq!(edit_distance(b"ab", b"ba", 1).0, 2);
        assert_eq!(edit_distance(b"abcd", b"abcf", 1).0, 1);
        assert_eq!(edit_distance(b"aaaa", b"bbbb", 1).0, 4);
        // Classic kitten/sitting needs equal power-of-two lengths; use a
        // padded variant checked against the naive DP instead.
        let x = b"kittenxx";
        let y = b"sittingx";
        assert_eq!(edit_distance(x, y, 1).0, naive_edit_distance(x, y));
    }

    #[test]
    fn matches_naive_on_random_strings() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for n in [1usize, 2, 4, 8, 16, 32] {
            for _ in 0..5 {
                let x: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
                let y: Vec<u8> = (0..n).map(|_| rng.gen_range(b'a'..=b'd')).collect();
                let (d, _) = edit_distance(&x, &y, 2);
                assert_eq!(d, naive_edit_distance(&x, &y), "n={n}");
            }
        }
    }

    #[test]
    fn leaf_count_is_quadratic() {
        let x = b"abcdefgh";
        let y = b"hgfedcba";
        let (_, t) = edit_distance(x, y, 1);
        assert_eq!(t.leaves(), 64, "one leaf per DP cell");
    }

    #[test]
    fn naive_reference_sanity() {
        assert_eq!(naive_edit_distance(b"kitten", b"sitting"), 3);
        assert_eq!(naive_edit_distance(b"", b"abc"), 3);
        assert_eq!(naive_edit_distance(b"abc", b""), 3);
    }

    #[test]
    fn compiled_emission_matches_recorded_trace() {
        let x = b"acgtacgt";
        let y = b"aagtccgt";
        let (d1, trace) = edit_distance(x, y, 4);
        let (d2, program) = edit_distance_compiled(x, y, 4);
        assert_eq!(d1, d2);
        assert_eq!(crate::bytecode::compile(&trace), program);
        let decoded: Vec<_> = program.events().collect();
        assert_eq!(decoded, trace.events());
    }

    #[test]
    fn trace_has_scan_structure() {
        // The boundary method does Θ(n log n)-ish extra scan accesses over
        // the n² cell updates; at the very least the access count exceeds
        // 4 per cell (each cell reads x, y, top, left and writes two).
        let x = b"abcdefghabcdefgh";
        let y = b"aacdefghabcdefgg";
        let (_, t) = edit_distance(x, y, 1);
        assert!(t.accesses() > 6 * 256);
    }
}
