//! Traced Gaussian Elimination Paradigm kernel: recursive Floyd–Warshall
//! (Kleene's algorithm) over the (min, +) semiring.
//!
//! The GEP family (Chowdhury–Ramachandran '10) covers Gaussian elimination
//! without pivoting, Floyd–Warshall APSP, and LU decomposition — all
//! sharing the I-GEP recursion whose I/O recurrence matches matrix
//! multiplication: the paper lists Gaussian elimination among the
//! (8, 4, 1)-regular gap-regime algorithms.
//!
//! The concrete instance here computes all-pairs shortest paths by the
//! recursive 2×2 blocked Kleene scheme:
//!
//! ```text
//!   A = [A11 A12]      A11 ← fw(A11)
//!       [A21 A22]      A12 ← A11 ⊗ A12,  A21 ← A21 ⊗ A11
//!                      A22 ← A22 ⊕ (A21 ⊗ A12)
//!                      A22 ← fw(A22)
//!                      A21 ← A22 ⊗ A21,  A12 ← A12 ⊗ A22
//!                      A11 ← A11 ⊕ (A12 ⊗ A21)
//! ```
//!
//! with ⊗ the (min, +) matrix product (computed by the in-place recursive
//! multiply — the MM-Inplace structure over the tropical semiring) and ⊕
//! element-wise min. Verified against the textbook cubic Floyd–Warshall.

use crate::bytecode::{TraceCompiler, TraceProgram};
use crate::matrix::ZMatrix;
use crate::tracer::{AddressSpace, BlockTrace, TraceSink, TracedBuf, Tracer};

/// Edge-weight infinity for the (min, +) semiring; large enough that two
/// additions never overflow f64 precision, small enough to round-trip.
pub const INF: f64 = 1e15;

/// Tropical (min, +) in-place product: C[i][j] ← min(C[i][j], A ⊗ B) over
/// the Z-layout windows, recursively (the MM-Inplace structure).
#[allow(clippy::too_many_arguments)]
fn minplus_rec<S: TraceSink>(
    tracer: &mut S,
    a: &TracedBuf,
    a_off: usize,
    b: &TracedBuf,
    b_off: usize,
    c: &mut TracedBuf,
    c_off: usize,
    side: usize,
) {
    if side == 1 {
        let via = a.read(a_off, tracer) + b.read(b_off, tracer);
        let cur = c.read(c_off, tracer);
        if via < cur {
            c.write(c_off, via, tracer);
        }
        tracer.leaf();
        return;
    }
    let half = side / 2;
    let q = half * half;
    let [a11, a12, a21, a22] = [a_off, a_off + q, a_off + 2 * q, a_off + 3 * q];
    let [b11, b12, b21, b22] = [b_off, b_off + q, b_off + 2 * q, b_off + 3 * q];
    let [c11, c12, c21, c22] = [c_off, c_off + q, c_off + 2 * q, c_off + 3 * q];
    minplus_rec(tracer, a, a11, b, b11, c, c11, half);
    minplus_rec(tracer, a, a12, b, b21, c, c11, half);
    minplus_rec(tracer, a, a11, b, b12, c, c12, half);
    minplus_rec(tracer, a, a12, b, b22, c, c12, half);
    minplus_rec(tracer, a, a21, b, b11, c, c21, half);
    minplus_rec(tracer, a, a22, b, b21, c, c21, half);
    minplus_rec(tracer, a, a21, b, b12, c, c22, half);
    minplus_rec(tracer, a, a22, b, b22, c, c22, half);
}

/// Tropical product into self-aliased windows needs a snapshot of the
/// operand: traced copy scan.
fn copy_window<S: TraceSink>(
    space: &mut AddressSpace,
    tracer: &mut S,
    src: &TracedBuf,
    off: usize,
    len: usize,
) -> TracedBuf {
    let mut out = space.alloc(len);
    for i in 0..len {
        let v = src.read(off + i, tracer);
        out.write(i, v, tracer);
    }
    out
}

fn fw_rec<S: TraceSink>(
    space: &mut AddressSpace,
    tracer: &mut S,
    a: &mut TracedBuf,
    off: usize,
    side: usize,
) {
    if side == 1 {
        // Self-loops: d(i, i) ≤ 0 handled by initialisation; nothing to do
        // for a single vertex beyond counting the base case.
        tracer.leaf();
        return;
    }
    let half = side / 2;
    let q = half * half;
    let [a11, a12, a21, a22] = [off, off + q, off + 2 * q, off + 3 * q];

    fw_rec(space, tracer, a, a11, half);
    // A12 ← min(A12, A11 ⊗ A12); A21 ← min(A21, A21 ⊗ A11).
    // The products read windows of `a` while writing others, so snapshot
    // the operands (linear scans — the GEP family's Θ(N) per-level work).
    let s11 = copy_window(space, tracer, a, a11, q);
    let s12 = copy_window(space, tracer, a, a12, q);
    let s21 = copy_window(space, tracer, a, a21, q);
    minplus_rec(tracer, &s11, 0, &s12, 0, a, a12, half);
    minplus_rec(tracer, &s21, 0, &s11, 0, a, a21, half);
    // A22 ← min(A22, A21 ⊗ A12).
    let s12 = copy_window(space, tracer, a, a12, q);
    let s21 = copy_window(space, tracer, a, a21, q);
    minplus_rec(tracer, &s21, 0, &s12, 0, a, a22, half);
    fw_rec(space, tracer, a, a22, half);
    // Back-substitution half.
    let s22 = copy_window(space, tracer, a, a22, q);
    let s21 = copy_window(space, tracer, a, a21, q);
    let s12 = copy_window(space, tracer, a, a12, q);
    minplus_rec(tracer, &s22, 0, &s21, 0, a, a21, half);
    minplus_rec(tracer, &s12, 0, &s22, 0, a, a12, half);
    let s12 = copy_window(space, tracer, a, a12, q);
    let s21 = copy_window(space, tracer, a, a21, q);
    minplus_rec(tracer, &s12, 0, &s21, 0, a, a11, half);
}

/// All-pairs shortest paths of a weighted digraph given as a dense
/// adjacency matrix (use [`INF`] for "no edge"), via the recursive blocked
/// Kleene/GEP scheme, traced at block size `block_words`.
///
/// Returns the distance matrix and the block trace. Diagonal entries are
/// clamped to ≤ 0 on input (vertices reach themselves for free).
///
/// # Panics
///
/// Panics unless the matrix side is a power of two.
#[must_use]
pub fn floyd_warshall(adj: &ZMatrix, block_words: u64) -> (ZMatrix, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let result = floyd_warshall_with(adj, block_words, &mut tracer);
    (result, tracer.into_trace())
}

/// As [`floyd_warshall`], reporting every access to `sink`.
///
/// # Panics
///
/// Panics unless the matrix side is a power of two.
pub fn floyd_warshall_with<S: TraceSink>(adj: &ZMatrix, block_words: u64, sink: &mut S) -> ZMatrix {
    let side = adj.side();
    let mut space = AddressSpace::new(block_words);
    let mut init = adj.clone();
    for i in 0..side {
        if init.get(i, i) > 0.0 {
            init.set(i, i, 0.0);
        }
    }
    let mut buf = space.alloc_from(init.z_data());
    fw_rec(&mut space, sink, &mut buf, 0, side);
    ZMatrix::from_z_data(side, buf.untraced())
}

/// As [`floyd_warshall`], emitting the trace directly as bytecode — no
/// event vector is ever materialised.
#[must_use]
pub fn floyd_warshall_compiled(adj: &ZMatrix, block_words: u64) -> (ZMatrix, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let result = floyd_warshall_with(adj, block_words, &mut compiler);
    (result, compiler.finish())
}

/// Textbook O(V³) Floyd–Warshall (reference for verification).
#[must_use]
pub fn naive_floyd_warshall(side: usize, adj_row_major: &[f64]) -> Vec<f64> {
    let mut d = adj_row_major.to_vec();
    for i in 0..side {
        d[i * side + i] = d[i * side + i].min(0.0); // cadapt-lint: allow(panic-reach) -- i < side, so the row-major offset is < side², the matrix length
    }
    for k in 0..side {
        for i in 0..side {
            let dik = d[i * side + k]; // cadapt-lint: allow(panic-reach) -- i, k < side, so the row-major offset is < side², the matrix length
            if dik >= INF {
                continue;
            }
            for j in 0..side {
                let via = dik + d[k * side + j]; // cadapt-lint: allow(panic-reach) -- k, j < side, so the row-major offset is < side², the matrix length
                                                 // cadapt-lint: allow(panic-reach) -- i, j < side, so the row-major offset is < side², the matrix length
                if via < d[i * side + j] {
                    d[i * side + j] = via; // cadapt-lint: allow(panic-reach) -- i, j < side, so the row-major offset is < side², the matrix length
                }
            }
        }
    }
    d
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp, clippy::cast_possible_truncation)]
#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_graph(side: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..side * side)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    f64::from(rng.gen_range(1u8..=20))
                } else {
                    INF
                }
            })
            .collect()
    }

    #[test]
    fn tiny_path_graph() {
        // 0 → 1 (5), 1 → 0 (2): d(0,1) = 5, d(1,0) = 2, diagonals 0.
        let adj = vec![INF, 5.0, 2.0, INF];
        let m = ZMatrix::from_row_major(2, &adj);
        let (d, _) = floyd_warshall(&m, 1);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 0), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for side in [2usize, 4, 8, 16] {
            for seed in 0..3u64 {
                let adj = random_graph(side, seed + 100);
                let m = ZMatrix::from_row_major(side, &adj);
                let (d, _) = floyd_warshall(&m, 2);
                let expected = naive_floyd_warshall(side, &adj);
                let got = d.to_row_major();
                for (i, (&g, &e)) in got.iter().zip(&expected).enumerate() {
                    // Unreachable stays huge (may differ in exact INF sums).
                    if e >= INF {
                        assert!(g >= INF / 2.0, "side {side} seed {seed} idx {i}");
                    } else {
                        assert_eq!(g, e, "side {side} seed {seed} idx {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let side = 8;
        let adj = random_graph(side, 7);
        let m = ZMatrix::from_row_major(side, &adj);
        let (d, _) = floyd_warshall(&m, 2);
        for i in 0..side {
            for j in 0..side {
                for k in 0..side {
                    let direct = d.get(i, j);
                    let via = d.get(i, k) + d.get(k, j);
                    assert!(
                        direct <= via + 1e-9,
                        "d({i},{j}) = {direct} > {via} via {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_has_gep_shape() {
        let side = 8;
        let adj = random_graph(side, 9);
        let m = ZMatrix::from_row_major(side, &adj);
        let (_, trace) = floyd_warshall(&m, 1);
        // Θ(V³) base cases: 2 fw leaves per vertex pair path... precisely,
        // leaves = fw leaves (V at side 1) + minplus leaves. The dominant
        // term is the ~V³ tropical multiply-adds.
        assert!(trace.leaves() >= (side * side * side / 2) as u128);
        assert!(trace.accesses() > trace.leaves() as u64);
        // Snapshot scans allocate temporaries: more blocks than the matrix.
        assert!(trace.distinct_blocks() > (side * side) as u64);
    }

    #[test]
    fn compiled_emission_matches_recorded_trace() {
        let adj = random_graph(8, 13);
        let m = ZMatrix::from_row_major(8, &adj);
        let (d1, trace) = floyd_warshall(&m, 4);
        let (d2, program) = floyd_warshall_compiled(&m, 4);
        assert_eq!(d1, d2);
        assert_eq!(crate::bytecode::compile(&trace), program);
        let decoded: Vec<_> = program.events().collect();
        assert_eq!(decoded, trace.events());
    }

    #[test]
    fn deterministic() {
        let adj = random_graph(8, 11);
        let m = ZMatrix::from_row_major(8, &adj);
        let (d1, t1) = floyd_warshall(&m, 2);
        let (d2, t2) = floyd_warshall(&m, 2);
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
    }
}
