//! Z-Morton (bit-interleaved) square matrices.
//!
//! The recursive layout that makes divide-and-conquer matrix algorithms
//! cache-oblivious: a 2^k × 2^k matrix is stored as its four quadrants in
//! row-major *quadrant* order, recursively. Each quadrant of a Z-ordered
//! matrix is therefore one contiguous quarter of the buffer — which is what
//! lets the traced algorithms treat "a quadrant" as "(offset, side)".

/// A dense square matrix of side 2^k in Z-Morton order.
#[derive(Debug, Clone, PartialEq)]
pub struct ZMatrix {
    side: usize,
    data: Vec<f64>,
}

/// Interleave the bits of (row, col) into a Z-Morton index.
#[must_use]
pub fn morton_index(row: usize, col: usize) -> usize {
    let mut idx = 0usize;
    let mut bit = 0;
    let (mut r, mut c) = (row, col);
    while r > 0 || c > 0 {
        idx |= (c & 1) << (2 * bit);
        idx |= (r & 1) << (2 * bit + 1);
        r >>= 1;
        c >>= 1;
        bit += 1;
    }
    idx
}

impl ZMatrix {
    /// Zero matrix of side `side` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics unless `side` is a positive power of two.
    #[must_use]
    pub fn zero(side: usize) -> Self {
        assert!(side.is_power_of_two(), "side must be a power of two");
        ZMatrix {
            side,
            data: vec![0.0; side * side],
        }
    }

    /// Build from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != side²` or side is not a power of two.
    #[must_use]
    pub fn from_row_major(side: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len(), side * side, "need side² entries");
        let mut m = ZMatrix::zero(side);
        for r in 0..side {
            for c in 0..side {
                m.data[morton_index(r, c)] = rows[r * side + c]; // cadapt-lint: allow(panic-reach) -- r, c < side; the row-major offset is < side² (asserted above) and the Morton index of (r, c) stays < side² for power-of-two sides
            }
        }
        m
    }

    /// Side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The Z-ordered backing buffer.
    #[must_use]
    pub fn z_data(&self) -> &[f64] {
        &self.data
    }

    /// Element at (row, col).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[morton_index(row, col)] // cadapt-lint: allow(panic-reach) -- deliberate loud contract: (row, col) must be inside the matrix, exactly like slice indexing
    }

    /// Set element at (row, col).
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[morton_index(row, col)] = value; // cadapt-lint: allow(panic-reach) -- deliberate loud contract: (row, col) must be inside the matrix, exactly like slice indexing
    }

    /// Convert back to row-major.
    #[must_use]
    pub fn to_row_major(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.side * self.side];
        for r in 0..self.side {
            for c in 0..self.side {
                out[r * self.side + c] = self.get(r, c); // cadapt-lint: allow(panic-reach) -- r, c < side, so the row-major offset is < side², the buffer length
            }
        }
        out
    }

    /// Rebuild a matrix from a Z-ordered buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not a square power of four.
    #[must_use]
    pub fn from_z_data(side: usize, z: &[f64]) -> Self {
        assert!(side.is_power_of_two(), "side must be a power of two");
        assert_eq!(z.len(), side * side, "need side² entries");
        ZMatrix {
            side,
            data: z.to_vec(),
        }
    }
}

/// Naive O(side³) row-major reference multiply (for verification).
#[must_use]
pub fn naive_multiply(side: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), side * side);
    assert_eq!(b.len(), side * side);
    let mut c = vec![0.0; side * side];
    for i in 0..side {
        for k in 0..side {
            let aik = a[i * side + k]; // cadapt-lint: allow(panic-reach) -- i, k < side, so the row-major offset is < side², the asserted input length
                                       // cadapt-lint: allow(float-eq) -- exact-zero skip is a pure optimisation: skipping a row whose contribution is exactly 0.0 is bit-identical either way
            if aik == 0.0 {
                continue;
            }
            for j in 0..side {
                c[i * side + j] += aik * b[k * side + j]; // cadapt-lint: allow(panic-reach) -- i, j, k < side, so every row-major offset is < side², the asserted lengths
            }
        }
    }
    c
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_small_cases() {
        // 2x2: indices [ (0,0)=0, (0,1)=1, (1,0)=2, (1,1)=3 ].
        assert_eq!(morton_index(0, 0), 0);
        assert_eq!(morton_index(0, 1), 1);
        assert_eq!(morton_index(1, 0), 2);
        assert_eq!(morton_index(1, 1), 3);
        // 4x4 quadrant contiguity: top-left quadrant = indices 0..4.
        let tl: Vec<usize> = vec![
            morton_index(0, 0),
            morton_index(0, 1),
            morton_index(1, 0),
            morton_index(1, 1),
        ];
        assert_eq!(tl, vec![0, 1, 2, 3]);
        // Top-right quadrant = indices 4..8.
        assert_eq!(morton_index(0, 2), 4);
        assert_eq!(morton_index(1, 3), 7);
        // Bottom-left = 8..12, bottom-right = 12..16.
        assert_eq!(morton_index(2, 0), 8);
        assert_eq!(morton_index(3, 3), 15);
    }

    #[test]
    fn morton_is_bijective_on_16x16() {
        let mut seen = vec![false; 256];
        for r in 0..16 {
            for c in 0..16 {
                let i = morton_index(r, c);
                assert!(i < 256);
                assert!(!seen[i], "collision at ({r},{c})");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn row_major_round_trip() {
        let rows: Vec<f64> = (0..64).map(f64::from).collect();
        let m = ZMatrix::from_row_major(8, &rows);
        assert_eq!(m.to_row_major(), rows);
        assert_eq!(m.get(1, 2), rows[8 + 2]);
    }

    #[test]
    fn quadrants_are_contiguous() {
        let rows: Vec<f64> = (0..16).map(f64::from).collect();
        let m = ZMatrix::from_row_major(4, &rows);
        // Top-left quadrant in row-major: 0,1,4,5.
        assert_eq!(&m.z_data()[0..4], &[0.0, 1.0, 4.0, 5.0]);
        // Top-right: 2,3,6,7.
        assert_eq!(&m.z_data()[4..8], &[2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn naive_multiply_identity() {
        let side = 4;
        let mut id = vec![0.0; 16];
        for i in 0..side {
            id[i * side + i] = 1.0;
        }
        let a: Vec<f64> = (0..16).map(f64::from).collect();
        assert_eq!(naive_multiply(side, &a, &id), a);
        assert_eq!(naive_multiply(side, &id, &a), a);
    }

    #[test]
    fn naive_multiply_known_2x2() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(naive_multiply(2, &a, &b), vec![19.0, 22.0, 43.0, 50.0]);
    }
}
