//! Compiled trace replay: compact bytecode programs for block traces.
//!
//! A recorded [`BlockTrace`] spends 16 bytes per [`TraceEvent`] and must be
//! materialised in full before anything can replay it. This module lowers
//! the same event stream into a compact bytecode — delta-encoded block
//! addresses, run-length ops for scans, counted-loop ops for the repeating
//! access patterns recursive kernels produce, and explicit leaf marks —
//! plus a small decoder VM that streams the events back out.
//!
//! # Opcodes
//!
//! | op       | byte | operands                               | meaning |
//! |----------|------|----------------------------------------|---------|
//! | `LEAF`   | 0x00 | —                                      | a base case completed here |
//! | `ACCESS` | 0x01 | svarint Δ                              | access block `prev + Δ` |
//! | `RUN`    | 0x02 | varint n, svarint Δ                    | n accesses, each advancing by Δ |
//! | `LOOP`   | 0x03 | varint reps, varint len, `len` body bytes | replay the body `reps` times |
//!
//! Varints are LEB128; svarints additionally zigzag-map the wrapping
//! 64-bit delta so small negative strides stay short. Loop bodies are
//! flat (no nested `LOOP`), which keeps the decoder to one resident loop
//! register and the hot path branch-light.
//!
//! # Equivalence
//!
//! Deltas are *wrapping* differences of consecutive block numbers, so a
//! decoded stream reproduces the recorded one exactly: every `ACCESS`/`RUN`
//! adds the same delta sequence the encoder subtracted, starting from the
//! same implicit block 0, and `LOOP` bodies only ever fold runs of atoms
//! that compared equal delta-for-delta. The compiler is a pure fold over
//! the event stream (no time, no randomness, no iteration over hash
//! state), so structural emission from an instrumented kernel and
//! recompilation of its recorded trace produce byte-identical programs —
//! the property the corpus CRC pins rely on.
//!
//! The compiler implements [`TraceSink`], so every instrumented kernel can
//! emit bytecode *directly*, without materialising the event vector; see
//! the `*_compiled` entry points in the kernel modules.

use crate::tracer::{BlockTrace, TraceEvent, TraceSink};
use cadapt_core::{cast, checksum, Blocks, Leaves};
// cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
use std::collections::HashSet;

/// The opcode vocabulary. Discriminants are the encoded bytes, so the
/// enum is the single source of truth for the wire format; every
/// dispatch site matches on `Opcode` (wildcard-free and exhaustive —
/// enforced by `cadapt-lint`'s `vm-dispatch` rule), so adding an opcode
/// forces every site to handle it explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// A base case completed here.
    Leaf = 0x00,
    /// Access block `prev + Δ` (svarint Δ follows).
    Access = 0x01,
    /// `n` accesses, each advancing by Δ (varint n, svarint Δ follow).
    Run = 0x02,
    /// Replay the `len`-byte body `reps` times (varint reps, varint len,
    /// body bytes follow).
    Loop = 0x03,
}

impl Opcode {
    /// The encoded byte.
    #[must_use]
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// The one byte→opcode funnel. Unknown bytes decode to `None` and
    /// every caller must handle that loudly (end-of-program, never a
    /// silent skip); byte-level knowledge lives only here and in
    /// [`Opcode::byte`].
    #[must_use]
    pub fn decode(b: u8) -> Option<Opcode> {
        match b {
            0x00 => Some(Opcode::Leaf),
            0x01 => Some(Opcode::Access),
            0x02 => Some(Opcode::Run),
            0x03 => Some(Opcode::Loop),
            _ => None,
        }
    }
}

/// Longest atom period the encoder will fold into a `LOOP`.
const MAX_PERIOD: usize = 16;
/// Atoms retained in the sliding detection window after a spill.
const RETAIN: usize = 3 * MAX_PERIOD;
/// Window size that triggers a spill of settled atoms to bytes. Keeping
/// this above `RETAIN` amortises the drain.
const COMMIT_AT: usize = 2 * RETAIN;

/// Zigzag-map a wrapping delta so small magnitudes of either sign encode
/// short. Interpreting `d` as two's-complement: `0, -1, 1, -2, …` map to
/// `0, 1, 2, 3, …`.
fn zigzag(d: u64) -> u64 {
    (d << 1) ^ 0u64.wrapping_sub(d >> 63)
}

/// Inverse of [`zigzag`].
fn unzigzag(z: u64) -> u64 {
    (z >> 1) ^ 0u64.wrapping_sub(z & 1)
}

/// Append `x` as an LEB128 varint (7 value bits per byte, high bit =
/// continuation).
fn push_varint(bytes: &mut Vec<u8>, mut x: u64) {
    while x >= 0x80 {
        bytes.push(cast::u8_from_u64((x & 0x7F) | 0x80));
        x >>= 7;
    }
    bytes.push(cast::u8_from_u64(x));
}

/// Read one LEB128 varint at `*pos`, advancing it. Truncated or
/// over-long input — malformed, the encoder never emits it — yields the
/// bits read so far without advancing past the end; the opcode dispatch
/// below then stops at the stream end instead of panicking.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    while shift < 64 {
        let Some(&b) = bytes.get(*pos) else { break };
        *pos += 1;
        x |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            break;
        }
        shift += 7;
    }
    x
}

/// One encoder atom: an event (or folded group) that loop detection
/// treats as a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Atom {
    Leaf,
    Access(u64),
    Run { n: u64, d: u64 },
    Loop { reps: u64, body: Vec<Atom> },
}

fn serialize_atom(bytes: &mut Vec<u8>, atom: &Atom) {
    match atom {
        Atom::Leaf => bytes.push(Opcode::Leaf.byte()),
        Atom::Access(d) => {
            bytes.push(Opcode::Access.byte());
            push_varint(bytes, zigzag(*d));
        }
        Atom::Run { n, d } => {
            bytes.push(Opcode::Run.byte());
            push_varint(bytes, *n);
            push_varint(bytes, zigzag(*d));
        }
        Atom::Loop { reps, body } => {
            let mut tmp = Vec::new();
            for a in body {
                serialize_atom(&mut tmp, a);
            }
            bytes.push(Opcode::Loop.byte());
            push_varint(bytes, *reps);
            push_varint(bytes, cast::u64_from_usize(tmp.len()));
            bytes.extend_from_slice(&tmp);
        }
    }
}

/// Online, bounded-memory bytecode encoder: run-length folds consecutive
/// equal deltas, then detects repeated atom patterns (period ≤
/// [`MAX_PERIOD`]) inside a sliding window of at most [`COMMIT_AT`] atoms.
/// Atoms that leave the window are serialized and can no longer fold —
/// the spill points depend only on the event stream, so encoding stays a
/// pure function of the input.
#[derive(Debug, Default)]
struct Encoder {
    bytes: Vec<u8>,
    atoms: Vec<Atom>,
    /// Index into `atoms` of the most recent `Loop`, the only merge
    /// target for an arriving repetition of its body.
    last_loop: Option<usize>,
    run_d: u64,
    run_n: u64,
}

impl Encoder {
    fn delta(&mut self, d: u64) {
        if self.run_n > 0 && d == self.run_d {
            self.run_n += 1;
            return;
        }
        self.flush_run();
        self.run_d = d;
        self.run_n = 1;
    }

    fn leaf(&mut self) {
        self.flush_run();
        self.push_atom(Atom::Leaf);
    }

    fn flush_run(&mut self) {
        let (n, d) = (self.run_n, self.run_d);
        self.run_n = 0;
        match n {
            0 => {}
            1 => self.push_atom(Atom::Access(d)),
            _ => self.push_atom(Atom::Run { n, d }),
        }
    }

    fn push_atom(&mut self, atom: Atom) {
        self.atoms.push(atom);
        loop {
            if self.try_extend_loop() || self.try_form_loop() {
                continue;
            }
            break;
        }
        if self.atoms.len() > COMMIT_AT {
            let spill = self.atoms.len() - RETAIN;
            for atom in self.atoms.drain(..spill) {
                serialize_atom(&mut self.bytes, &atom);
            }
            self.last_loop = self.last_loop.and_then(|i| i.checked_sub(spill));
        }
    }

    /// If everything after the most recent `Loop` is exactly one more copy
    /// of its body, fold it in as one extra repetition.
    fn try_extend_loop(&mut self) -> bool {
        let Some(li) = self.last_loop else {
            return false;
        };
        let (head, tail) = self.atoms.split_at(li + 1);
        let Some(Atom::Loop { body, .. }) = head.last() else {
            return false;
        };
        if tail.len() != body.len() || tail != &body[..] {
            return false;
        }
        self.atoms.truncate(li + 1);
        if let Some(Atom::Loop { reps, .. }) = self.atoms.last_mut() {
            *reps += 1;
        }
        true
    }

    /// If the newest atoms form two back-to-back copies of a loop-free
    /// pattern, fold them into a fresh two-repetition `Loop`. Smallest
    /// period wins, keeping the encoding canonical.
    fn try_form_loop(&mut self) -> bool {
        let n = self.atoms.len();
        if matches!(self.atoms.last(), None | Some(Atom::Loop { .. })) {
            return false;
        }
        for p in 1..=MAX_PERIOD.min(n / 2) {
            // Cheap gate before the full window compare: the halves can
            // only match if the newest atom equals its image one period
            // back.
            // cadapt-lint: allow(panic-reach) -- p <= n/2 by the loop bound, so n-1-p is in-bounds
            if self.atoms[n - 1] != self.atoms[n - 1 - p] {
                continue;
            }
            let first = &self.atoms[n - 2 * p..n - p]; // cadapt-lint: allow(panic-reach) -- p <= n/2 by the loop bound, so n-2p >= 0
                                                       // cadapt-lint: allow(panic-reach) -- p <= n/2 by the loop bound
            if first != &self.atoms[n - p..] {
                continue;
            }
            if first.iter().any(|a| matches!(a, Atom::Loop { .. })) {
                continue; // bodies stay flat
            }
            let body: Vec<Atom> = self.atoms[n - p..].to_vec(); // cadapt-lint: allow(panic-reach) -- p <= n/2 by the loop bound
            self.atoms.truncate(n - 2 * p);
            self.atoms.push(Atom::Loop { reps: 2, body });
            self.last_loop = Some(self.atoms.len() - 1);
            return true;
        }
        false
    }

    fn finish(mut self) -> Vec<u8> {
        self.flush_run();
        let atoms = std::mem::take(&mut self.atoms);
        for atom in &atoms {
            serialize_atom(&mut self.bytes, atom);
        }
        self.bytes
    }
}

/// Streaming bytecode compiler for block traces.
///
/// Feed it events — either through the [`TraceSink`] interface from an
/// instrumented kernel (word addresses, mapped to blocks exactly like
/// [`crate::Tracer`] maps them) or through [`TraceCompiler::push_event`]
/// from an already-recorded trace — and [`TraceCompiler::finish`] yields
/// the compiled [`TraceProgram`]. Both routes produce byte-identical
/// programs for the same event stream.
#[derive(Debug)]
pub struct TraceCompiler {
    block_words: u64,
    prev_block: u64,
    // cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
    seen: HashSet<u64>,
    accesses: u64,
    leaves: Leaves,
    enc: Encoder,
}

impl TraceCompiler {
    /// A compiler mapping `block_words` consecutive words to one block
    /// (only relevant for the [`TraceSink`] route; [`Self::push_event`]
    /// streams block numbers as-is).
    ///
    /// # Panics
    ///
    /// Panics if `block_words == 0`.
    #[must_use]
    pub fn new(block_words: u64) -> Self {
        assert!(block_words >= 1, "blocks must hold at least one word");
        TraceCompiler {
            block_words,
            prev_block: 0,
            // cadapt-lint: allow(nondet-source) -- HashSet is membership-probed only (insert/contains) to count distinct blocks; iteration order is never observed
            seen: HashSet::new(),
            accesses: 0,
            leaves: 0,
            enc: Encoder::default(),
        }
    }

    /// Compile an access to block number `block`.
    pub fn push_block(&mut self, block: u64) {
        self.seen.insert(block);
        self.accesses += 1;
        self.enc.delta(block.wrapping_sub(self.prev_block));
        self.prev_block = block;
    }

    /// Compile a leaf mark.
    pub fn push_leaf(&mut self) {
        self.leaves += 1;
        self.enc.leaf();
    }

    /// Compile one recorded event.
    pub fn push_event(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Access(block) => self.push_block(block),
            TraceEvent::Leaf => self.push_leaf(),
        }
    }

    /// Finish compilation.
    #[must_use]
    pub fn finish(self) -> TraceProgram {
        TraceProgram {
            bytes: self.enc.finish(),
            accesses: self.accesses,
            distinct_blocks: self.seen.len() as Blocks,
            leaves: self.leaves,
        }
    }
}

impl TraceSink for TraceCompiler {
    fn touch(&mut self, addr: u64) {
        self.push_block(addr / self.block_words);
    }

    fn leaf(&mut self) {
        self.push_leaf();
    }
}

/// A compiled trace: the bytecode plus the aggregate counts a replayer
/// needs up front (so none of them require decoding the stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceProgram {
    bytes: Vec<u8>,
    accesses: u64,
    distinct_blocks: Blocks,
    leaves: Leaves,
}

impl TraceProgram {
    /// The raw bytecode.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Bytecode size in bytes (compare against 16 bytes per event of the
    /// materialised `Vec<TraceEvent>`).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Total accesses (excluding leaf marks), O(1).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of distinct blocks touched.
    #[must_use]
    pub fn distinct_blocks(&self) -> Blocks {
        self.distinct_blocks
    }

    /// Total base-case marks.
    #[must_use]
    pub fn leaves(&self) -> Leaves {
        self.leaves
    }

    /// Total events the program decodes to (accesses + leaves).
    #[must_use]
    pub fn event_count(&self) -> u128 {
        u128::from(self.accesses) + self.leaves
    }

    /// IEEE CRC-32 of the bytecode — the checksum the corpus goldens pin.
    #[must_use]
    pub fn crc32(&self) -> u32 {
        checksum::crc32(&self.bytes)
    }

    /// A streaming decoder over the program's events; yields exactly the
    /// recorded event sequence with an exact `size_hint`.
    #[must_use]
    pub fn events(&self) -> ProgramEvents<'_> {
        ProgramEvents {
            bytes: &self.bytes,
            pos: 0,
            prev_block: 0,
            run_left: 0,
            run_d: 0,
            loop_start: 0,
            loop_end: usize::MAX,
            reps_left: 0,
            remaining: self.event_count(),
        }
    }
}

/// The decoder VM: a streaming iterator of [`TraceEvent`]s over a
/// [`TraceProgram`]. State is four registers (position, previous block,
/// one pending run, one active loop) — decoding allocates nothing.
#[derive(Debug, Clone)]
pub struct ProgramEvents<'a> {
    bytes: &'a [u8],
    pos: usize,
    prev_block: u64,
    run_left: u64,
    run_d: u64,
    loop_start: usize,
    /// `usize::MAX` when no loop is active (a position the cursor can
    /// never reach, so the hot path is a single compare).
    loop_end: usize,
    reps_left: u64,
    remaining: u128,
}

impl ProgramEvents<'_> {
    /// Decode the flat atom sequence in `bytes[pos..end]` (loop bodies and
    /// the tails of partially-consumed loops — never a nested `OP_LOOP`,
    /// which the encoder cannot emit) through `f`, returning the updated
    /// previous-block register and accumulator plus whether the slice
    /// decoded cleanly. The inner run loop is the hot path of internal
    /// iteration: no per-event opcode dispatch, no iterator state
    /// spilling.
    #[inline]
    fn fold_atoms<B, F: FnMut(B, TraceEvent) -> B>(
        bytes: &[u8],
        mut pos: usize,
        end: usize,
        mut prev: u64,
        mut acc: B,
        f: &mut F,
    ) -> (u64, B, bool) {
        while pos < end {
            let Some(&op) = bytes.get(pos) else {
                return (prev, acc, false);
            };
            pos += 1;
            match Opcode::decode(op) {
                Some(Opcode::Access) => {
                    let d = unzigzag(read_varint(bytes, &mut pos));
                    prev = prev.wrapping_add(d);
                    acc = f(acc, TraceEvent::Access(prev));
                }
                Some(Opcode::Run) => {
                    let n = read_varint(bytes, &mut pos);
                    let d = unzigzag(read_varint(bytes, &mut pos));
                    for _ in 0..n {
                        prev = prev.wrapping_add(d);
                        acc = f(acc, TraceEvent::Access(prev));
                    }
                }
                Some(Opcode::Leaf) => {
                    acc = f(acc, TraceEvent::Leaf);
                }
                // Loop bodies are flat (the encoder cannot emit a nested
                // loop), so a `Loop` here is as malformed as an unknown
                // byte: report the slice as not cleanly decoded.
                Some(Opcode::Loop) | None => return (prev, acc, false),
            }
        }
        (prev, acc, true)
    }
}

impl Iterator for ProgramEvents<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.run_left > 0 {
            self.run_left -= 1;
            self.prev_block = self.prev_block.wrapping_add(self.run_d);
            self.remaining = self.remaining.saturating_sub(1);
            return Some(TraceEvent::Access(self.prev_block));
        }
        loop {
            if self.pos == self.loop_end {
                if self.reps_left > 0 {
                    self.reps_left -= 1;
                    self.pos = self.loop_start;
                } else {
                    self.loop_end = usize::MAX;
                }
                continue;
            }
            let &op = self.bytes.get(self.pos)?;
            self.pos += 1;
            match Opcode::decode(op) {
                Some(Opcode::Access) => {
                    let d = unzigzag(read_varint(self.bytes, &mut self.pos));
                    self.prev_block = self.prev_block.wrapping_add(d);
                    self.remaining = self.remaining.saturating_sub(1);
                    return Some(TraceEvent::Access(self.prev_block));
                }
                Some(Opcode::Run) => {
                    let n = read_varint(self.bytes, &mut self.pos);
                    self.run_d = unzigzag(read_varint(self.bytes, &mut self.pos));
                    self.run_left = n.saturating_sub(1);
                    self.prev_block = self.prev_block.wrapping_add(self.run_d);
                    self.remaining = self.remaining.saturating_sub(1);
                    return Some(TraceEvent::Access(self.prev_block));
                }
                Some(Opcode::Leaf) => {
                    self.remaining = self.remaining.saturating_sub(1);
                    return Some(TraceEvent::Leaf);
                }
                Some(Opcode::Loop) => {
                    let reps = read_varint(self.bytes, &mut self.pos);
                    let len = cast::usize_from_u64(read_varint(self.bytes, &mut self.pos));
                    if reps == 0 {
                        self.pos += len;
                    } else if len > 0 {
                        self.loop_start = self.pos;
                        self.loop_end = self.pos + len;
                        self.reps_left = reps - 1;
                    }
                }
                // The encoder emits no other opcode; treat an unknown
                // byte as end-of-program rather than guessing.
                None => return None,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match usize::try_from(self.remaining) {
            Ok(n) => (n, Some(n)),
            Err(_) => (usize::MAX, None),
        }
    }

    /// Internal iteration: decode the rest of the program through `f`
    /// with tight per-opcode loops instead of per-event `next()` dispatch.
    /// This is the replay-many fast path (`for_each` routes through it);
    /// it yields exactly the events `next()` would have yielded from the
    /// current state — pending run and partially-replayed loop included —
    /// which the round-trip tests pin at every split point.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, TraceEvent) -> B,
    {
        let mut acc = init;
        while self.run_left > 0 {
            self.run_left -= 1;
            self.prev_block = self.prev_block.wrapping_add(self.run_d);
            acc = f(acc, TraceEvent::Access(self.prev_block));
        }
        let bytes = self.bytes;
        let mut prev = self.prev_block;
        let mut pos = self.pos;
        if self.loop_end != usize::MAX {
            // Finish the rep the cursor is inside, then the queued reps.
            let end = self.loop_end;
            let (p, a, clean) = Self::fold_atoms(bytes, pos, end, prev, acc, &mut f);
            prev = p;
            acc = a;
            if !clean {
                return acc;
            }
            for _ in 0..self.reps_left {
                let (p, a, clean) =
                    Self::fold_atoms(bytes, self.loop_start, end, prev, acc, &mut f);
                prev = p;
                acc = a;
                if !clean {
                    return acc;
                }
            }
            pos = end;
        }
        while let Some(&op) = bytes.get(pos) {
            pos += 1;
            match Opcode::decode(op) {
                Some(Opcode::Access) => {
                    let d = unzigzag(read_varint(bytes, &mut pos));
                    prev = prev.wrapping_add(d);
                    acc = f(acc, TraceEvent::Access(prev));
                }
                Some(Opcode::Run) => {
                    let n = read_varint(bytes, &mut pos);
                    let d = unzigzag(read_varint(bytes, &mut pos));
                    for _ in 0..n {
                        prev = prev.wrapping_add(d);
                        acc = f(acc, TraceEvent::Access(prev));
                    }
                }
                Some(Opcode::Leaf) => {
                    acc = f(acc, TraceEvent::Leaf);
                }
                Some(Opcode::Loop) => {
                    let reps = read_varint(bytes, &mut pos);
                    let len = cast::usize_from_u64(read_varint(bytes, &mut pos));
                    let end = pos.saturating_add(len).min(bytes.len());
                    for _ in 0..reps {
                        let (p, a, clean) = Self::fold_atoms(bytes, pos, end, prev, acc, &mut f);
                        prev = p;
                        acc = a;
                        if !clean {
                            return acc;
                        }
                    }
                    pos = end;
                }
                // Unknown byte: end-of-program, same as `next()`.
                None => return acc,
            }
        }
        acc
    }
}

impl std::iter::FusedIterator for ProgramEvents<'_> {}

/// Compile an already-recorded trace. The result is byte-identical to
/// what structural emission through a [`TraceCompiler`] sink produces for
/// the same kernel (asserted across the corpus in the golden tests).
#[must_use]
pub fn compile(trace: &BlockTrace) -> TraceProgram {
    let mut compiler = TraceCompiler::new(1);
    for &event in trace.events() {
        compiler.push_event(event);
    }
    compiler.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn decode(p: &TraceProgram) -> Vec<TraceEvent> {
        p.events().collect()
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for d in [0u64, 1, 2, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            assert_eq!(unzigzag(zigzag(d)), d, "delta {d:#x}");
        }
        // Small magnitudes of either sign encode small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(u64::MAX), 1); // two's-complement −1
    }

    #[test]
    fn varint_round_trips() {
        let mut bytes = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            push_varint(&mut bytes, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&bytes, &mut pos), v);
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn empty_program_yields_nothing() {
        let program = TraceCompiler::new(1).finish();
        assert_eq!(decode(&program), Vec::new());
        assert_eq!(program.event_count(), 0);
        assert_eq!(program.byte_len(), 0);
    }

    #[test]
    fn hand_stream_round_trips_with_extreme_blocks() {
        let events = vec![
            TraceEvent::Access(5),
            TraceEvent::Access(u64::MAX),
            TraceEvent::Leaf,
            TraceEvent::Access(0),
            TraceEvent::Access(0),
            TraceEvent::Access(3),
            TraceEvent::Leaf,
            TraceEvent::Leaf,
        ];
        let mut c = TraceCompiler::new(1);
        for &e in &events {
            c.push_event(e);
        }
        let program = c.finish();
        assert_eq!(decode(&program), events);
        assert_eq!(program.accesses(), 5);
        assert_eq!(program.leaves(), 3);
        assert_eq!(program.distinct_blocks(), 4);
    }

    #[test]
    fn strided_scan_compresses_to_a_run() {
        let mut c = TraceCompiler::new(1);
        for i in 0..10_000u64 {
            c.push_block(i * 3);
        }
        let program = c.finish();
        // First access is delta 0, the rest fold into one RUN op.
        assert!(
            program.byte_len() <= 16,
            "scan should be a handful of bytes, got {}",
            program.byte_len()
        );
        let decoded = decode(&program);
        assert_eq!(decoded.len(), 10_000);
        assert_eq!(decoded[0], TraceEvent::Access(0));
        assert_eq!(decoded[9_999], TraceEvent::Access(9_999 * 3));
    }

    #[test]
    fn repeated_pattern_folds_into_a_loop() {
        let pattern = [7u64, 900, 7, 13, 13, 42];
        let mut events = Vec::new();
        for _ in 0..500 {
            for &b in &pattern {
                events.push(TraceEvent::Access(b));
            }
            events.push(TraceEvent::Leaf);
        }
        let mut c = TraceCompiler::new(1);
        for &e in &events {
            c.push_event(e);
        }
        let program = c.finish();
        assert_eq!(decode(&program), events);
        assert!(
            program.byte_len() < 100,
            "periodic stream must fold into a LOOP, got {} bytes",
            program.byte_len()
        );
    }

    #[test]
    fn internal_fold_matches_external_iteration_at_every_split() {
        // A stream whose program exercises every opcode: runs (strided
        // scan), a loop (periodic block), lone accesses, and leaves.
        let mut events = Vec::new();
        for i in 0..40u64 {
            events.push(TraceEvent::Access(i * 8));
        }
        for _ in 0..30 {
            for b in [3u64, 999, 3, 17] {
                events.push(TraceEvent::Access(b));
            }
            events.push(TraceEvent::Leaf);
        }
        events.push(TraceEvent::Access(u64::MAX));
        events.push(TraceEvent::Leaf);
        let mut c = TraceCompiler::new(1);
        for &e in &events {
            c.push_event(e);
        }
        let program = c.finish();
        assert_eq!(decode(&program), events);
        // fold() must resume correctly from any iterator state next() can
        // leave behind: mid-run, mid-loop-body, between loop reps, done.
        for split in 0..=events.len() {
            let mut iter = program.events();
            for _ in 0..split {
                iter.next();
            }
            let folded = iter.fold(Vec::new(), |mut v, e| {
                v.push(e);
                v
            });
            assert_eq!(folded, events[split..], "split at {split}");
        }
    }

    #[test]
    fn aperiodic_stream_still_round_trips() {
        // Weyl-style sequence: no short period, exercises spill paths.
        let mut events = Vec::new();
        let mut x = 0u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            events.push(TraceEvent::Access(x >> 32));
            if i % 37 == 0 {
                events.push(TraceEvent::Leaf);
            }
        }
        let mut c = TraceCompiler::new(1);
        for &e in &events {
            c.push_event(e);
        }
        let program = c.finish();
        assert_eq!(decode(&program), events);
    }

    #[test]
    fn sink_route_matches_recompilation_of_recorded_trace() {
        // Drive a Tracer and a TraceCompiler with the same accesses; the
        // compiled-from-trace program must equal the structurally-emitted
        // one byte for byte.
        let addrs = [0u64, 5, 9, 13, 5, 0, 64, 65, 66, 67, 68, 69, 70, 71];
        let mut tracer = Tracer::new(4);
        let mut compiler = TraceCompiler::new(4);
        for rep in 0..30 {
            for &a in &addrs {
                TraceSink::touch(&mut tracer, a + rep);
                TraceSink::touch(&mut compiler, a + rep);
            }
            TraceSink::leaf(&mut tracer);
            TraceSink::leaf(&mut compiler);
        }
        let trace = tracer.into_trace();
        let direct = compiler.finish();
        let recompiled = compile(&trace);
        assert_eq!(direct, recompiled);
        assert_eq!(decode(&direct), trace.events());
        assert_eq!(direct.accesses(), trace.accesses());
        assert_eq!(direct.distinct_blocks(), trace.distinct_blocks());
        assert_eq!(direct.leaves(), trace.leaves());
    }

    #[test]
    fn size_hint_is_exact_throughout() {
        let mut c = TraceCompiler::new(1);
        for i in 0..100u64 {
            c.push_block(i % 7);
            if i % 10 == 0 {
                c.push_leaf();
            }
        }
        let program = c.finish();
        let mut iter = program.events();
        let mut left = usize::try_from(program.event_count()).unwrap();
        loop {
            assert_eq!(iter.size_hint(), (left, Some(left)));
            if iter.next().is_none() {
                break;
            }
            left -= 1;
        }
        assert_eq!(left, 0);
        assert_eq!(iter.size_hint(), (0, Some(0)));
    }

    #[test]
    fn compilation_is_deterministic() {
        let mut events = Vec::new();
        for i in 0..2_000u64 {
            events.push(TraceEvent::Access((i * i) % 257));
            if i % 5 == 0 {
                events.push(TraceEvent::Leaf);
            }
        }
        let build = || {
            let mut c = TraceCompiler::new(1);
            for &e in &events {
                c.push_event(e);
            }
            c.finish()
        };
        assert_eq!(build(), build());
    }
}
