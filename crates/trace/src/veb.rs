//! Traced static binary search over a van Emde Boas tree layout — the
//! corpus's cache-friendly search-tree workload (after Barratt & Zhang,
//! *Cache-Friendly Search Trees*).
//!
//! A complete binary search tree of height `h` over `2^h − 1` sorted keys
//! is stored in the recursive vEB order: split the height in half, lay out
//! the top subtree (height ⌊h/2⌋), then each of its `2^{⌊h/2⌋}` bottom
//! subtrees (height ⌈h/2⌉) contiguously. Any root-to-leaf path then
//! crosses only O(log_B n) blocks without knowing B — the classic
//! cache-oblivious layout the paper's search-tree discussion builds on.
//!
//! **Classification.** One query is T(h) = 2·T(h/2) + O(1): two
//! *height*-halving subproblems, i.e. two √n-*size* subproblems — not the
//! size-N/b division of the (a, b, c)-regular form, so the workload sits
//! outside the strict gap regime. Its progress potential is linear
//! (ρ(x) = x, the a = b = 2 boundary), making it a search-tree control
//! case next to the gap-regime multiplications — like the transpose
//! kernel, but with a pointer-chasing access pattern instead of scans.
//!
//! The workload runs `side²` deterministic queries over `side² − 1` keys
//! (height `2·log2 side`), reads each query from a traced input buffer,
//! marks a leaf per completed query, and returns a rank checksum verified
//! against a naive binary search.

use crate::bytecode::{TraceCompiler, TraceProgram};
use crate::tracer::{AddressSpace, BlockTrace, TraceSink, Tracer};
use cadapt_core::cast;

/// The sorted key set: the odd integers `1, 3, …, 2n − 1`, so that even
/// queries miss between keys and odd queries hit.
fn keys(n: usize) -> Vec<u64> {
    (0..n).map(|i| 2 * cast::u64_from_usize(i) + 1).collect()
}

/// The deterministic query sequence (same small-prime residue style as
/// the corpus matrix patterns): `side²` values covering hits and misses.
fn queries(n: usize, count: usize) -> Vec<u64> {
    let span = 2 * cast::u64_from_usize(n) + 1;
    (0..count)
        .map(|j| (cast::u64_from_usize(j) * 7 + 3) % span)
        .collect()
}

/// Recursively append `sorted` (length `2^h − 1`) to `out` in vEB order.
fn layout_rec(sorted: &[u64], h: u32, out: &mut Vec<u64>) {
    debug_assert_eq!(sorted.len(), (1usize << h) - 1);
    if h == 1 {
        out.push(sorted[0]);
        return;
    }
    let ht = h / 2;
    let hb = h - ht;
    let top_size = (1usize << ht) - 1;
    let bot_stride = 1usize << hb; // bottom size + its separator key
    let top_keys: Vec<u64> = (0..top_size)
        .map(|j| sorted[(j + 1) * bot_stride - 1]) // cadapt-lint: allow(panic-reach) -- (top_size)·bot_stride - 1 = 2^h - 2^hb - 1 < 2^h - 1, the debug-asserted slice length
        .collect();
    layout_rec(&top_keys, ht, out);
    for j in 0..=top_size {
        let lo = j * bot_stride;
        layout_rec(&sorted[lo..lo + bot_stride - 1], hb, out); // cadapt-lint: allow(panic-reach) -- the last bottom block ends at (top_size+1)·bot_stride - 1 = 2^h - 1, the debug-asserted slice length
    }
}

/// Traced search of `q` in the vEB-laid-out window at `off` of height `h`.
/// Returns `(found, rank)` where `rank` is the number of keys `< q` in the
/// subtree.
fn search_rec<S: TraceSink>(
    buf: &crate::tracer::TracedBuf,
    off: usize,
    h: u32,
    q: u64,
    sink: &mut S,
) -> (bool, u64) {
    if h == 1 {
        let k = cast::u64_from_f64(buf.read(off, sink));
        return if q == k {
            (true, 0)
        } else if q < k {
            (false, 0)
        } else {
            (false, 1)
        };
    }
    let ht = h / 2;
    let hb = h - ht;
    let top_size = (1usize << ht) - 1;
    let bot_size = (1usize << hb) - 1;
    let bot_full = 1u64 << hb;
    let (found, r_top) = search_rec(buf, off, ht, q, sink);
    if found {
        // q is the top key with r_top smaller top keys: every bottom up to
        // and including index r_top lies below it.
        return (true, (r_top + 1) * bot_full - 1);
    }
    let j = cast::usize_from_u64(r_top); // bottom index ∈ [0, 2^ht − 1]
    let bot_off = off + top_size + j * bot_size;
    let (found_b, r_bot) = search_rec(buf, bot_off, hb, q, sink);
    (found_b, r_top * bot_full + r_bot)
}

fn checksum(found: bool, rank: u64) -> u64 {
    2 * rank + u64::from(found)
}

/// Run the vEB search workload at `side` (a power of two ≥ 2): `side²`
/// queries over `side² − 1` keys, every access reported to `sink`.
/// Returns the query checksum (Σ 2·rank + found), verified against
/// [`naive_rank_checksum`] in the tests.
///
/// # Panics
///
/// Panics unless `side` is a power of two ≥ 2.
pub fn veb_search_with<S: TraceSink>(side: usize, block_words: u64, sink: &mut S) -> u64 {
    assert!(
        side.is_power_of_two() && side >= 2,
        "side must be a power of two ≥ 2"
    );
    let h = 2 * side.trailing_zeros();
    let n = (1usize << h) - 1;
    let sorted = keys(n);
    let mut laid_out = Vec::with_capacity(n);
    layout_rec(&sorted, h, &mut laid_out);
    let tree_f64: Vec<f64> = laid_out.iter().map(|&k| k as f64).collect();
    let qs = queries(n, side * side);
    let qs_f64: Vec<f64> = qs.iter().map(|&q| q as f64).collect();

    let mut space = AddressSpace::new(block_words);
    let tree = space.alloc_from(&tree_f64);
    let queries_buf = space.alloc_from(&qs_f64);

    let mut sum = 0u64;
    for qi in 0..qs_f64.len() {
        let q = cast::u64_from_f64(queries_buf.read(qi, sink));
        let (found, rank) = search_rec(&tree, 0, h, q, sink);
        sum += checksum(found, rank);
        sink.leaf();
    }
    sum
}

/// Run the vEB search workload, returning the checksum and the recorded
/// block trace.
///
/// # Panics
///
/// Panics unless `side` is a power of two ≥ 2.
#[must_use]
pub fn veb_search(side: usize, block_words: u64) -> (u64, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let sum = veb_search_with(side, block_words, &mut tracer);
    (sum, tracer.into_trace())
}

/// Run the vEB search workload, emitting the trace directly as bytecode —
/// the workload is *born compiled*; no event vector is ever materialised.
///
/// # Panics
///
/// Panics unless `side` is a power of two ≥ 2.
#[must_use]
pub fn veb_search_compiled(side: usize, block_words: u64) -> (u64, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let sum = veb_search_with(side, block_words, &mut compiler);
    (sum, compiler.finish())
}

/// Reference checksum from a naive binary search over the sorted keys
/// (no vEB layout, no tracing).
///
/// # Panics
///
/// Panics unless `side` is a power of two ≥ 2.
#[must_use]
pub fn naive_rank_checksum(side: usize) -> u64 {
    assert!(
        side.is_power_of_two() && side >= 2,
        "side must be a power of two ≥ 2"
    );
    let n = side * side - 1;
    let sorted = keys(n);
    queries(n, side * side)
        .into_iter()
        .map(|q| {
            let rank = sorted.partition_point(|&k| k < q);
            let found = sorted.get(rank) == Some(&q);
            checksum(found, cast::u64_from_usize(rank))
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_a_permutation_of_the_keys() {
        for h in [1u32, 2, 3, 4, 5, 6] {
            let n = (1usize << h) - 1;
            let sorted = keys(n);
            let mut out = Vec::new();
            layout_rec(&sorted, h, &mut out);
            let mut back = out.clone();
            back.sort_unstable();
            assert_eq!(back, sorted, "height {h}");
        }
    }

    #[test]
    fn veb_order_of_height_four_matches_hand_layout() {
        // h = 4: top of height 2 (keys at in-order ranks 4, 8, 12 → values
        // 2·r−1), then four bottoms of height 2 over the remaining keys.
        let sorted = keys(15);
        let mut out = Vec::new();
        layout_rec(&sorted, 4, &mut out);
        assert_eq!(
            out,
            vec![15, 7, 23, 3, 1, 5, 11, 9, 13, 19, 17, 21, 27, 25, 29]
        );
    }

    #[test]
    fn search_matches_naive_reference() {
        for side in [2usize, 4, 8, 16] {
            let (sum, _) = veb_search(side, 4);
            assert_eq!(sum, naive_rank_checksum(side), "side {side}");
        }
    }

    #[test]
    fn every_key_is_found_and_every_even_misses() {
        let side = 4usize;
        let h = 2 * side.trailing_zeros();
        let n = (1usize << h) - 1;
        let sorted = keys(n);
        let mut laid_out = Vec::new();
        layout_rec(&sorted, h, &mut laid_out);
        let tree_f64: Vec<f64> = laid_out.iter().map(|&k| k as f64).collect();
        let mut space = AddressSpace::new(4);
        let tree = space.alloc_from(&tree_f64);
        let mut sink = Tracer::new(4);
        for (rank, &k) in sorted.iter().enumerate() {
            assert_eq!(
                search_rec(&tree, 0, h, k, &mut sink),
                (true, cast::u64_from_usize(rank))
            );
            assert_eq!(
                search_rec(&tree, 0, h, k - 1, &mut sink),
                (false, cast::u64_from_usize(rank))
            );
        }
        assert_eq!(
            search_rec(&tree, 0, h, 2 * cast::u64_from_usize(n), &mut sink),
            (false, cast::u64_from_usize(n))
        );
    }

    #[test]
    fn trace_shape_matches_bst_path_lengths() {
        // The vEB search reads exactly the keys on the root-to-node path of
        // the equivalent complete BST: h compares for a miss, and
        // h − tz(r + 1) compares for a hit at in-order rank r (the node's
        // height above the leaves is the number of trailing zeros of r + 1).
        let side = 8usize;
        let (_, trace) = veb_search(side, 1);
        let h = u64::from(2 * side.trailing_zeros());
        let n = side * side - 1;
        let qn = cast::u64_from_usize(side * side);
        let compares: u64 = queries(n, side * side)
            .into_iter()
            .map(|q| {
                if q % 2 == 1 {
                    let rank = (q - 1) / 2; // odd keys 2r+1
                    h - u64::from((rank + 1).trailing_zeros())
                } else {
                    h
                }
            })
            .sum();
        assert_eq!(trace.leaves(), u128::from(qn));
        assert_eq!(trace.accesses(), qn + compares);
    }

    #[test]
    fn compiled_emission_matches_recorded_trace() {
        let (s1, trace) = veb_search(8, 4);
        let (s2, program) = veb_search_compiled(8, 4);
        assert_eq!(s1, s2);
        assert_eq!(crate::bytecode::compile(&trace), program);
        let decoded: Vec<_> = program.events().collect();
        assert_eq!(decoded, trace.events());
    }
}
