//! Deterministic trace corpus with process-wide memoized summaries.
//!
//! Tracing a real algorithm and summarising its reuse structure are pure
//! functions of `(algorithm, side, block_words)`, yet the capacity-model
//! experiments used to re-trace per sweep point — and, after the trial
//! fan-out of the experiment engine, would have re-traced per *worker*.
//! This store mirrors `cadapt_profiles::cache`: each
//! [`SummarizedTrace`] (the [`BlockTrace`] plus its
//! [`TraceSummary`]) is built **once per process** and handed out as an
//! [`Arc`] keyed by its parameters.
//!
//! Determinism: inputs are fixed arithmetic patterns (the same ones
//! experiment E8 has always used), construction records no execution
//! counters, and the [`BTreeMap`] keying is total — a cache hit returns a
//! value bit-identical to fresh construction (asserted in the tests), so
//! the store can never change a golden record, only the wall clock.

use crate::summary::TraceSummary;
use crate::tracer::BlockTrace;
use crate::ZMatrix;
use cadapt_core::Potential;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The traced algorithms of the corpus, keyed for memoization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceAlgo {
    /// Divide-and-conquer matrix multiplication with scan merges —
    /// (8, 4, 1)-regular, the paper's canonical non-adaptive algorithm.
    MmScan,
    /// In-place accumulating matrix multiplication — (8, 4, 0) and
    /// optimally cache-adaptive.
    MmInplace,
    /// Strassen's seven-multiplication scheme — (7, 4, 1)-regular.
    Strassen,
    /// Cache-oblivious edit distance via the boundary method —
    /// (4, 2, 1)-regular. `side` is the string length.
    EditDistance,
}

impl TraceAlgo {
    /// Every corpus algorithm, in presentation order.
    pub const ALL: [TraceAlgo; 4] = [
        TraceAlgo::MmScan,
        TraceAlgo::MmInplace,
        TraceAlgo::Strassen,
        TraceAlgo::EditDistance,
    ];

    /// Human label (matches the E8 table labels).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceAlgo::MmScan => "MM-Scan",
            TraceAlgo::MmInplace => "MM-Inplace",
            TraceAlgo::Strassen => "Strassen",
            TraceAlgo::EditDistance => "EditDistance",
        }
    }

    /// The algorithm's progress potential ρ(x) = x^{log_b a}.
    #[must_use]
    pub fn potential(self) -> Potential {
        match self {
            TraceAlgo::MmScan | TraceAlgo::MmInplace => Potential::new(8, 4),
            TraceAlgo::Strassen => Potential::new(7, 4),
            TraceAlgo::EditDistance => Potential::new(4, 2),
        }
    }

    /// Trace the algorithm on its deterministic input of the given size.
    /// For the matrix algorithms `side` is the (power-of-two) matrix side;
    /// for edit distance it is the string length.
    #[must_use]
    pub fn trace(self, side: usize, block_words: u64) -> BlockTrace {
        match self {
            TraceAlgo::MmScan => {
                let (a, b) = test_matrices(side);
                crate::mm::mm_scan(&a, &b, block_words).1
            }
            TraceAlgo::MmInplace => {
                let (a, b) = test_matrices(side);
                crate::mm::mm_inplace(&a, &b, block_words).1
            }
            TraceAlgo::Strassen => {
                let (a, b) = test_matrices(side);
                crate::strassen::strassen(&a, &b, block_words).1
            }
            TraceAlgo::EditDistance => {
                let (x, y) = test_strings(side);
                crate::edit::edit_distance(&x, &y, block_words).1
            }
        }
    }
}

/// The deterministic matrix pair the trace experiments run on (the same
/// small-prime residue pattern E8 uses).
#[must_use]
pub fn test_matrices(side: usize) -> (ZMatrix, ZMatrix) {
    let a: Vec<f64> = (0..side * side)
        .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
        .collect();
    let b: Vec<f64> = (0..side * side)
        .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
        .collect();
    (
        ZMatrix::from_row_major(side, &a),
        ZMatrix::from_row_major(side, &b),
    )
}

/// The deterministic string pair for the edit-distance trace.
#[must_use]
pub fn test_strings(len: usize) -> (Vec<u8>, Vec<u8>) {
    let alphabet = b"acgt";
    let x: Vec<u8> = (0..len).map(|i| alphabet[(i * 7 + 3) % 4]).collect();
    let y: Vec<u8> = (0..len).map(|i| alphabet[(i * 5 + 1) % 4]).collect();
    (x, y)
}

/// A trace bundled with its reuse-distance summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarizedTrace {
    trace: BlockTrace,
    summary: TraceSummary,
}

impl SummarizedTrace {
    /// Trace `trace` and summarise it in one step.
    #[must_use]
    pub fn new(trace: BlockTrace) -> Self {
        let summary = TraceSummary::new(&trace);
        SummarizedTrace { trace, summary }
    }

    /// The raw block trace (what the LRU simulator replays).
    #[must_use]
    pub fn trace(&self) -> &BlockTrace {
        &self.trace
    }

    /// The reuse-distance summary (what the analytic model queries).
    #[must_use]
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }
}

/// Memoization key: `(algo, side, block_words)` pins one corpus trace.
type TraceKey = (TraceAlgo, usize, u64);
type TraceStore = Mutex<BTreeMap<TraceKey, Arc<SummarizedTrace>>>;

static TRACES: OnceLock<TraceStore> = OnceLock::new();

/// The summarised trace of `algo` at `(side, block_words)`, memoized
/// process-wide. Repeated callers (sweep points, trial workers, the
/// in-process cross-validation passes) share one [`Arc`].
#[must_use]
pub fn summarized(algo: TraceAlgo, side: usize, block_words: u64) -> Arc<SummarizedTrace> {
    let cache = TRACES.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (algo, side, block_words);
    {
        let map = cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(st) = map.get(&key) {
            return Arc::clone(st);
        }
    }
    // Build outside the lock: tracing + summarising is the expensive part
    // and must not serialize unrelated workers behind a miss.
    let built = Arc::new(SummarizedTrace::new(algo.trace(side, block_words)));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(key).or_insert(built))
}

// Exact float equality in tests is deliberate: the corpus inputs are
// fixed integer-valued patterns.
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_share_and_match_fresh_construction() {
        let first = summarized(TraceAlgo::MmInplace, 8, 4);
        let second = summarized(TraceAlgo::MmInplace, 8, 4);
        assert!(Arc::ptr_eq(&first, &second));
        let fresh = SummarizedTrace::new(TraceAlgo::MmInplace.trace(8, 4));
        assert_eq!(*first, fresh);
    }

    #[test]
    fn distinct_keys_get_distinct_traces() {
        let a = summarized(TraceAlgo::MmScan, 8, 4);
        let b = summarized(TraceAlgo::MmScan, 8, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn every_corpus_algorithm_traces_and_summarises() {
        for algo in TraceAlgo::ALL {
            let st = summarized(algo, 8, 4);
            assert!(st.trace().accesses() > 0, "{}", algo.label());
            assert_eq!(st.summary().accesses(), st.trace().accesses());
            assert_eq!(st.summary().distinct_blocks(), st.trace().distinct_blocks());
            assert_eq!(st.summary().leaves(), st.trace().leaves());
        }
    }

    #[test]
    fn matrices_match_the_e8_pattern() {
        let (a, b) = test_matrices(4);
        assert_eq!(a.get(0, 0), -2.0); // ((0·7+3) % 11) − 5
        assert_eq!(b.get(0, 0), -5.0); // ((0·5+1) % 13) − 6
        let (x, y) = test_strings(6);
        assert_eq!(x.len(), 6);
        assert!(x.iter().chain(&y).all(|c| b"acgt".contains(c)));
    }
}
