//! Deterministic trace corpus with process-wide memoized programs and
//! summaries.
//!
//! Tracing a real algorithm and summarising its reuse structure are pure
//! functions of `(algorithm, side, block_words)`, yet the capacity-model
//! experiments used to re-trace per sweep point — and, after the trial
//! fan-out of the experiment engine, would have re-traced per *worker*.
//! This store mirrors `cadapt_profiles::cache`: each compiled
//! [`TraceProgram`] and each [`SummarizedTrace`] (the program plus its
//! [`TraceSummary`]) is built **once per process** and handed out as an
//! [`Arc`] keyed by its parameters.
//!
//! Since the bytecode compiler landed, the corpus stores traces as
//! **programs**, not event vectors: the regular kernels emit bytecode
//! structurally (no `Vec<TraceEvent>` is ever materialised) and every
//! consumer — the LRU simulator, the analytic model's summary build —
//! streams events straight out of the program. A compiled corpus trace is
//! typically orders of magnitude smaller than its event vector, which is
//! what lets experiment E15 replay traces past the sizes the vector
//! representation could hold.
//!
//! Determinism: inputs are fixed arithmetic patterns (the same ones
//! experiment E8 has always used), construction records no execution
//! counters, and the [`BTreeMap`] keying is total — a cache hit returns a
//! value bit-identical to fresh construction (asserted in the tests), so
//! the store can never change a golden record, only the wall clock. The
//! program bytes themselves are CRC-pinned by the bytecode integration
//! goldens.

use crate::bytecode::TraceProgram;
use crate::summary::TraceSummary;
use crate::tracer::BlockTrace;
use crate::ZMatrix;
use cadapt_core::Potential;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The traced algorithms of the corpus, keyed for memoization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceAlgo {
    /// Divide-and-conquer matrix multiplication with scan merges —
    /// (8, 4, 1)-regular, the paper's canonical non-adaptive algorithm.
    MmScan,
    /// In-place accumulating matrix multiplication — (8, 4, 0) and
    /// optimally cache-adaptive.
    MmInplace,
    /// Strassen's seven-multiplication scheme — (7, 4, 1)-regular.
    Strassen,
    /// Cache-oblivious edit distance via the boundary method —
    /// (4, 2, 1)-regular. `side` is the string length.
    EditDistance,
    /// Static binary search over a van Emde Boas layout (Barratt & Zhang)
    /// — a linear-ρ search-tree control outside the strict (a, b, c)
    /// regime; see `crate::veb`. `side` scales the workload: `side² − 1`
    /// keys, `side²` queries.
    VebSearch,
}

impl TraceAlgo {
    /// The original four corpus algorithms, in presentation order. The
    /// historical experiment goldens (E8–E14) sweep exactly this set, so
    /// it must not grow; new workloads join [`Self::EXTENDED`].
    pub const ALL: [TraceAlgo; 4] = [
        TraceAlgo::MmScan,
        TraceAlgo::MmInplace,
        TraceAlgo::Strassen,
        TraceAlgo::EditDistance,
    ];

    /// Every corpus algorithm including post-golden additions — what the
    /// bytecode goldens and experiment E15's validation stage sweep.
    pub const EXTENDED: [TraceAlgo; 5] = [
        TraceAlgo::MmScan,
        TraceAlgo::MmInplace,
        TraceAlgo::Strassen,
        TraceAlgo::EditDistance,
        TraceAlgo::VebSearch,
    ];

    /// Human label (matches the E8 table labels).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceAlgo::MmScan => "MM-Scan",
            TraceAlgo::MmInplace => "MM-Inplace",
            TraceAlgo::Strassen => "Strassen",
            TraceAlgo::EditDistance => "EditDistance",
            TraceAlgo::VebSearch => "VebSearch",
        }
    }

    /// The algorithm's progress potential ρ(x) = x^{log_b a}.
    #[must_use]
    pub fn potential(self) -> Potential {
        match self {
            TraceAlgo::MmScan | TraceAlgo::MmInplace => Potential::new(8, 4),
            TraceAlgo::Strassen => Potential::new(7, 4),
            TraceAlgo::EditDistance => Potential::new(4, 2),
            // Linear ρ(x) = x: the a = b boundary, like transpose.
            TraceAlgo::VebSearch => Potential::new(2, 2),
        }
    }

    /// Trace the algorithm on its deterministic input of the given size,
    /// recording the full event vector. For the matrix algorithms `side`
    /// is the (power-of-two) matrix side; for edit distance it is the
    /// string length; for vEB search it scales the key/query counts.
    #[must_use]
    pub fn trace(self, side: usize, block_words: u64) -> BlockTrace {
        match self {
            TraceAlgo::MmScan => {
                let (a, b) = test_matrices(side);
                crate::mm::mm_scan(&a, &b, block_words).1
            }
            TraceAlgo::MmInplace => {
                let (a, b) = test_matrices(side);
                crate::mm::mm_inplace(&a, &b, block_words).1
            }
            TraceAlgo::Strassen => {
                let (a, b) = test_matrices(side);
                crate::strassen::strassen(&a, &b, block_words).1
            }
            TraceAlgo::EditDistance => {
                let (x, y) = test_strings(side);
                crate::edit::edit_distance(&x, &y, block_words).1
            }
            TraceAlgo::VebSearch => crate::veb::veb_search(side, block_words).1,
        }
    }

    /// Compile the algorithm's trace directly to bytecode via structural
    /// emission — **no event vector is materialised**. Byte-identical to
    /// `crate::bytecode::compile(&self.trace(side, block_words))` because
    /// the encoder is a pure function of the event stream (asserted per
    /// kernel and pinned by the bytecode goldens).
    #[must_use]
    pub fn compile(self, side: usize, block_words: u64) -> TraceProgram {
        match self {
            TraceAlgo::MmScan => {
                let (a, b) = test_matrices(side);
                crate::mm::mm_scan_compiled(&a, &b, block_words).1
            }
            TraceAlgo::MmInplace => {
                let (a, b) = test_matrices(side);
                crate::mm::mm_inplace_compiled(&a, &b, block_words).1
            }
            TraceAlgo::Strassen => {
                let (a, b) = test_matrices(side);
                crate::strassen::strassen_compiled(&a, &b, block_words).1
            }
            TraceAlgo::EditDistance => {
                let (x, y) = test_strings(side);
                crate::edit::edit_distance_compiled(&x, &y, block_words).1
            }
            TraceAlgo::VebSearch => crate::veb::veb_search_compiled(side, block_words).1,
        }
    }
}

/// The deterministic matrix pair the trace experiments run on (the same
/// small-prime residue pattern E8 uses).
#[must_use]
pub fn test_matrices(side: usize) -> (ZMatrix, ZMatrix) {
    let a: Vec<f64> = (0..side * side)
        .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
        .collect();
    let b: Vec<f64> = (0..side * side)
        .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
        .collect();
    (
        ZMatrix::from_row_major(side, &a),
        ZMatrix::from_row_major(side, &b),
    )
}

/// The deterministic string pair for the edit-distance trace.
#[must_use]
pub fn test_strings(len: usize) -> (Vec<u8>, Vec<u8>) {
    let alphabet = b"acgt";
    let x: Vec<u8> = (0..len).map(|i| alphabet[(i * 7 + 3) % 4]).collect(); // cadapt-lint: allow(panic-reach) -- index is taken mod 4, the alphabet length
    let y: Vec<u8> = (0..len).map(|i| alphabet[(i * 5 + 1) % 4]).collect(); // cadapt-lint: allow(panic-reach) -- index is taken mod 4, the alphabet length
    (x, y)
}

/// A compiled trace program bundled with its reuse-distance summary.
///
/// The program is the trace's only stored representation — both replay
/// backends stream events out of it, so the `Vec<TraceEvent>` form never
/// outlives construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummarizedTrace {
    program: Arc<TraceProgram>,
    summary: TraceSummary,
}

impl SummarizedTrace {
    /// Compile `trace` to bytecode and summarise it in one step. The
    /// recorded event vector is dropped on return.
    #[must_use]
    pub fn new(trace: BlockTrace) -> Self {
        let summary = TraceSummary::new(&trace);
        let program = Arc::new(crate::bytecode::compile(&trace));
        SummarizedTrace { program, summary }
    }

    /// Summarise an already-compiled program by streaming its events —
    /// no event vector is materialised.
    #[must_use]
    pub fn from_program(program: Arc<TraceProgram>) -> Self {
        let summary = TraceSummary::new(&*program);
        SummarizedTrace { program, summary }
    }

    /// The compiled trace program (what both replay backends stream).
    #[must_use]
    pub fn program(&self) -> &TraceProgram {
        &self.program
    }

    /// The reuse-distance summary (what the analytic model queries).
    #[must_use]
    pub fn summary(&self) -> &TraceSummary {
        &self.summary
    }
}

/// Memoization key: `(algo, side, block_words)` pins one corpus trace.
type TraceKey = (TraceAlgo, usize, u64);
type TraceStore = Mutex<BTreeMap<TraceKey, Arc<SummarizedTrace>>>;
type ProgramStore = Mutex<BTreeMap<TraceKey, Arc<TraceProgram>>>;

static TRACES: OnceLock<TraceStore> = OnceLock::new();
static PROGRAMS: OnceLock<ProgramStore> = OnceLock::new();

/// The compiled program of `algo` at `(side, block_words)`, memoized
/// process-wide. Built by structural emission (never through an event
/// vector), so this is the entry point for trace sizes beyond what
/// `Vec<TraceEvent>` materialisation could hold.
#[must_use]
pub fn compiled(algo: TraceAlgo, side: usize, block_words: u64) -> Arc<TraceProgram> {
    let cache = PROGRAMS.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (algo, side, block_words);
    {
        let map = cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = map.get(&key) {
            return Arc::clone(p);
        }
    }
    // Build outside the lock: compiling is the expensive part and must not
    // serialize unrelated workers behind a miss.
    let built = Arc::new(algo.compile(side, block_words));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(key).or_insert(built))
}

/// The summarised trace of `algo` at `(side, block_words)`, memoized
/// process-wide. Repeated callers (sweep points, trial workers, the
/// in-process cross-validation passes) share one [`Arc`]; the underlying
/// program is shared with [`compiled`].
#[must_use]
pub fn summarized(algo: TraceAlgo, side: usize, block_words: u64) -> Arc<SummarizedTrace> {
    let cache = TRACES.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (algo, side, block_words);
    {
        let map = cache.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(st) = map.get(&key) {
            return Arc::clone(st);
        }
    }
    // Build outside the lock; the program itself comes from (and lands in)
    // the shared program store.
    let built = Arc::new(SummarizedTrace::from_program(compiled(
        algo,
        side,
        block_words,
    )));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(map.entry(key).or_insert(built))
}

// Exact float equality in tests is deliberate: the corpus inputs are
// fixed integer-valued patterns.
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_share_and_match_fresh_construction() {
        let first = summarized(TraceAlgo::MmInplace, 8, 4);
        let second = summarized(TraceAlgo::MmInplace, 8, 4);
        assert!(Arc::ptr_eq(&first, &second));
        let fresh = SummarizedTrace::new(TraceAlgo::MmInplace.trace(8, 4));
        assert_eq!(*first, fresh);
    }

    #[test]
    fn distinct_keys_get_distinct_traces() {
        let a = summarized(TraceAlgo::MmScan, 8, 4);
        let b = summarized(TraceAlgo::MmScan, 8, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.program(), b.program());
    }

    #[test]
    fn summarized_shares_the_program_with_compiled() {
        let p = compiled(TraceAlgo::Strassen, 8, 4);
        let st = summarized(TraceAlgo::Strassen, 8, 4);
        assert_eq!(*st.program(), *p);
    }

    #[test]
    fn every_corpus_algorithm_traces_and_summarises() {
        for algo in TraceAlgo::EXTENDED {
            let st = summarized(algo, 8, 4);
            assert!(st.program().accesses() > 0, "{}", algo.label());
            assert_eq!(st.summary().accesses(), st.program().accesses());
            assert_eq!(
                st.summary().distinct_blocks(),
                st.program().distinct_blocks()
            );
            assert_eq!(st.summary().leaves(), st.program().leaves());
        }
    }

    #[test]
    fn structural_compilation_matches_recorded_compilation() {
        for algo in TraceAlgo::EXTENDED {
            let structural = algo.compile(8, 4);
            let recorded = crate::bytecode::compile(&algo.trace(8, 4));
            assert_eq!(structural, recorded, "{}", algo.label());
        }
    }

    #[test]
    fn matrices_match_the_e8_pattern() {
        let (a, b) = test_matrices(4);
        assert_eq!(a.get(0, 0), -2.0); // ((0·7+3) % 11) − 5
        assert_eq!(b.get(0, 0), -5.0); // ((0·5+1) % 13) − 6
        let (x, y) = test_strings(6);
        assert_eq!(x.len(), 6);
        assert!(x.iter().chain(&y).all(|c| b"acgt".contains(c)));
    }
}
