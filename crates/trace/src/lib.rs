//! # cadapt-trace — real algorithms, really traced
//!
//! The abstract (a, b, c)-regular cursor of `cadapt-recursion` is a model.
//! This crate grounds it: genuine cache-oblivious algorithms run on real
//! data and record every memory access as a block-level trace, which
//! `cadapt-paging` then replays under arbitrary memory profiles. Experiment
//! E8 compares the two layers.
//!
//! Implemented algorithms (all verified against naive references in their
//! tests):
//!
//! * [`mm::mm_scan`] — divide-and-conquer matrix multiplication that merges
//!   subresults with linear scans; the paper's canonical non-adaptive
//!   (8, 4, 1)-regular algorithm.
//! * [`mm::mm_inplace`] — the in-place accumulating variant; (8, 4, 0) and
//!   optimally cache-adaptive.
//! * [`strassen::strassen`] — Strassen's seven-multiplication scheme,
//!   (7, 4, 1)-regular with genuine add/subtract scans.
//! * [`edit::edit_distance`] — cache-oblivious edit distance via the
//!   boundary method: four half-size quadrant solves stitched with
//!   linear boundary scans, (4, 2, 1)-regular.
//! * [`gep::floyd_warshall`] — the Gaussian Elimination Paradigm family:
//!   recursive blocked Kleene APSP over the (min, +) semiring, the
//!   (8, 4, 1)-regular GEP kernel the paper cites.
//! * [`transpose::transpose`] — the classic FLPR quadrant transpose, an
//!   a = b linear-work control case outside the gap regime.
//!
//! Matrices use the Z-Morton (bit-interleaved) layout so that quadrants are
//! contiguous — the layout that makes these algorithms cache-oblivious.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
pub mod gep;
pub mod matrix;
pub mod mm;
pub mod strassen;
pub mod tracer;
pub mod transpose;

pub use matrix::ZMatrix;
pub use tracer::{AddressSpace, BlockTrace, TraceEvent, TracedBuf, Tracer};
