//! # cadapt-trace — real algorithms, really traced
//!
//! The abstract (a, b, c)-regular cursor of `cadapt-recursion` is a model.
//! This crate grounds it: genuine cache-oblivious algorithms run on real
//! data and record every memory access as a block-level trace, which
//! `cadapt-paging` then replays under arbitrary memory profiles. Experiment
//! E8 compares the two layers.
//!
//! Implemented algorithms (all verified against naive references in their
//! tests):
//!
//! * [`mm::mm_scan`] — divide-and-conquer matrix multiplication that merges
//!   subresults with linear scans; the paper's canonical non-adaptive
//!   (8, 4, 1)-regular algorithm.
//! * [`mm::mm_inplace`] — the in-place accumulating variant; (8, 4, 0) and
//!   optimally cache-adaptive.
//! * [`strassen::strassen`] — Strassen's seven-multiplication scheme,
//!   (7, 4, 1)-regular with genuine add/subtract scans.
//! * [`edit::edit_distance`] — cache-oblivious edit distance via the
//!   boundary method: four half-size quadrant solves stitched with
//!   linear boundary scans, (4, 2, 1)-regular.
//! * [`gep::floyd_warshall`] — the Gaussian Elimination Paradigm family:
//!   recursive blocked Kleene APSP over the (min, +) semiring, the
//!   (8, 4, 1)-regular GEP kernel the paper cites.
//! * [`transpose::transpose`] — the classic FLPR quadrant transpose, an
//!   a = b linear-work control case outside the gap regime.
//! * [`veb::veb_search`] — static binary search over a van Emde Boas tree
//!   layout (Barratt & Zhang's cache-friendly search trees), the corpus's
//!   search-tree workload; born compiled rather than materialised.
//!
//! Matrices use the Z-Morton (bit-interleaved) layout so that quadrants are
//! contiguous — the layout that makes these algorithms cache-oblivious.
//!
//! Beyond the algorithms themselves, [`summary`] condenses a trace into
//! its reuse-distance structure once (stack-distance histogram, warm/cold
//! positions, leaf prefix sums) so `cadapt-paging`'s analytic cache model
//! can answer capacity and box queries in closed form instead of replaying
//! references, and [`corpus`] memoizes the summarised traces process-wide
//! (the same pattern as `cadapt_profiles::cache`).
//!
//! Traces come in two interchangeable representations behind the
//! [`stream::TraceStream`] trait: the recorded [`BlockTrace`] event
//! vector, and the compiled [`bytecode::TraceProgram`] — a compact
//! delta/run/loop bytecode that a small decoder VM streams back out.
//! Every instrumented kernel is generic over [`tracer::TraceSink`], so it
//! can record events or emit bytecode directly (the `*_compiled` entry
//! points) without ever materialising the vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod corpus;
pub mod edit;
pub mod gep;
pub mod matrix;
pub mod mm;
pub mod strassen;
pub mod stream;
pub mod summary;
pub mod tracer;
pub mod transpose;
pub mod veb;

pub use bytecode::{compile, TraceCompiler, TraceProgram};
pub use corpus::{compiled, summarized, SummarizedTrace, TraceAlgo};
pub use matrix::ZMatrix;
pub use stream::TraceStream;
pub use summary::TraceSummary;
pub use tracer::{AddressSpace, BlockTrace, TraceEvent, TraceSink, TracedBuf, Tracer};
