//! Traced cache-oblivious matrix transpose (out-of-place, quadrant
//! recursion).
//!
//! The classic Frigo–Leiserson–Prokop–Ramachandran kernel: transpose by
//! recursing into quadrants, swapping the off-diagonal pair. Four
//! subproblems a quarter the size with O(1) extra work — (4, 4, 0)-regular
//! in the block-size convention, i.e. *outside* the gap regime (a = b):
//! the adaptivity taxonomy's boundary case with a genuinely linear-work
//! algorithm, useful as a trace-level control next to the gap-regime
//! multiplications.

use crate::bytecode::{TraceCompiler, TraceProgram};
use crate::matrix::ZMatrix;
use crate::tracer::{AddressSpace, BlockTrace, TraceSink, TracedBuf, Tracer};

fn transpose_rec<S: TraceSink>(
    tracer: &mut S,
    src: &TracedBuf,
    src_off: usize,
    dst: &mut TracedBuf,
    dst_off: usize,
    side: usize,
) {
    if side == 1 {
        let v = src.read(src_off, tracer);
        dst.write(dst_off, v, tracer);
        tracer.leaf();
        return;
    }
    let half = side / 2;
    let q = half * half;
    let [s11, s12, s21, s22] = [src_off, src_off + q, src_off + 2 * q, src_off + 3 * q];
    let [d11, d12, d21, d22] = [dst_off, dst_off + q, dst_off + 2 * q, dst_off + 3 * q];
    // (Aᵀ)₁₁ = A₁₁ᵀ, (Aᵀ)₁₂ = A₂₁ᵀ, (Aᵀ)₂₁ = A₁₂ᵀ, (Aᵀ)₂₂ = A₂₂ᵀ.
    transpose_rec(tracer, src, s11, dst, d11, half);
    transpose_rec(tracer, src, s21, dst, d12, half);
    transpose_rec(tracer, src, s12, dst, d21, half);
    transpose_rec(tracer, src, s22, dst, d22, half);
}

/// Transpose `a` out-of-place with the quadrant recursion, reporting
/// every access to `sink`.
pub fn transpose_with<S: TraceSink>(a: &ZMatrix, block_words: u64, sink: &mut S) -> ZMatrix {
    let mut space = AddressSpace::new(block_words);
    let src = space.alloc_from(a.z_data());
    let mut dst = space.alloc(a.side() * a.side());
    transpose_rec(sink, &src, 0, &mut dst, 0, a.side());
    ZMatrix::from_z_data(a.side(), dst.untraced())
}

/// Transpose `a` out-of-place with the quadrant recursion, tracing at
/// block size `block_words`.
#[must_use]
pub fn transpose(a: &ZMatrix, block_words: u64) -> (ZMatrix, BlockTrace) {
    let mut tracer = Tracer::new(block_words);
    let result = transpose_with(a, block_words, &mut tracer);
    (result, tracer.into_trace())
}

/// Transpose `a`, emitting the trace directly as bytecode — no event
/// vector is ever materialised.
#[must_use]
pub fn transpose_compiled(a: &ZMatrix, block_words: u64) -> (ZMatrix, TraceProgram) {
    let mut compiler = TraceCompiler::new(block_words);
    let result = transpose_with(a, block_words, &mut compiler);
    (result, compiler.finish())
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceEvent;

    fn matrix(side: usize) -> ZMatrix {
        let rows: Vec<f64> = (0..side * side).map(|i| i as f64).collect();
        ZMatrix::from_row_major(side, &rows)
    }

    #[test]
    fn transposes_correctly() {
        for side in [1usize, 2, 4, 8, 16, 32] {
            let a = matrix(side);
            let (t, _) = transpose(&a, 4);
            for r in 0..side {
                for c in 0..side {
                    assert_eq!(t.get(r, c), a.get(c, r), "side {side} at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn involution() {
        let a = matrix(16);
        let (t, _) = transpose(&a, 2);
        let (back, _) = transpose(&t, 2);
        assert_eq!(back, a);
    }

    #[test]
    fn work_is_linear() {
        // One leaf per element; accesses exactly 2 per element (read+write).
        let side = 16;
        let (_, trace) = transpose(&matrix(side), 1);
        assert_eq!(trace.leaves(), (side * side) as u128);
        assert_eq!(trace.accesses(), 2 * (side * side) as u64);
    }

    #[test]
    fn io_is_cache_insensitive_beyond_two_blocks() {
        // Linear-work streaming recursion: even a tiny cache achieves the
        // cold-miss floor (Z-order makes source and destination runs
        // contiguous at every granularity).
        use cadapt_paging_shim::replay_fixed_shim;
        let (_, trace) = transpose(&matrix(32), 4);
        let cold = trace.distinct_blocks();
        let few = replay_fixed_shim(&trace, 4);
        assert_eq!(few, u128::from(cold), "4 blocks of cache suffice");
    }

    /// Minimal local LRU replay so this crate's tests stay independent of
    /// `cadapt-paging` (which depends on us).
    mod cadapt_paging_shim {
        use crate::tracer::{BlockTrace, TraceEvent};
        use std::collections::HashMap;

        pub fn replay_fixed_shim(trace: &BlockTrace, capacity: usize) -> u128 {
            let mut stamp = 0u64;
            let mut resident: HashMap<u64, u64> = HashMap::new();
            let mut io = 0u128;
            for event in trace.events() {
                let TraceEvent::Access(b) = event else {
                    continue;
                };
                stamp += 1;
                if resident.contains_key(b) {
                    resident.insert(*b, stamp);
                    continue;
                }
                io += 1;
                if resident.len() >= capacity {
                    let (&victim, _) = resident.iter().min_by_key(|&(_, &s)| s).expect("nonempty");
                    resident.remove(&victim);
                }
                resident.insert(*b, stamp);
            }
            io
        }
    }

    #[test]
    fn compiled_emission_matches_recorded_trace() {
        let a = matrix(16);
        let (t1, trace) = transpose(&a, 4);
        let (t2, program) = transpose_compiled(&a, 4);
        assert_eq!(t1, t2);
        assert_eq!(crate::bytecode::compile(&trace), program);
        let decoded: Vec<_> = program.events().collect();
        assert_eq!(decoded, trace.events());
    }

    #[test]
    fn trace_alternates_read_write() {
        let (_, trace) = transpose(&matrix(4), 1);
        // Events: (read, write, leaf) triplets.
        let events = trace.events();
        assert_eq!(events.len(), 3 * 16);
        for chunk in events.chunks(3) {
            assert!(matches!(chunk[0], TraceEvent::Access(_)));
            assert!(matches!(chunk[1], TraceEvent::Access(_)));
            assert!(matches!(chunk[2], TraceEvent::Leaf));
        }
    }
}
