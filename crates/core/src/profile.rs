//! Square profiles: sequences of boxes, finite and infinite.
//!
//! A *square profile* (Definition 1) is a step function where each step is
//! exactly as long (in I/Os) as it is tall (in blocks); the steps are the
//! *boxes* (□). Prior work shows any memory profile can be approximated by a
//! square profile up to constant factors, so boxes are the universal currency
//! of cache-adaptive analysis.
//!
//! * [`SquareProfile`] — a finite, materialised profile. Worst-case profiles
//!   for the problem sizes used in experiments have millions of boxes, so the
//!   representation is a flat `Vec<Blocks>`.
//! * [`BoxSource`] — an infinite stream of boxes, the form consumed by the
//!   execution drivers. Definition 3 of the paper quantifies over *infinite*
//!   square profiles; samplers and generators implement this trait lazily so
//!   nothing unbounded is ever materialised.

use crate::potential::Potential;
use crate::{Blocks, CoreError, Io};
use serde::{Deserialize, Serialize};

/// A run of identical consecutive boxes in a profile.
///
/// The run-length fast path: instead of handing out one box at a time, a
/// source may report that the next `repeat` boxes all have the same `size`,
/// letting the execution drivers advance through the whole run in closed
/// form. `repeat == u64::MAX` means "this size forever" (constant tails).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoxRun {
    /// Size of every box in the run (≥ 1 block).
    pub size: Blocks,
    /// Number of identical boxes (≥ 1); `u64::MAX` for an infinite tail.
    pub repeat: u64,
}

/// An infinite stream of boxes.
///
/// The CA model runs an algorithm against an infinite square profile; the
/// algorithm consumes a prefix. Implementors must always be able to produce
/// a next box (of positive size).
pub trait BoxSource {
    /// Produce the next box in the profile. Must be ≥ 1 block.
    fn next_box(&mut self) -> Blocks;

    /// Produce the next *run* of identical boxes (run-length fast path).
    ///
    /// The default implementation reports runs of length 1, so every source
    /// stays correct; sources with structure (constant tails, worst-case
    /// leaf bursts, repeated i.i.d. draws) override this to expose longer
    /// runs.
    ///
    /// Contract: the concatenation of runs must equal the per-box stream.
    /// A consumer that stops mid-run (the execution completed, or a box
    /// budget intervened) *discards* the remainder of the run — the source
    /// is never polled again afterwards, so it may advance its internal
    /// state past the whole run when it returns it.
    fn next_run(&mut self) -> BoxRun {
        BoxRun {
            size: self.next_box(),
            repeat: 1,
        }
    }

    /// Lift this source into the streaming-pipeline world: an infinite
    /// [`RunCursor`](crate::cursor::RunCursor) yielding this source's
    /// runs, composable with the cursor combinators
    /// ([`RunCursorExt`](crate::cursor::RunCursorExt)).
    fn into_cursor(self) -> crate::cursor::SourceCursor<Self>
    where
        Self: Sized,
    {
        crate::cursor::SourceCursor::new(self)
    }
}

/// Blanket impl so `&mut S` is itself a source (mirrors `Iterator`).
impl<S: BoxSource + ?Sized> BoxSource for &mut S {
    fn next_box(&mut self) -> Blocks {
        (**self).next_box()
    }

    fn next_run(&mut self) -> BoxRun {
        (**self).next_run()
    }
}

/// Boxed sources are sources (enables heterogeneous `Box<dyn BoxSource>`).
impl<S: BoxSource + ?Sized> BoxSource for Box<S> {
    fn next_box(&mut self) -> Blocks {
        (**self).next_box()
    }

    fn next_run(&mut self) -> BoxRun {
        (**self).next_run()
    }
}

/// A finite square profile, optionally extended by a filler box size.
///
/// Finite profiles arise from the recursive worst-case construction
/// M_{a,b}(n) and from square-approximating measured memory profiles. To use
/// one where an infinite profile is required, [`SquareProfile::cycle`] or
/// [`SquareProfile::extended`] lift it to a [`BoxSource`].
///
/// ```
/// use cadapt_core::{Potential, SquareProfile};
///
/// let profile = SquareProfile::new(vec![1, 4, 16])?;
/// assert_eq!(profile.total_time(), 21); // a box of size x lasts x I/Os
///
/// let rho = Potential::new(8, 4); // MM-Scan's ρ(x) = x^{3/2}
/// assert_eq!(profile.total_potential(&rho), 1.0 + 8.0 + 64.0);
/// // Eq. 2 caps each box at the problem size:
/// assert_eq!(profile.bounded_potential(&rho, 4), 1.0 + 8.0 + 8.0);
/// # Ok::<(), cadapt_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquareProfile {
    boxes: Vec<Blocks>,
}

impl SquareProfile {
    /// Build a profile from explicit box sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyBox`] if any box has size zero.
    pub fn new(boxes: Vec<Blocks>) -> Result<Self, CoreError> {
        if let Some(at) = boxes.iter().position(|&b| b == 0) {
            return Err(CoreError::EmptyBox { at });
        }
        Ok(SquareProfile { boxes })
    }

    /// Build a profile without checking box positivity.
    ///
    /// Intended for generators that guarantee positivity by construction.
    ///
    /// # Panics
    ///
    /// Debug builds assert every box is positive.
    #[must_use]
    pub fn from_boxes_unchecked(boxes: Vec<Blocks>) -> Self {
        debug_assert!(boxes.iter().all(|&b| b > 0), "boxes must be positive");
        SquareProfile { boxes }
    }

    /// The empty profile.
    #[must_use]
    pub fn empty() -> Self {
        SquareProfile { boxes: Vec::new() }
    }

    /// Number of boxes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the profile has no boxes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The box sizes.
    #[must_use]
    pub fn boxes(&self) -> &[Blocks] {
        &self.boxes
    }

    /// Consume the profile, returning its boxes.
    #[must_use]
    pub fn into_boxes(self) -> Vec<Blocks> {
        self.boxes
    }

    /// Total duration in I/Os: Σ |□_i| (a box of size x lasts x I/Os).
    #[must_use]
    pub fn total_time(&self) -> Io {
        self.boxes.iter().map(|&b| Io::from(b)).sum()
    }

    /// Total potential Σ ρ(|□_i|) under the given potential function.
    #[must_use]
    pub fn total_potential(&self, rho: &Potential) -> f64 {
        self.boxes.iter().map(|&b| rho.eval(b)).sum()
    }

    /// Total *n-bounded* potential Σ min(n, |□_i|)^{log_b a} (Eq. 2).
    #[must_use]
    pub fn bounded_potential(&self, rho: &Potential, n: Blocks) -> f64 {
        self.boxes.iter().map(|&b| rho.bounded(n, b)).sum()
    }

    /// Largest box in the profile (`None` when empty).
    #[must_use]
    pub fn max_box(&self) -> Option<Blocks> {
        self.boxes.iter().copied().max()
    }

    /// Smallest box in the profile (`None` when empty).
    #[must_use]
    pub fn min_box(&self) -> Option<Blocks> {
        self.boxes.iter().copied().min()
    }

    /// Append another profile's boxes.
    pub fn concat(&mut self, other: &SquareProfile) {
        self.boxes.extend_from_slice(&other.boxes);
    }

    /// Push one box (must be positive).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn push(&mut self, size: Blocks) {
        assert!(size > 0, "boxes must be positive");
        self.boxes.push(size);
    }

    /// Rotate the profile left by `k` boxes (cyclic shift at box
    /// granularity). Used by the start-time perturbation of §4: starting the
    /// algorithm at box k of the cyclic profile is the same as running it on
    /// `rotated_by_boxes(k)`.
    #[must_use]
    pub fn rotated_by_boxes(&self, k: usize) -> SquareProfile {
        if self.boxes.is_empty() {
            return self.clone();
        }
        let k = k % self.boxes.len();
        let mut boxes = Vec::with_capacity(self.boxes.len());
        boxes.extend_from_slice(&self.boxes[k..]);
        boxes.extend_from_slice(&self.boxes[..k]);
        SquareProfile { boxes }
    }

    /// Index of the box containing I/O timestamp `t` (0-based), i.e. the
    /// unique i with Σ_{j<i} |□_j| ≤ t < Σ_{j≤i} |□_j|; `None` if `t` is at
    /// or beyond the end of the profile.
    #[must_use]
    pub fn box_at_time(&self, t: Io) -> Option<usize> {
        let mut acc: Io = 0;
        for (i, &b) in self.boxes.iter().enumerate() {
            acc += Io::from(b);
            if t < acc {
                return Some(i);
            }
        }
        None
    }

    /// Rotate the profile so it starts at the box containing time `t` of the
    /// cyclic profile — the time-weighted variant of the start-time shift
    /// (a uniformly random `t` picks box i with probability |□_i| / Σ |□_j|).
    ///
    /// The shift happens at box granularity: square profiles are closed
    /// under box rotation but not under mid-box truncation.
    #[must_use]
    pub fn rotated_by_time(&self, t: Io) -> SquareProfile {
        let total = self.total_time();
        if total == 0 {
            return self.clone();
        }
        let t = t % total;
        // cadapt-lint: allow(panic-reach) -- invariant: t < total_time after the modulo, so a box always exists
        let idx = self.box_at_time(t).expect("t reduced modulo total time");
        self.rotated_by_boxes(idx)
    }

    /// Lift to an infinite [`BoxSource`] by repeating the profile forever.
    ///
    /// # Panics
    ///
    /// Panics if the profile is empty (an empty profile cannot be cycled).
    #[must_use]
    pub fn cycle(&self) -> CycleSource<'_> {
        assert!(!self.boxes.is_empty(), "cannot cycle an empty profile");
        CycleSource {
            boxes: &self.boxes,
            pos: 0,
        }
    }

    /// Lift to an infinite [`BoxSource`] by appending `filler`-sized boxes
    /// after the profile is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `filler == 0`.
    #[must_use]
    pub fn extended(&self, filler: Blocks) -> ExtendedSource<'_> {
        assert!(filler > 0, "filler box must be positive");
        ExtendedSource {
            boxes: &self.boxes,
            pos: 0,
            filler,
        }
    }

    /// Collect `count` boxes from a [`BoxSource`] into a finite profile.
    #[must_use]
    pub fn take_from<S: BoxSource>(source: &mut S, count: usize) -> SquareProfile {
        let mut boxes = Vec::with_capacity(count);
        for _ in 0..count {
            boxes.push(source.next_box());
        }
        SquareProfile { boxes }
    }
}

impl FromIterator<Blocks> for SquareProfile {
    /// Collects boxes; panics (in debug) on zero-sized boxes.
    fn from_iter<T: IntoIterator<Item = Blocks>>(iter: T) -> Self {
        SquareProfile::from_boxes_unchecked(iter.into_iter().collect())
    }
}

/// Infinite source cycling over a finite profile. See [`SquareProfile::cycle`].
#[derive(Debug, Clone)]
pub struct CycleSource<'a> {
    boxes: &'a [Blocks],
    pos: usize,
}

impl BoxSource for CycleSource<'_> {
    fn next_box(&mut self) -> Blocks {
        let b = self.boxes[self.pos];
        self.pos = (self.pos + 1) % self.boxes.len();
        b
    }

    fn next_run(&mut self) -> BoxRun {
        // A maximal run of equal boxes from the current position, not
        // crossing the cycle seam (the next call continues from there).
        let b = self.boxes[self.pos];
        let run = self.boxes[self.pos..]
            .iter()
            .take_while(|&&x| x == b)
            .count();
        self.pos = (self.pos + run) % self.boxes.len();
        BoxRun {
            size: b,
            repeat: crate::cast::u64_from_usize(run),
        }
    }
}

/// Infinite source that plays a finite profile then a constant filler.
/// See [`SquareProfile::extended`].
#[derive(Debug, Clone)]
pub struct ExtendedSource<'a> {
    boxes: &'a [Blocks],
    pos: usize,
    filler: Blocks,
}

impl BoxSource for ExtendedSource<'_> {
    fn next_box(&mut self) -> Blocks {
        match self.boxes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                b
            }
            None => self.filler,
        }
    }

    fn next_run(&mut self) -> BoxRun {
        match self.boxes.get(self.pos) {
            Some(&b) => {
                let run = self.boxes[self.pos..]
                    .iter()
                    .take_while(|&&x| x == b)
                    .count();
                self.pos += run;
                BoxRun {
                    size: b,
                    repeat: crate::cast::u64_from_usize(run),
                }
            }
            // Once in the filler tail, it's this size forever.
            None => BoxRun {
                size: self.filler,
                repeat: u64::MAX,
            },
        }
    }
}

/// A source producing one constant box size forever (a "point mass" profile).
#[derive(Debug, Clone, Copy)]
pub struct ConstantSource {
    size: Blocks,
}

impl ConstantSource {
    /// Boxes of fixed `size` forever.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn new(size: Blocks) -> Self {
        assert!(size > 0, "boxes must be positive");
        ConstantSource { size }
    }
}

impl BoxSource for ConstantSource {
    fn next_box(&mut self) -> Blocks {
        self.size
    }

    fn next_run(&mut self) -> BoxRun {
        BoxRun {
            size: self.size,
            repeat: u64::MAX,
        }
    }
}

/// Adaptor recording every box drawn from an inner source, so a run can be
/// replayed or audited after the fact.
#[derive(Debug)]
pub struct RecordingSource<S> {
    inner: S,
    record: Vec<Blocks>,
}

impl<S: BoxSource> RecordingSource<S> {
    /// Wrap `inner`, recording each box it emits.
    pub fn new(inner: S) -> Self {
        RecordingSource {
            inner,
            record: Vec::new(),
        }
    }

    /// The boxes emitted so far.
    #[must_use]
    pub fn record(&self) -> &[Blocks] {
        &self.record
    }

    /// Finish recording, returning the emitted prefix as a profile.
    #[must_use]
    pub fn into_profile(self) -> SquareProfile {
        SquareProfile::from_boxes_unchecked(self.record)
    }
}

impl<S: BoxSource> BoxSource for RecordingSource<S> {
    fn next_box(&mut self) -> Blocks {
        let b = self.inner.next_box();
        self.record.push(b);
        b
    }
    // `next_run` stays the default (runs of 1): the recorder must see every
    // box individually, and a consumer may discard the tail of a run, which
    // would desynchronise the recorded prefix from what was consumed.
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    fn profile(v: &[Blocks]) -> SquareProfile {
        SquareProfile::new(v.to_vec()).unwrap()
    }

    #[test]
    fn rejects_zero_boxes() {
        assert_eq!(
            SquareProfile::new(vec![4, 0, 2]),
            Err(CoreError::EmptyBox { at: 1 })
        );
    }

    #[test]
    fn totals() {
        let p = profile(&[1, 4, 16]);
        assert_eq!(p.total_time(), 21);
        let rho = Potential::new(8, 4);
        // 1 + 8 + 64
        assert_eq!(p.total_potential(&rho), 73.0);
        // bounded at n = 4: 1 + 8 + 8
        assert_eq!(p.bounded_potential(&rho, 4), 17.0);
    }

    #[test]
    fn min_max() {
        let p = profile(&[3, 9, 1]);
        assert_eq!(p.max_box(), Some(9));
        assert_eq!(p.min_box(), Some(1));
        assert_eq!(SquareProfile::empty().max_box(), None);
    }

    #[test]
    fn rotation_by_boxes() {
        let p = profile(&[1, 2, 3, 4]);
        assert_eq!(p.rotated_by_boxes(0).boxes(), &[1, 2, 3, 4]);
        assert_eq!(p.rotated_by_boxes(1).boxes(), &[2, 3, 4, 1]);
        assert_eq!(p.rotated_by_boxes(4).boxes(), &[1, 2, 3, 4]);
        assert_eq!(p.rotated_by_boxes(6).boxes(), &[3, 4, 1, 2]);
    }

    #[test]
    fn rotation_preserves_multiset_and_time() {
        let p = profile(&[5, 1, 7, 2, 2]);
        for k in 0..10 {
            let r = p.rotated_by_boxes(k);
            assert_eq!(r.total_time(), p.total_time());
            let mut a = r.boxes().to_vec();
            let mut b = p.boxes().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn box_at_time_boundaries() {
        let p = profile(&[2, 3, 1]);
        assert_eq!(p.box_at_time(0), Some(0));
        assert_eq!(p.box_at_time(1), Some(0));
        assert_eq!(p.box_at_time(2), Some(1));
        assert_eq!(p.box_at_time(4), Some(1));
        assert_eq!(p.box_at_time(5), Some(2));
        assert_eq!(p.box_at_time(6), None);
    }

    #[test]
    fn rotation_by_time() {
        let p = profile(&[2, 3, 1]);
        assert_eq!(p.rotated_by_time(0).boxes(), &[2, 3, 1]);
        assert_eq!(p.rotated_by_time(2).boxes(), &[3, 1, 2]);
        assert_eq!(p.rotated_by_time(5).boxes(), &[1, 2, 3]);
        // wraps modulo total time
        assert_eq!(p.rotated_by_time(6).boxes(), &[2, 3, 1]);
    }

    #[test]
    fn cycle_source_repeats() {
        let p = profile(&[1, 2]);
        let mut s = p.cycle();
        let drawn: Vec<_> = (0..5).map(|_| s.next_box()).collect();
        assert_eq!(drawn, vec![1, 2, 1, 2, 1]);
    }

    #[test]
    fn extended_source_fills() {
        let p = profile(&[3, 4]);
        let mut s = p.extended(9);
        let drawn: Vec<_> = (0..4).map(|_| s.next_box()).collect();
        assert_eq!(drawn, vec![3, 4, 9, 9]);
    }

    #[test]
    fn recording_source_captures_prefix() {
        let mut rec = RecordingSource::new(ConstantSource::new(7));
        for _ in 0..3 {
            let _ = rec.next_box();
        }
        assert_eq!(rec.record(), &[7, 7, 7]);
        assert_eq!(rec.into_profile().boxes(), &[7, 7, 7]);
    }

    #[test]
    fn take_from_collects() {
        let mut c = ConstantSource::new(5);
        let p = SquareProfile::take_from(&mut c, 3);
        assert_eq!(p.boxes(), &[5, 5, 5]);
    }

    #[test]
    fn mut_ref_is_source() {
        fn draw<S: BoxSource>(s: S) -> Blocks {
            let mut s = s;
            s.next_box()
        }
        let mut c = ConstantSource::new(2);
        assert_eq!(draw(&mut c), 2);
        assert_eq!(draw(&mut c), 2);
    }

    #[test]
    fn concat_and_push() {
        let mut p = profile(&[1]);
        p.push(2);
        p.concat(&profile(&[3, 4]));
        assert_eq!(p.boxes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn constant_source_run_is_infinite() {
        let mut c = ConstantSource::new(6);
        let run = c.next_run();
        assert_eq!(
            run,
            BoxRun {
                size: 6,
                repeat: u64::MAX
            }
        );
        // Mixing per-box and run calls is fine.
        assert_eq!(c.next_box(), 6);
    }

    #[test]
    fn cycle_source_runs_match_boxes() {
        let p = profile(&[2, 2, 2, 5, 1, 1]);
        let mut by_run = p.cycle();
        let mut by_box = p.cycle();
        let mut expanded = Vec::new();
        while expanded.len() < 12 {
            let run = by_run.next_run();
            assert!(run.repeat >= 1);
            for _ in 0..run.repeat {
                expanded.push(run.size);
            }
        }
        let direct: Vec<_> = (0..expanded.len()).map(|_| by_box.next_box()).collect();
        assert_eq!(expanded, direct);
    }

    #[test]
    fn extended_source_runs_match_boxes_and_tail_is_infinite() {
        let p = profile(&[3, 3, 4]);
        let mut s = p.extended(9);
        assert_eq!(s.next_run(), BoxRun { size: 3, repeat: 2 });
        assert_eq!(s.next_run(), BoxRun { size: 4, repeat: 1 });
        assert_eq!(
            s.next_run(),
            BoxRun {
                size: 9,
                repeat: u64::MAX
            }
        );
    }

    #[test]
    fn default_next_run_is_single_box() {
        let mut rec = RecordingSource::new(ConstantSource::new(7));
        let run = rec.next_run();
        assert_eq!(run, BoxRun { size: 7, repeat: 1 });
        assert_eq!(rec.record(), &[7]);
    }

    #[test]
    fn serde_round_trip() {
        let p = profile(&[1, 2, 3]);
        let json = serde_json::to_string(&p).unwrap();
        let back: SquareProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
