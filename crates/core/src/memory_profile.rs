//! Arbitrary memory profiles m(t) and their square-profile approximation.
//!
//! The CA model lets the cache change size at every I/O: m(t) is the size of
//! the cache, in blocks, after the t-th I/O. The model's well-formedness rule
//! is that the cache grows by at most one block per I/O but may shrink
//! arbitrarily. Analysis, however, happens on *square profiles*
//! (Definition 1); [`MemoryProfile::inner_squares`] performs the greedy
//! largest-inscribed-square decomposition that prior work shows loses only
//! constant factors.
//!
//! Profiles are run-length encoded: realistic profiles (and all our
//! generators) hold a size for long stretches, so RLE keeps even very long
//! profiles small.

use crate::profile::SquareProfile;
use crate::{Blocks, CoreError, Io};
use serde::{Deserialize, Serialize};

/// A run of the profile: the cache has size `size` for `len` I/Os.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Cache size in blocks during this run.
    pub size: Blocks,
    /// Duration of the run in I/Os.
    pub len: Io,
}

/// A finite memory profile m(t), run-length encoded.
///
/// ```
/// use cadapt_core::MemoryProfile;
///
/// // Cache ramps 1, 2, 3, 4 blocks, one I/O each:
/// let profile = MemoryProfile::from_steps(&[1, 2, 3, 4])?;
/// // The greedy inner-square decomposition tiles it exactly:
/// let squares = profile.inner_squares();
/// assert_eq!(squares.boxes(), &[1, 2, 1]);
/// assert_eq!(squares.total_time(), profile.total_time());
/// # Ok::<(), cadapt_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryProfile {
    segments: Vec<Segment>,
    total: Io,
}

impl MemoryProfile {
    /// Build from explicit run-length segments.
    ///
    /// Zero-length segments are dropped; adjacent equal-size runs are merged.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyBox`] (reusing the zero-size error) if any
    /// non-empty segment has size zero: the CA model requires at least one
    /// block of cache at all times.
    pub fn from_segments(segments: Vec<Segment>) -> Result<Self, CoreError> {
        let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
        let mut total: Io = 0;
        for (i, seg) in segments.into_iter().enumerate() {
            if seg.len == 0 {
                continue;
            }
            if seg.size == 0 {
                return Err(CoreError::EmptyBox { at: i });
            }
            total += seg.len;
            match out.last_mut() {
                Some(last) if last.size == seg.size => last.len += seg.len,
                _ => out.push(seg),
            }
        }
        Ok(MemoryProfile {
            segments: out,
            total,
        })
    }

    /// Build from one size per I/O step.
    ///
    /// # Errors
    ///
    /// Returns an error if any step has size zero.
    pub fn from_steps(steps: &[Blocks]) -> Result<Self, CoreError> {
        let segments = steps.iter().map(|&size| Segment { size, len: 1 }).collect();
        MemoryProfile::from_segments(segments)
    }

    /// View a square profile as a memory profile (each box of size x is a
    /// run of height x lasting x I/Os).
    #[must_use]
    pub fn from_square_profile(profile: &SquareProfile) -> Self {
        let segments = profile
            .boxes()
            .iter()
            .map(|&b| Segment {
                size: b,
                len: Io::from(b),
            })
            .collect::<Vec<_>>();
        // cadapt-lint: allow(panic-reach) -- invariant: SquareProfile construction already rejected zero-size boxes
        MemoryProfile::from_segments(segments).expect("square profiles have positive boxes")
    }

    /// The run-length segments.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total profile duration in I/Os.
    #[must_use]
    pub fn total_time(&self) -> Io {
        self.total
    }

    /// The cache size at I/O timestamp `t`, or `None` past the end.
    #[must_use]
    pub fn value_at(&self, t: Io) -> Option<Blocks> {
        let mut acc: Io = 0;
        for seg in &self.segments {
            acc += seg.len;
            if t < acc {
                return Some(seg.size);
            }
        }
        None
    }

    /// Check the CA-model growth rule: the cache may grow by at most one
    /// block per I/O (shrinking is unrestricted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ProfileGrowthViolation`] at the first segment
    /// boundary where the size jumps up by more than one.
    pub fn validate_growth(&self) -> Result<(), CoreError> {
        for (i, w) in self.segments.windows(2).enumerate() {
            if w[1].size > w[0].size + 1 {
                return Err(CoreError::ProfileGrowthViolation {
                    at: i + 1,
                    from: w[0].size,
                    to: w[1].size,
                });
            }
        }
        Ok(())
    }

    /// Greedy inner-square decomposition: repeatedly carve off the largest
    /// box that fits under the curve starting at the current time.
    ///
    /// A box of size s fits at time t iff m(u) ≥ s for all u ∈ [t, t + s).
    /// Feasibility is monotone in s (the running minimum only decreases), so
    /// the greedy scan below finds the maximum. Near the end of the profile
    /// the square is additionally capped by the remaining duration, so the
    /// decomposition always covers the profile exactly: Σ |□_i| equals the
    /// profile's total time.
    #[must_use]
    pub fn inner_squares(&self) -> SquareProfile {
        // Flatten lazily over (size, len) runs with an index cursor.
        let mut boxes: Vec<Blocks> = Vec::new();
        let mut seg_idx = 0usize; // current segment
        let mut seg_off: Io = 0; // I/Os consumed within current segment

        while seg_idx < self.segments.len() {
            // Greedy scan for the largest square starting here.
            let mut s: Io = 0; // current feasible square size
            let mut mn: Blocks = Blocks::MAX; // running min of m over [t, t+s)
            let mut i = seg_idx;
            let mut off = seg_off;
            'grow: while i < self.segments.len() {
                let seg = self.segments[i];
                mn = mn.min(seg.size);
                // Within this run the min is fixed at `mn`; the square can
                // grow while s + 1 ≤ mn and s stays inside the run.
                let run_left = seg.len - off;
                let grow_cap = Io::from(mn).saturating_sub(s);
                let grow = run_left.min(grow_cap);
                s += grow;
                if grow < run_left {
                    // Hit the height limit mn before the run ended.
                    break 'grow;
                }
                i += 1;
                off = 0;
            }
            // The remaining duration may be shorter than the height allows:
            // s is capped by total remaining time automatically (loop ends).
            let size = crate::cast::u64_from_u128(s);
            debug_assert!(size >= 1, "every step has size >= 1");
            boxes.push(size);
            // Advance the cursor by s I/Os.
            let mut advance = s;
            while advance > 0 {
                let left = self.segments[seg_idx].len - seg_off;
                if advance >= left {
                    advance -= left;
                    seg_idx += 1;
                    seg_off = 0;
                } else {
                    seg_off += advance;
                    advance = 0;
                }
            }
        }
        SquareProfile::from_boxes_unchecked(boxes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp(steps: &[Blocks]) -> MemoryProfile {
        MemoryProfile::from_steps(steps).unwrap()
    }

    #[test]
    fn rle_merges_runs() {
        let p = mp(&[3, 3, 3, 2, 2, 5]);
        assert_eq!(
            p.segments(),
            &[
                Segment { size: 3, len: 3 },
                Segment { size: 2, len: 2 },
                Segment { size: 5, len: 1 },
            ]
        );
        assert_eq!(p.total_time(), 6);
    }

    #[test]
    fn rejects_zero_size() {
        assert!(MemoryProfile::from_steps(&[1, 0, 2]).is_err());
    }

    #[test]
    fn drops_empty_segments() {
        let p = MemoryProfile::from_segments(vec![
            Segment { size: 2, len: 0 },
            Segment { size: 3, len: 2 },
        ])
        .unwrap();
        assert_eq!(p.segments(), &[Segment { size: 3, len: 2 }]);
    }

    #[test]
    fn value_at_works() {
        let p = mp(&[3, 3, 7]);
        assert_eq!(p.value_at(0), Some(3));
        assert_eq!(p.value_at(1), Some(3));
        assert_eq!(p.value_at(2), Some(7));
        assert_eq!(p.value_at(3), None);
    }

    #[test]
    fn growth_rule() {
        // +1 per step is fine; shrinking is fine.
        let p = mp(&[1, 2, 3, 1, 2]);
        assert!(p.validate_growth().is_ok());
        // +2 jump is a violation.
        let p = mp(&[1, 3]);
        assert_eq!(
            p.validate_growth(),
            Err(CoreError::ProfileGrowthViolation {
                at: 1,
                from: 1,
                to: 3
            })
        );
    }

    #[test]
    fn inner_squares_constant_profile() {
        // Constant height 4 for 10 I/Os: squares 4, 4, then a 2 at the tail.
        let p = MemoryProfile::from_segments(vec![Segment { size: 4, len: 10 }]).unwrap();
        assert_eq!(p.inner_squares().boxes(), &[4, 4, 2]);
    }

    #[test]
    fn inner_squares_step_down() {
        // Height 5 for 3 I/Os then height 2 for 4 I/Os.
        // First square: min over window limits it — at s=3 the min drops to 2,
        // so the largest s with min >= s is 3 (min over [0,3) = 5 >= 3).
        let p = MemoryProfile::from_segments(vec![
            Segment { size: 5, len: 3 },
            Segment { size: 2, len: 4 },
        ])
        .unwrap();
        assert_eq!(p.inner_squares().boxes(), &[3, 2, 2]);
    }

    #[test]
    fn inner_squares_ramp_up() {
        // 1,2,3,4: first square is 1 (m(0)=1), then from t=1: sizes 2,3,4 ->
        // largest s with min >= s is 2 ([2,3] min 2 >= 2); then from t=3: [4]
        // but only 1 I/O left -> square 1.
        let p = mp(&[1, 2, 3, 4]);
        assert_eq!(p.inner_squares().boxes(), &[1, 2, 1]);
    }

    #[test]
    fn inner_squares_cover_profile_exactly() {
        let p = mp(&[6, 1, 4, 4, 4, 4, 2, 9, 9, 1, 1, 1, 5]);
        let sq = p.inner_squares();
        assert_eq!(sq.total_time(), p.total_time());
        // Every square must fit under the curve at its position.
        let mut t: Io = 0;
        for &b in sq.boxes() {
            for u in t..t + Io::from(b) {
                assert!(p.value_at(u).unwrap() >= b, "square {b} at t={t} pokes out");
            }
            t += Io::from(b);
        }
    }

    #[test]
    fn square_profile_round_trip() {
        let sq = SquareProfile::new(vec![2, 5, 1, 3]).unwrap();
        let p = MemoryProfile::from_square_profile(&sq);
        assert_eq!(p.total_time(), sq.total_time());
        // The inner-square decomposition of a square profile is itself.
        assert_eq!(p.inner_squares(), sq);
    }

    #[test]
    fn inner_squares_of_adjacent_equal_boxes() {
        // Two boxes of size 3 RLE-merge into a run of height 3, length 6:
        // the decomposition recovers 3, 3.
        let sq = SquareProfile::new(vec![3, 3]).unwrap();
        let p = MemoryProfile::from_square_profile(&sq);
        assert_eq!(p.inner_squares().boxes(), &[3, 3]);
    }
}
