//! The outcome of running an algorithm on a profile: the adaptivity report.
//!
//! The central scalar is the **adaptivity ratio**
//!
//! ```text
//!     R(n) = Σ_i min(n, |□_i|)^{log_b a}  /  n^{log_b a},
//! ```
//!
//! the left-hand side of Eq. 2 divided by its right-hand side. An execution
//! is efficiently cache-adaptive iff R(n) = O(1) over all n; the worst-case
//! gap of Theorem 2 appears as R(n) = Θ(log_b n). A single run cannot decide
//! asymptotics — `cadapt-analysis::fit` classifies growth across an n-sweep —
//! but [`AdaptivityReport::verdict`] gives the per-run threshold check that
//! the experiment harness aggregates.

use crate::{Blocks, Io, Leaves};
use serde::{Deserialize, Serialize};

/// Aggregated outcome of one execution on one square profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptivityReport {
    /// Branching factor a of the algorithm.
    pub a: u64,
    /// Shrink factor b of the algorithm.
    pub b: u64,
    /// The potential exponent log_b a.
    pub exponent: f64,
    /// Problem size in blocks.
    pub n: Blocks,
    /// Number of boxes consumed to complete the problem.
    pub boxes_used: u64,
    /// Σ min(n, |□_i|)^{log_b a} over consumed boxes (Eq. 2 LHS).
    pub bounded_potential_sum: f64,
    /// Σ ρ(|□_i|) over consumed boxes (Eq. 1 LHS).
    pub raw_potential_sum: f64,
    /// n^{log_b a}: the total progress the problem requires (Eq. 2 RHS).
    pub required_progress: f64,
    /// Total progress actually recorded across boxes. Box progress counts
    /// base cases *at least partly* inside the box, so consecutive boxes may
    /// double-count a boundary leaf; this is ≥ the number of leaves.
    pub total_progress: Leaves,
    /// Total I/Os the algorithm performed.
    pub total_io: Io,
    /// Largest box consumed (0 if none).
    pub max_box: Blocks,
    /// Smallest box consumed (0 if none).
    pub min_box: Blocks,
}

impl AdaptivityReport {
    /// The adaptivity ratio R(n) (Eq. 2 LHS / RHS). 0 for an empty run.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        // cadapt-lint: allow(float-eq) -- sentinel: required_progress is exactly 0.0 only for an empty run (ρ(0)); division guard
        if self.required_progress == 0.0 {
            return 0.0;
        }
        self.bounded_potential_sum / self.required_progress
    }

    /// The ratio using *unbounded* potential (Eq. 1). Equal to
    /// [`AdaptivityReport::ratio`] when every box is ≤ n.
    #[must_use]
    pub fn raw_ratio(&self) -> f64 {
        // cadapt-lint: allow(float-eq) -- sentinel: required_progress is exactly 0.0 only for an empty run (ρ(0)); division guard
        if self.required_progress == 0.0 {
            return 0.0;
        }
        self.raw_potential_sum / self.required_progress
    }

    /// Threshold verdict: is this single execution within a factor
    /// `threshold` of the progress bound?
    #[must_use]
    pub fn verdict(&self, threshold: f64) -> Verdict {
        let r = self.ratio();
        if r <= threshold {
            Verdict::Efficient
        } else {
            Verdict::Gap {
                factor: r / threshold,
            }
        }
    }

    /// log_b n — the natural x-axis for gap plots (the worst-case ratio
    /// grows linearly in this quantity).
    #[must_use]
    pub fn log_b_n(&self) -> f64 {
        (self.n as f64).ln() / (self.b as f64).ln()
    }
}

/// Per-run threshold check; see [`AdaptivityReport::verdict`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The ratio was within the threshold.
    Efficient,
    /// The ratio exceeded the threshold by `factor`.
    Gap {
        /// How far above the threshold the ratio landed.
        factor: f64,
    },
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    fn report(bounded: f64, required: f64) -> AdaptivityReport {
        AdaptivityReport {
            a: 8,
            b: 4,
            exponent: 1.5,
            n: 256,
            boxes_used: 10,
            bounded_potential_sum: bounded,
            raw_potential_sum: bounded,
            required_progress: required,
            total_progress: 0,
            total_io: 0,
            max_box: 256,
            min_box: 1,
        }
    }

    #[test]
    fn ratio_is_lhs_over_rhs() {
        let r = report(4096.0, 4096.0);
        assert_eq!(r.ratio(), 1.0);
        let r = report(8192.0, 4096.0);
        assert_eq!(r.ratio(), 2.0);
    }

    #[test]
    fn verdicts() {
        assert_eq!(report(4096.0, 4096.0).verdict(2.0), Verdict::Efficient);
        match report(16384.0, 4096.0).verdict(2.0) {
            Verdict::Gap { factor } => assert!((factor - 2.0).abs() < 1e-12),
            Verdict::Efficient => panic!("expected a gap"),
        }
    }

    #[test]
    fn log_axis() {
        let r = report(1.0, 1.0);
        assert!((r.log_b_n() - 4.0).abs() < 1e-12); // log_4 256 = 4
    }

    #[test]
    fn empty_run_has_zero_ratio() {
        let mut r = report(0.0, 0.0);
        r.required_progress = 0.0;
        assert_eq!(r.ratio(), 0.0);
        assert_eq!(r.raw_ratio(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = report(2.0, 1.0);
        let s = serde_json::to_string(&r).unwrap();
        let back: AdaptivityReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }
}
