//! Per-box progress accounting.
//!
//! An execution driver (the recursion cursor in `cadapt-recursion`, or the
//! trace replayer in `cadapt-paging`) feeds one [`BoxRecord`] per consumed
//! box into a [`ProgressLedger`]. The ledger accumulates the quantities the
//! optimality condition needs — in particular the n-bounded potential sum of
//! Eq. 2 — and finishes into an [`AdaptivityReport`].
//!
//! Worst-case runs consume millions of boxes, so by default the ledger only
//! keeps aggregates; construct it with [`ProgressLedger::retaining`] to also
//! keep the full per-box history for auditing or plotting.

use crate::potential::Potential;
use crate::report::AdaptivityReport;
use crate::{Blocks, Io, Leaves};
use serde::{Deserialize, Serialize};

/// What one box achieved: its size, the progress (base cases at least partly
/// completed) inside it, and the I/Os actually used (≤ size; the final box
/// of a run is typically only partly used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxRecord {
    /// Size of the box in blocks (= its duration in I/Os).
    pub size: Blocks,
    /// Base-case subproblems completed (at least partly) within the box.
    pub progress: Leaves,
    /// I/Os of the box actually consumed by the algorithm.
    pub used: Io,
}

/// Accumulator of per-box records for one execution on one profile.
#[derive(Debug, Clone)]
pub struct ProgressLedger {
    rho: Potential,
    n: Blocks,
    boxes_used: u64,
    bounded_potential_sum: f64,
    raw_potential_sum: f64,
    total_progress: Leaves,
    total_io: Io,
    max_box: Blocks,
    min_box: Blocks,
    history: Option<Vec<BoxRecord>>,
}

impl ProgressLedger {
    /// Ledger for a problem of size `n` blocks under potential `rho`,
    /// keeping aggregates only.
    #[must_use]
    pub fn new(rho: Potential, n: Blocks) -> Self {
        ProgressLedger {
            rho,
            n,
            boxes_used: 0,
            bounded_potential_sum: 0.0,
            raw_potential_sum: 0.0,
            total_progress: 0,
            total_io: 0,
            max_box: 0,
            min_box: Blocks::MAX,
            history: None,
        }
    }

    /// Like [`ProgressLedger::new`], but also retains every [`BoxRecord`].
    #[must_use]
    pub fn retaining(rho: Potential, n: Blocks) -> Self {
        let mut ledger = ProgressLedger::new(rho, n);
        ledger.history = Some(Vec::new());
        ledger
    }

    /// Record one consumed box.
    pub fn record(&mut self, record: BoxRecord) {
        self.boxes_used += 1;
        self.bounded_potential_sum += self.rho.bounded(self.n, record.size);
        self.raw_potential_sum += self.rho.eval(record.size);
        self.total_progress += record.progress;
        self.total_io += record.used;
        self.max_box = self.max_box.max(record.size);
        self.min_box = self.min_box.min(record.size);
        if let Some(h) = &mut self.history {
            h.push(record);
        }
    }

    /// Record a *run* of `count` boxes of identical `size`, with the given
    /// progress and I/O totals across the whole run.
    ///
    /// Produces bit-identical aggregates to `count` calls of
    /// [`ProgressLedger::record`] with the per-box records: the integer
    /// totals are additive, and the two potential sums repeat the same
    /// per-box `+= ρ` additions (evaluating ρ once, since the size is
    /// constant) so the f64 rounding sequence is reproduced exactly. Once
    /// both sums stop changing — the increment has fallen below the sums'
    /// ulp — the remaining additions are provably no-ops and are skipped.
    ///
    /// Not supported on history-retaining ledgers (callers expand runs to
    /// per-box records when history is requested).
    ///
    /// # Panics
    ///
    /// Panics if the ledger retains history.
    pub fn record_run(&mut self, size: Blocks, progress: Leaves, used: Io, count: u64) {
        assert!(
            self.history.is_none(),
            "record_run on a history-retaining ledger; expand runs per box instead"
        );
        if count == 0 {
            return;
        }
        self.boxes_used += count;
        let bounded = self.rho.bounded(self.n, size);
        let raw = self.rho.eval(size);
        for _ in 0..count {
            let next_bounded = self.bounded_potential_sum + bounded;
            let next_raw = self.raw_potential_sum + raw;
            // Bit-identity on purpose: saturation is detected by the sums no
            // longer changing at all, which is exactly float equality.
            #[allow(clippy::float_cmp)]
            if next_bounded == self.bounded_potential_sum && next_raw == self.raw_potential_sum {
                break;
            }
            self.bounded_potential_sum = next_bounded;
            self.raw_potential_sum = next_raw;
        }
        self.total_progress += progress;
        self.total_io += used;
        self.max_box = self.max_box.max(size);
        self.min_box = self.min_box.min(size);
    }

    /// Number of boxes recorded so far.
    #[must_use]
    pub fn boxes_used(&self) -> u64 {
        self.boxes_used
    }

    /// Running Σ min(n, |□_i|)^{log_b a}.
    #[must_use]
    pub fn bounded_potential_sum(&self) -> f64 {
        self.bounded_potential_sum
    }

    /// Running Σ ρ(|□_i|) (unbounded potential; Eq. 1 form).
    #[must_use]
    pub fn raw_potential_sum(&self) -> f64 {
        self.raw_potential_sum
    }

    /// Total progress (base cases) across all boxes so far.
    #[must_use]
    pub fn total_progress(&self) -> Leaves {
        self.total_progress
    }

    /// The retained per-box history, if this ledger keeps one.
    #[must_use]
    pub fn history(&self) -> Option<&[BoxRecord]> {
        self.history.as_deref()
    }

    /// Finish the run and produce the report.
    #[must_use]
    pub fn finish(self) -> AdaptivityReport {
        AdaptivityReport {
            a: self.rho.a(),
            b: self.rho.b(),
            exponent: self.rho.exponent(),
            n: self.n,
            boxes_used: self.boxes_used,
            bounded_potential_sum: self.bounded_potential_sum,
            raw_potential_sum: self.raw_potential_sum,
            required_progress: self.rho.required_progress(self.n),
            total_progress: self.total_progress,
            total_io: self.total_io,
            max_box: if self.boxes_used == 0 {
                0
            } else {
                self.max_box
            },
            min_box: if self.boxes_used == 0 {
                0
            } else {
                self.min_box
            },
        }
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_accumulate() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::new(rho, 16);
        ledger.record(BoxRecord {
            size: 4,
            progress: 8,
            used: 4,
        });
        ledger.record(BoxRecord {
            size: 64,
            progress: 64,
            used: 30,
        });
        assert_eq!(ledger.boxes_used(), 2);
        // min(16,4)^1.5 + min(16,64)^1.5 = 8 + 64
        assert_eq!(ledger.bounded_potential_sum(), 72.0);
        // 8 + 512
        assert_eq!(ledger.raw_potential_sum(), 520.0);
        assert_eq!(ledger.total_progress(), 72);

        let report = ledger.finish();
        assert_eq!(report.boxes_used, 2);
        assert_eq!(report.max_box, 64);
        assert_eq!(report.min_box, 4);
        assert_eq!(report.total_io, 34);
        assert_eq!(report.required_progress, 64.0);
        assert!((report.ratio() - 72.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn default_ledger_keeps_no_history() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::new(rho, 16);
        ledger.record(BoxRecord {
            size: 4,
            progress: 1,
            used: 4,
        });
        assert!(ledger.history().is_none());
    }

    #[test]
    fn retaining_ledger_keeps_history() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::retaining(rho, 16);
        let r1 = BoxRecord {
            size: 4,
            progress: 1,
            used: 4,
        };
        let r2 = BoxRecord {
            size: 2,
            progress: 0,
            used: 2,
        };
        ledger.record(r1);
        ledger.record(r2);
        assert_eq!(ledger.history().unwrap(), &[r1, r2]);
    }

    #[test]
    fn record_run_matches_per_box_records_bitwise() {
        let rho = Potential::new(8, 4);
        for count in [1u64, 2, 7, 1000] {
            let mut per_box = ProgressLedger::new(rho, 256);
            let mut batched = ProgressLedger::new(rho, 256);
            // A prior box so the sums start from a non-trivial value.
            let warm = BoxRecord {
                size: 100,
                progress: 3,
                used: 90,
            };
            per_box.record(warm);
            batched.record(warm);
            let record = BoxRecord {
                size: 17,
                progress: 2,
                used: 17,
            };
            for _ in 0..count {
                per_box.record(record);
            }
            batched.record_run(
                record.size,
                record.progress * Leaves::from(count),
                record.used * Io::from(count),
                count,
            );
            assert_eq!(per_box.boxes_used(), batched.boxes_used());
            assert_eq!(
                per_box.bounded_potential_sum().to_bits(),
                batched.bounded_potential_sum().to_bits(),
                "count {count}"
            );
            assert_eq!(
                per_box.raw_potential_sum().to_bits(),
                batched.raw_potential_sum().to_bits()
            );
            assert_eq!(per_box.total_progress(), batched.total_progress());
            let a = per_box.finish();
            let b = batched.finish();
            assert_eq!(a.total_io, b.total_io);
            assert_eq!(a.max_box, b.max_box);
            assert_eq!(a.min_box, b.min_box);
        }
    }

    #[test]
    fn record_run_zero_count_is_noop() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::new(rho, 16);
        ledger.record_run(4, 0, 0, 0);
        assert_eq!(ledger.boxes_used(), 0);
        assert_eq!(ledger.finish().min_box, 0);
    }

    #[test]
    #[should_panic(expected = "history-retaining")]
    fn record_run_rejects_history_ledger() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::retaining(rho, 16);
        ledger.record_run(4, 1, 4, 1);
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let rho = Potential::new(8, 4);
        let report = ProgressLedger::new(rho, 16).finish();
        assert_eq!(report.boxes_used, 0);
        assert_eq!(report.max_box, 0);
        assert_eq!(report.min_box, 0);
        assert_eq!(report.bounded_potential_sum, 0.0);
    }
}
