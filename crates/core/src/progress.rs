//! Per-box progress accounting.
//!
//! An execution driver (the recursion cursor in `cadapt-recursion`, or the
//! trace replayer in `cadapt-paging`) feeds one [`BoxRecord`] per consumed
//! box into a [`ProgressLedger`]. The ledger accumulates the quantities the
//! optimality condition needs — in particular the n-bounded potential sum of
//! Eq. 2 — and finishes into an [`AdaptivityReport`].
//!
//! Worst-case runs consume millions of boxes, so by default the ledger only
//! keeps aggregates; construct it with [`ProgressLedger::retaining`] to also
//! keep the full per-box history for auditing or plotting.

use crate::potential::Potential;
use crate::report::AdaptivityReport;
use crate::{Blocks, Io, Leaves};
use serde::{Deserialize, Serialize};

/// What one box achieved: its size, the progress (base cases at least partly
/// completed) inside it, and the I/Os actually used (≤ size; the final box
/// of a run is typically only partly used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoxRecord {
    /// Size of the box in blocks (= its duration in I/Os).
    pub size: Blocks,
    /// Base-case subproblems completed (at least partly) within the box.
    pub progress: Leaves,
    /// I/Os of the box actually consumed by the algorithm.
    pub used: Io,
}

/// Accumulator of per-box records for one execution on one profile.
#[derive(Debug, Clone)]
pub struct ProgressLedger {
    rho: Potential,
    n: Blocks,
    boxes_used: u64,
    bounded_potential_sum: f64,
    raw_potential_sum: f64,
    total_progress: Leaves,
    total_io: Io,
    max_box: Blocks,
    min_box: Blocks,
    history: Option<Vec<BoxRecord>>,
}

impl ProgressLedger {
    /// Ledger for a problem of size `n` blocks under potential `rho`,
    /// keeping aggregates only.
    #[must_use]
    pub fn new(rho: Potential, n: Blocks) -> Self {
        ProgressLedger {
            rho,
            n,
            boxes_used: 0,
            bounded_potential_sum: 0.0,
            raw_potential_sum: 0.0,
            total_progress: 0,
            total_io: 0,
            max_box: 0,
            min_box: Blocks::MAX,
            history: None,
        }
    }

    /// Like [`ProgressLedger::new`], but also retains every [`BoxRecord`].
    #[must_use]
    pub fn retaining(rho: Potential, n: Blocks) -> Self {
        let mut ledger = ProgressLedger::new(rho, n);
        ledger.history = Some(Vec::new());
        ledger
    }

    /// Record one consumed box.
    pub fn record(&mut self, record: BoxRecord) {
        self.boxes_used += 1;
        self.bounded_potential_sum += self.rho.bounded(self.n, record.size);
        self.raw_potential_sum += self.rho.eval(record.size);
        self.total_progress += record.progress;
        self.total_io += record.used;
        self.max_box = self.max_box.max(record.size);
        self.min_box = self.min_box.min(record.size);
        if let Some(h) = &mut self.history {
            h.push(record);
        }
    }

    /// Number of boxes recorded so far.
    #[must_use]
    pub fn boxes_used(&self) -> u64 {
        self.boxes_used
    }

    /// Running Σ min(n, |□_i|)^{log_b a}.
    #[must_use]
    pub fn bounded_potential_sum(&self) -> f64 {
        self.bounded_potential_sum
    }

    /// Running Σ ρ(|□_i|) (unbounded potential; Eq. 1 form).
    #[must_use]
    pub fn raw_potential_sum(&self) -> f64 {
        self.raw_potential_sum
    }

    /// Total progress (base cases) across all boxes so far.
    #[must_use]
    pub fn total_progress(&self) -> Leaves {
        self.total_progress
    }

    /// The retained per-box history, if this ledger keeps one.
    #[must_use]
    pub fn history(&self) -> Option<&[BoxRecord]> {
        self.history.as_deref()
    }

    /// Finish the run and produce the report.
    #[must_use]
    pub fn finish(self) -> AdaptivityReport {
        AdaptivityReport {
            a: self.rho.a(),
            b: self.rho.b(),
            exponent: self.rho.exponent(),
            n: self.n,
            boxes_used: self.boxes_used,
            bounded_potential_sum: self.bounded_potential_sum,
            raw_potential_sum: self.raw_potential_sum,
            required_progress: self.rho.required_progress(self.n),
            total_progress: self.total_progress,
            total_io: self.total_io,
            max_box: if self.boxes_used == 0 {
                0
            } else {
                self.max_box
            },
            min_box: if self.boxes_used == 0 {
                0
            } else {
                self.min_box
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_accumulate() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::new(rho, 16);
        ledger.record(BoxRecord {
            size: 4,
            progress: 8,
            used: 4,
        });
        ledger.record(BoxRecord {
            size: 64,
            progress: 64,
            used: 30,
        });
        assert_eq!(ledger.boxes_used(), 2);
        // min(16,4)^1.5 + min(16,64)^1.5 = 8 + 64
        assert_eq!(ledger.bounded_potential_sum(), 72.0);
        // 8 + 512
        assert_eq!(ledger.raw_potential_sum(), 520.0);
        assert_eq!(ledger.total_progress(), 72);

        let report = ledger.finish();
        assert_eq!(report.boxes_used, 2);
        assert_eq!(report.max_box, 64);
        assert_eq!(report.min_box, 4);
        assert_eq!(report.total_io, 34);
        assert_eq!(report.required_progress, 64.0);
        assert!((report.ratio() - 72.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn default_ledger_keeps_no_history() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::new(rho, 16);
        ledger.record(BoxRecord {
            size: 4,
            progress: 1,
            used: 4,
        });
        assert!(ledger.history().is_none());
    }

    #[test]
    fn retaining_ledger_keeps_history() {
        let rho = Potential::new(8, 4);
        let mut ledger = ProgressLedger::retaining(rho, 16);
        let r1 = BoxRecord {
            size: 4,
            progress: 1,
            used: 4,
        };
        let r2 = BoxRecord {
            size: 2,
            progress: 0,
            used: 2,
        };
        ledger.record(r1);
        ledger.record(r2);
        assert_eq!(ledger.history().unwrap(), &[r1, r2]);
    }

    #[test]
    fn empty_run_reports_zeroes() {
        let rho = Potential::new(8, 4);
        let report = ProgressLedger::new(rho, 16).finish();
        assert_eq!(report.boxes_used, 0);
        assert_eq!(report.max_box, 0);
        assert_eq!(report.min_box, 0);
        assert_eq!(report.bounded_potential_sum, 0.0);
    }
}
