//! Checked integer conversions for accounting code.
//!
//! The accounting crates (`cadapt-core`, `cadapt-recursion`,
//! `cadapt-paging`) are forbidden from using bare `as` casts to integer
//! types (the `lossy-cast` rule of `cadapt-lint`): `as` wraps on overflow
//! and truncates float→int silently, and exact I/O / progress totals are
//! the property the paper's theorems and our golden records stand on.
//!
//! These helpers centralise the conversions instead. Each one panics
//! loudly when the value does not fit — in accounting code an overflowing
//! conversion means the totals are already wrong, so aborting beats
//! wrapping — and on 64-bit targets every integer helper compiles to a
//! no-op or a trivially-predictable compare, so the hot cursor paths pay
//! nothing.
//!
//! For lossless widenings prefer plain `T::from(x)` / `Io::from(x)`; use
//! the helpers where `From` does not exist (`u64 → usize`, `usize → u64`,
//! float → int).

/// `u64 → usize`, panicking if the platform's `usize` cannot hold `x`.
///
/// A no-op on 64-bit targets.
#[inline]
#[must_use]
pub fn usize_from_u64(x: u64) -> usize {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    usize::try_from(x).expect("u64 value exceeds usize on this platform")
}

/// `u128 → usize`, panicking if the value does not fit.
#[inline]
#[must_use]
pub fn usize_from_u128(x: u128) -> usize {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    usize::try_from(x).expect("u128 value exceeds usize on this platform")
}

/// `u32 → usize`, panicking on (hypothetical 16-bit) platforms where it
/// cannot fit. A no-op on 32- and 64-bit targets.
#[inline]
#[must_use]
pub fn usize_from_u32(x: u32) -> usize {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    usize::try_from(x).expect("u32 value exceeds usize on this platform")
}

/// `usize → u64`, panicking on platforms where `usize` is wider than 64
/// bits (none today). A no-op on 64-bit targets.
#[inline]
#[must_use]
pub fn u64_from_usize(x: usize) -> u64 {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    u64::try_from(x).expect("usize value exceeds u64 on this platform")
}

/// `u128 → u64`, panicking if the value does not fit. Used where an `Io`
/// total is known (by construction) to fit a single box's budget.
#[inline]
#[must_use]
pub fn u64_from_u128(x: u128) -> u64 {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    u64::try_from(x).expect("u128 value exceeds u64")
}

/// `usize → u32`, panicking above `u32::MAX`. Used for recursion depths
/// and level counts, which are at most ~64.
#[inline]
#[must_use]
pub fn u32_from_usize(x: usize) -> u32 {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    u32::try_from(x).expect("usize value exceeds u32")
}

/// `u64 → u8`, panicking above `u8::MAX`. Used for byte emission in the
/// trace bytecode encoder, whose callers mask to 7 bits first — the
/// check compiles to a trivially-predictable compare.
#[inline]
#[must_use]
pub fn u8_from_u64(x: u64) -> u8 {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    u8::try_from(x).expect("u64 value exceeds u8")
}

/// `u32 → i32`, panicking above `i32::MAX`. Used for exact small-exponent
/// `powi` calls.
#[inline]
#[must_use]
pub fn i32_from_u32(x: u32) -> i32 {
    // cadapt-lint: allow(panic-reach) -- cast helpers centralise the deliberate overflow panics
    i32::try_from(x).expect("u32 exponent exceeds i32::MAX")
}

/// Checked `f64 → u64` for non-negative, integral-after-rounding values.
///
/// Panics when `x` is not finite, is negative, or exceeds `2^53` (the
/// largest range in which every integer is exactly representable, so the
/// conversion is provably exact).
#[inline]
#[must_use]
// The assert above the cast guarantees the value is integral-range safe;
// this is the one sanctioned float→int cast in the workspace.
#[allow(clippy::cast_possible_truncation)]
pub fn u64_from_f64(x: f64) -> u64 {
    const EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53
    assert!(
        x.is_finite() && (0.0..=EXACT_MAX).contains(&x),
        "f64 value {x} is not exactly convertible to u64"
    );
    // cadapt-lint: allow(lossy-cast) -- guarded above: finite, non-negative, ≤ 2^53
    x as u64
}

/// Checked `u128 → u64` for **untrusted** input (hostile record files,
/// corrupted checkpoints). Unlike the panicking helpers above — which
/// guard *internal* accounting where an overflow means the totals are
/// already wrong — these return `None` so parsers can reject bad data
/// with a typed error instead of aborting the process.
#[inline]
#[must_use]
pub fn checked_u64_from_u128(x: u128) -> Option<u64> {
    u64::try_from(x).ok()
}

/// Checked `u128 → u32` for untrusted input (schema versions, counts).
#[inline]
#[must_use]
pub fn checked_u32_from_u128(x: u128) -> Option<u32> {
    u32::try_from(x).ok()
}

/// Checked `u128 → usize` for untrusted input (lengths, indices read
/// from disk before they are used to size or index anything).
#[inline]
#[must_use]
pub fn checked_usize_from_u128(x: u128) -> Option<usize> {
    usize::try_from(x).ok()
}

/// Checked `u64 → usize` for untrusted input.
#[inline]
#[must_use]
pub fn checked_usize_from_u64(x: u64) -> Option<usize> {
    usize::try_from(x).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_round_trips() {
        assert_eq!(usize_from_u64(42), 42);
        assert_eq!(usize_from_u128(42), 42);
        assert_eq!(usize_from_u32(7), 7);
        assert_eq!(u64_from_usize(9), 9);
        assert_eq!(u64_from_u128(1 << 60), 1 << 60);
        assert_eq!(u8_from_u64(255), 255);
        assert_eq!(i32_from_u32(31), 31);
    }

    #[test]
    fn f64_exact_values_convert() {
        assert_eq!(u64_from_f64(0.0), 0);
        assert_eq!(u64_from_f64(4096.0), 4096);
        assert_eq!(u64_from_f64(9_007_199_254_740_992.0), 1 << 53);
    }

    #[test]
    #[should_panic(expected = "not exactly convertible")]
    fn f64_negative_panics() {
        let _ = u64_from_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "not exactly convertible")]
    fn f64_nan_panics() {
        let _ = u64_from_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "exceeds u64")]
    fn u128_overflow_panics() {
        let _ = u64_from_u128(u128::from(u64::MAX) + 1);
    }

    #[test]
    fn checked_variants_reject_instead_of_panicking() {
        assert_eq!(checked_u64_from_u128(42), Some(42));
        assert_eq!(checked_u64_from_u128(u128::from(u64::MAX) + 1), None);
        assert_eq!(checked_u32_from_u128(7), Some(7));
        assert_eq!(checked_u32_from_u128(u128::from(u32::MAX) + 1), None);
        assert_eq!(checked_usize_from_u128(9), Some(9));
        assert_eq!(checked_usize_from_u64(11), Some(11));
    }
}
