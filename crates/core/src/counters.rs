//! Lightweight execution counters for the observability layer.
//!
//! The experiment engine wants to know *what the simulators did* — boxes
//! advanced, cursor steps taken, I/Os charged, cache hits and evictions —
//! without slowing down the hot loops when nobody is listening. The design:
//!
//! * Counting sites call the free functions ([`count_boxes`],
//!   [`count_cursor_steps`], [`count_io`], [`count_cache_hit`],
//!   [`count_cache_evictions`]). Each is a single thread-local flag check
//!   when recording is off — no atomics, no allocation, nothing shared.
//! * A scope that wants numbers opens a [`Recording`]; counts accumulate in
//!   thread-local [`Cell`]s until [`Recording::finish`] returns the
//!   [`CounterSnapshot`] delta for that scope.
//! * Multi-threaded drivers (the Monte-Carlo engine) record per worker
//!   thread and merge the snapshots into a [`SharedCounters`] — the only
//!   place atomics appear, once per trial batch rather than per event.
//!
//! Counters are diagnostics, not semantics: they never feed back into the
//! simulation, so enabling them cannot change any result.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time reading of the execution counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Boxes advanced by the execution drivers (abstract or trace replay).
    pub boxes_advanced: u64,
    /// Execution-cursor micro-steps (frame pushes/pops and chunk
    /// completions).
    pub cursor_steps: u64,
    /// I/Os charged against boxes or fixed caches (saturating at u64::MAX).
    pub ios_charged: u64,
    /// Cache hits observed by the paging layer.
    pub cache_hits: u64,
    /// Blocks evicted by the paging layer.
    pub cache_evictions: u64,
}

impl CounterSnapshot {
    /// The all-zero snapshot.
    pub const ZERO: CounterSnapshot = CounterSnapshot {
        boxes_advanced: 0,
        cursor_steps: 0,
        ios_charged: 0,
        cache_hits: 0,
        cache_evictions: 0,
    };

    /// Component-wise saturating sum.
    #[must_use]
    pub fn plus(self, other: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            boxes_advanced: self.boxes_advanced.saturating_add(other.boxes_advanced),
            cursor_steps: self.cursor_steps.saturating_add(other.cursor_steps),
            ios_charged: self.ios_charged.saturating_add(other.ios_charged),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            cache_evictions: self.cache_evictions.saturating_add(other.cache_evictions),
        }
    }

    /// Component-wise saturating difference (`self` taken after `earlier`).
    #[must_use]
    pub fn minus(self, earlier: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            boxes_advanced: self.boxes_advanced.saturating_sub(earlier.boxes_advanced),
            cursor_steps: self.cursor_steps.saturating_sub(earlier.cursor_steps),
            ios_charged: self.ios_charged.saturating_sub(earlier.ios_charged),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
        }
    }

    /// Is every counter zero?
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == CounterSnapshot::ZERO
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNTS: Cell<CounterSnapshot> = const { Cell::new(CounterSnapshot::ZERO) };
}

#[inline]
fn bump(f: impl FnOnce(&mut CounterSnapshot)) {
    if ENABLED.with(Cell::get) {
        COUNTS.with(|c| {
            let mut snapshot = c.get();
            f(&mut snapshot);
            c.set(snapshot);
        });
    }
}

/// Record `n` boxes advanced (no-op unless a [`Recording`] is open on this
/// thread).
#[inline]
pub fn count_boxes(n: u64) {
    bump(|c| c.boxes_advanced = c.boxes_advanced.saturating_add(n));
}

/// Record `n` execution-cursor steps.
#[inline]
pub fn count_cursor_steps(n: u64) {
    bump(|c| c.cursor_steps = c.cursor_steps.saturating_add(n));
}

/// Record `n` I/Os charged. Takes the model's native [`crate::Io`] width
/// and saturates into the counter.
#[inline]
pub fn count_io(n: u128) {
    bump(|c| {
        c.ios_charged = c
            .ios_charged
            .saturating_add(u64::try_from(n).unwrap_or(u64::MAX));
    });
}

/// Record one cache hit.
#[inline]
pub fn count_cache_hit() {
    bump(|c| c.cache_hits = c.cache_hits.saturating_add(1));
}

/// Record `n` cache evictions.
#[inline]
pub fn count_cache_evictions(n: u64) {
    bump(|c| c.cache_evictions = c.cache_evictions.saturating_add(n));
}

/// Is a [`Recording`] open on this thread? Multi-threaded drivers use this
/// to decide whether their workers should record at all.
#[inline]
#[must_use]
pub fn is_recording() -> bool {
    ENABLED.with(Cell::get)
}

/// Fold an externally-collected snapshot into this thread's open recording
/// (no-op when none is open). This is how multi-threaded drivers make the
/// work done on their worker threads visible to the caller's [`Recording`].
pub fn count_snapshot(s: &CounterSnapshot) {
    bump(|c| *c = c.plus(*s));
}

/// An open counting scope on the current thread.
///
/// Nested recordings compose: each `finish` reports the events since its
/// own `start`, and outer recordings keep counting through inner ones.
#[derive(Debug)]
pub struct Recording {
    was_enabled: bool,
    base: CounterSnapshot,
}

impl Recording {
    /// Start (or continue) counting on this thread.
    #[must_use]
    pub fn start() -> Recording {
        let was_enabled = ENABLED.with(|e| e.replace(true));
        Recording {
            was_enabled,
            base: COUNTS.with(Cell::get),
        }
    }

    /// Stop this scope and return the events counted since `start`.
    #[must_use]
    pub fn finish(self) -> CounterSnapshot {
        COUNTS.with(Cell::get).minus(self.base)
        // Drop restores the enabled flag.
    }
}

impl Drop for Recording {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(self.was_enabled));
    }
}

/// Thread-safe counter accumulator for multi-threaded drivers: workers
/// record locally and [`add`](SharedCounters::add) their snapshots.
#[derive(Debug, Default)]
pub struct SharedCounters {
    boxes_advanced: AtomicU64,
    cursor_steps: AtomicU64,
    ios_charged: AtomicU64,
    cache_hits: AtomicU64,
    cache_evictions: AtomicU64,
}

impl SharedCounters {
    /// A zeroed accumulator.
    #[must_use]
    pub fn new() -> SharedCounters {
        SharedCounters::default()
    }

    /// Fold a worker's snapshot into the totals.
    pub fn add(&self, s: &CounterSnapshot) {
        self.boxes_advanced
            .fetch_add(s.boxes_advanced, Ordering::Relaxed);
        self.cursor_steps
            .fetch_add(s.cursor_steps, Ordering::Relaxed);
        self.ios_charged.fetch_add(s.ios_charged, Ordering::Relaxed);
        self.cache_hits.fetch_add(s.cache_hits, Ordering::Relaxed);
        self.cache_evictions
            .fetch_add(s.cache_evictions, Ordering::Relaxed);
    }

    /// Read the current totals.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            boxes_advanced: self.boxes_advanced.load(Ordering::Relaxed),
            cursor_steps: self.cursor_steps.load(Ordering::Relaxed),
            ios_charged: self.ios_charged.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        count_boxes(5);
        count_cache_hit();
        let rec = Recording::start();
        let delta = rec.finish();
        assert!(delta.is_zero(), "counts before start leaked in: {delta:?}");
    }

    #[test]
    fn recording_captures_deltas() {
        let rec = Recording::start();
        count_boxes(3);
        count_io(7);
        count_cursor_steps(2);
        count_cache_hit();
        count_cache_evictions(4);
        let delta = rec.finish();
        assert_eq!(
            delta,
            CounterSnapshot {
                boxes_advanced: 3,
                cursor_steps: 2,
                ios_charged: 7,
                cache_hits: 1,
                cache_evictions: 4,
            }
        );
        // Counting stops once the recording is gone.
        count_boxes(100);
        let rec = Recording::start();
        let delta = rec.finish();
        assert!(delta.is_zero());
    }

    #[test]
    fn nested_recordings_compose() {
        let outer = Recording::start();
        count_boxes(1);
        let inner = Recording::start();
        count_boxes(2);
        let inner_delta = inner.finish();
        count_boxes(4);
        let outer_delta = outer.finish();
        assert_eq!(inner_delta.boxes_advanced, 2);
        assert_eq!(outer_delta.boxes_advanced, 7);
    }

    #[test]
    fn io_saturates_from_u128() {
        let rec = Recording::start();
        count_io(u128::MAX);
        count_io(10);
        assert_eq!(rec.finish().ios_charged, u64::MAX);
    }

    #[test]
    fn shared_counters_accumulate_across_threads() {
        let shared = SharedCounters::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let rec = Recording::start();
                    count_boxes(10);
                    count_cache_hit();
                    shared.add(&rec.finish());
                });
            }
        });
        let total = shared.snapshot();
        assert_eq!(total.boxes_advanced, 40);
        assert_eq!(total.cache_hits, 4);
    }

    #[test]
    fn snapshot_arithmetic() {
        let a = CounterSnapshot {
            boxes_advanced: 5,
            cursor_steps: 1,
            ios_charged: 2,
            cache_hits: 3,
            cache_evictions: 4,
        };
        let b = a.plus(a);
        assert_eq!(b.boxes_advanced, 10);
        assert_eq!(b.minus(a), a);
        assert!(a.minus(b).is_zero());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let a = CounterSnapshot {
            boxes_advanced: 5,
            cursor_steps: 1,
            ios_charged: 2,
            cache_hits: 3,
            cache_evictions: 4,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: CounterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
