//! Error type shared by the model primitives.

use std::fmt;

/// Errors raised when constructing or validating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A memory profile violated the CA-model growth rule: the cache may
    /// grow by at most one block per I/O (it may shrink arbitrarily).
    ProfileGrowthViolation {
        /// Index of the offending step.
        at: usize,
        /// Size before the step.
        from: u64,
        /// Size after the step.
        to: u64,
    },
    /// A box of size zero was supplied; boxes must have positive size.
    EmptyBox {
        /// Index of the offending box.
        at: usize,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ProfileGrowthViolation { at, from, to } => write!(
                f,
                "memory profile grows by more than one block at step {at}: {from} -> {to}"
            ),
            CoreError::EmptyBox { at } => {
                write!(f, "box at index {at} has size zero; boxes must be positive")
            }
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::ProfileGrowthViolation {
            at: 3,
            from: 2,
            to: 9,
        };
        let s = e.to_string();
        assert!(s.contains("step 3"));
        assert!(s.contains("2 -> 9"));

        let e = CoreError::EmptyBox { at: 0 };
        assert!(e.to_string().contains("index 0"));

        let e = CoreError::InvalidParameter {
            name: "b",
            message: "must exceed 1".into(),
        };
        assert!(e.to_string().contains('`'));
        assert!(e.to_string().contains("must exceed 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::EmptyBox { at: 1 });
    }
}
