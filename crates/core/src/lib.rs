//! # cadapt-core — primitives of the cache-adaptive model
//!
//! This crate formalises the *cache-adaptive (CA) model* of Bender et al.
//! (SODA '14, SPAA '16) as used by "Closing the Gap Between Cache-oblivious
//! and Cache-adaptive Analysis" (SPAA '20):
//!
//! * [`MemoryProfile`] — an arbitrary profile `m(t)` giving the cache size in
//!   blocks after the `t`-th I/O, together with the CA-model well-formedness
//!   rule (grow by at most one block per I/O, shrink arbitrarily).
//! * [`SquareProfile`] — a profile decomposed into *boxes* (squares): steps
//!   that are exactly as long as they are tall. Prior work shows analysing
//!   algorithms on square profiles loses only constant factors, so all of the
//!   paper's machinery — and all of this workspace — runs on boxes.
//! * [`Potential`] — the box potential ρ(x) = Θ(x^{log_b a}) of Lemma 1, and
//!   the *n-bounded* potential min(n, x)^{log_b a} used by the optimality
//!   condition (Eq. 2 of the paper).
//! * [`ProgressLedger`] / [`AdaptivityReport`] — per-box progress accounting
//!   and the efficiently-cache-adaptive verdict.
//!
//! Everything downstream (`cadapt-recursion`, `cadapt-profiles`,
//! `cadapt-paging`, `cadapt-analysis`) builds on these types.
//!
//! ## Units
//!
//! Following Remark 1 of the paper, the default unit everywhere is **blocks**
//! (not machine words); block size `B` only becomes visible in the
//! trace-level crates. Times are measured in I/Os.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cast;
pub mod checksum;
pub mod counters;
pub mod cursor;
pub mod error;
pub mod memory_profile;
pub mod potential;
pub mod profile;
pub mod progress;
pub mod report;

pub use counters::CounterSnapshot;
pub use cursor::{CancelKind, CancelToken, Cancelled, RunCursor, RunCursorExt, SourceCursor};
pub use error::CoreError;
pub use memory_profile::MemoryProfile;
pub use potential::Potential;
pub use profile::{BoxRun, BoxSource, SquareProfile};
pub use progress::{BoxRecord, ProgressLedger};
pub use report::{AdaptivityReport, Verdict};

/// A size or capacity measured in cache blocks.
pub type Blocks = u64;

/// A duration or timestamp measured in I/O operations.
///
/// `u128` because total serial time of an (a,b,c)-regular execution is
/// Θ(n^{log_b a}) and overflows `u64` for the largest benchmark sizes.
pub type Io = u128;

/// A count of completed base-case subproblems ("progress" in the paper).
pub type Leaves = u128;
