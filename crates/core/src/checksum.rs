//! Content checksums for on-disk artifacts.
//!
//! The experiment engine persists run records, checkpoint manifests, and
//! fault-injection reports via tmp-file + rename. Rename gives atomicity
//! against crashes, but not against bit rot or hostile edits — so every
//! checksummed artifact embeds a CRC-32 of its canonical payload bytes,
//! and readers recompute it before trusting the contents (see
//! `cadapt_bench::harness::store`).
//!
//! CRC-32 (the IEEE 802.3 polynomial, as used by gzip/zip/PNG) is enough
//! here: the threat model is truncation and accidental corruption, not an
//! adversary forging collisions. The implementation is dependency-free —
//! a 256-entry table built at first use.

use std::sync::OnceLock;

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            #[allow(clippy::cast_possible_truncation)]
            // cadapt-lint: allow(lossy-cast) -- i < 256 by the loop bound; the cast is exact
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            t[i] = crc;
            i += 1;
        }
        t
    })
}

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = crate::cast::usize_from_u32((crc ^ u32::from(b)) & 0xFF);
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

/// CRC-32 of `bytes`, rendered as the fixed-width lowercase hex string
/// embedded in checksummed artifacts (`"crc32:xxxxxxxx"`).
#[must_use]
pub fn crc32_tag(bytes: &[u8]) -> String {
    format!("crc32:{:08x}", crc32(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn tag_is_stable_and_prefixed() {
        assert_eq!(crc32_tag(b"123456789"), "crc32:cbf43926");
        assert_eq!(crc32_tag(b""), "crc32:00000000");
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let base = b"schema_version: 1, metrics: [1.5, 2.5]".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
