//! Streaming run-cursors: composable, constant-memory box pipelines.
//!
//! [`BoxSource`] answers "what is the next box?"; a [`RunCursor`] is the
//! *pipeline* form of the same stream: it yields [`BoxRun`]s lazily, knows
//! how many boxes remain ([`RunCursor::size_hint`], exact or bounded), can
//! be finite (`Ok(None)` when exhausted), and checks a shared
//! [`CancelToken`] between runs so a long replay can be stopped
//! cooperatively from another thread — surfaced as the typed [`Cancelled`]
//! error, never a panic or a poisoned lock.
//!
//! Cursors compose by *adaptation*, not materialisation: every combinator
//! ([`take_boxes`](RunCursorExt::take_boxes),
//! [`throttle`](RunCursorExt::throttle),
//! [`interleave`](RunCursorExt::interleave),
//! [`zip_with`](RunCursorExt::zip_with),
//! [`cancellable`](RunCursorExt::cancellable)) holds O(1) state — at most
//! one pending run per upstream — so a pipeline over a billion-box profile
//! is as resident as a pipeline over ten boxes. That is the property the
//! paper's Definition 3 needs operationally: adaptivity is quantified over
//! *infinite* profiles, so nothing in the hot path may scale with profile
//! length.
//!
//! ## Trait laws
//!
//! 1. **Decomposition.** The concatenation of the yielded runs (each run
//!    expanded to `repeat` boxes of `size`) *is* the cursor's box stream.
//!    Runs need not be maximal; they must be non-empty (`repeat ≥ 1`,
//!    `size ≥ 1`).
//! 2. **Discard-on-stop.** A consumer that stops mid-run discards the
//!    remainder; the cursor is never polled again afterwards (inherited
//!    from the [`BoxSource::next_run`] contract).
//! 3. **Honest hints.** `size_hint() = (lo, hi)` brackets the number of
//!    boxes remaining: at least `lo`, at most `hi` (`None` = unbounded).
//!    Infinite cursors report `(u64::MAX, None)`.
//! 4. **Cancellation points.** Cancellation is observed *between* runs
//!    (the check is in [`Cancellable::next_run`]), so a closed-form batch
//!    advance is never torn in half; after `Err(Cancelled)` the cursor
//!    must not be polled again.

use crate::profile::{BoxRun, BoxSource};
use crate::Blocks;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// The typed cancellation signal: a pipeline observed its [`CancelToken`]
/// between runs and stopped. Carried up as `Err(Cancelled)` so every layer
/// can distinguish "asked to stop" from "failed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline cancelled cooperatively")
    }
}

impl std::error::Error for Cancelled {}

/// Why a [`CancelToken`] fired. The service layer turns the reason into a
/// typed job outcome (a user cancel, a missed deadline, or an exhausted
/// box budget are three different verdicts with three different exit
/// paths), so the reason travels with the flag instead of beside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// An explicit caller request ([`CancelToken::cancel`]).
    User,
    /// A deadline enforcer fired the token.
    Deadline,
    /// A resource-budget enforcer fired the token.
    Budget,
}

impl CancelKind {
    /// Stable lowercase label for reports and wire payloads.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CancelKind::User => "user",
            CancelKind::Deadline => "deadline",
            CancelKind::Budget => "budget",
        }
    }
}

/// Not cancelled; see the `KIND_*` constants below.
const KIND_NONE: u8 = 0;
const KIND_USER: u8 = 1;
const KIND_DEADLINE: u8 = 2;
const KIND_BUDGET: u8 = 3;

/// A shared cancellation flag (an `Arc<AtomicU8>` under the hood): unset,
/// or cancelled with a [`CancelKind`] explaining why.
///
/// Clone the token into every pipeline that should stop together; any
/// clone's [`CancelToken::cancel`] (or [`CancelToken::cancel_with`]) is
/// observed by all of them at their next between-runs check. The **first**
/// cancel wins: a deadline firing after a user cancel does not rewrite the
/// reason, so the reported outcome is stable under racing enforcers.
/// Relaxed ordering is sufficient: the flag carries no data beyond "stop
/// soon, because X", and determinism is unaffected because cancellation
/// aborts a run rather than changing its results.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation; every clone of this token observes it.
    /// Equivalent to `cancel_with(CancelKind::User)`.
    pub fn cancel(&self) {
        self.cancel_with(CancelKind::User);
    }

    /// Request cancellation carrying a reason. If the token is already
    /// cancelled the original reason is kept (first cancel wins).
    pub fn cancel_with(&self, kind: CancelKind) {
        let code = match kind {
            CancelKind::User => KIND_USER,
            CancelKind::Deadline => KIND_DEADLINE,
            CancelKind::Budget => KIND_BUDGET,
        };
        // compare_exchange so concurrent enforcers cannot overwrite the
        // first reason; losing the race is fine — the flag is already set.
        let _ = self
            .flag
            .compare_exchange(KIND_NONE, code, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) != KIND_NONE
    }

    /// Why the token fired, or `None` while it has not.
    #[must_use]
    pub fn kind(&self) -> Option<CancelKind> {
        match self.flag.load(Ordering::Relaxed) {
            KIND_USER => Some(CancelKind::User),
            KIND_DEADLINE => Some(CancelKind::Deadline),
            KIND_BUDGET => Some(CancelKind::Budget),
            _ => None,
        }
    }
}

/// A streaming cursor over a (possibly infinite) box stream, yielding
/// run-length batches. See the module docs for the trait laws.
pub trait RunCursor {
    /// Yield the next run, `Ok(None)` when the stream is exhausted, or
    /// [`Cancelled`] if a [`CancelToken`] upstream was triggered.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when a token in the pipeline has been cancelled; the
    /// cursor must not be polled again afterwards.
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled>;

    /// Bounds on the number of boxes remaining: `(lo, hi)` with `hi =
    /// None` meaning unbounded. Exact cursors report `lo == hi`.
    fn size_hint(&self) -> (u64, Option<u64>);
}

/// Mirrors `Iterator`: a mutable reference to a cursor is a cursor.
impl<C: RunCursor + ?Sized> RunCursor for &mut C {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        (**self).next_run()
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        (**self).size_hint()
    }
}

/// Boxed cursors are cursors (enables heterogeneous `Box<dyn RunCursor>`
/// pipelines, e.g. a scenario built from differently-typed tenants).
impl<C: RunCursor + ?Sized> RunCursor for Box<C> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        (**self).next_run()
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        (**self).size_hint()
    }
}

/// The bridge from the source world: any [`BoxSource`] is an infinite
/// [`RunCursor`]. This is the single place the run-positivity invariant is
/// asserted, so every pipeline downstream can rely on it.
#[derive(Debug, Clone)]
pub struct SourceCursor<S> {
    source: S,
}

impl<S: BoxSource> SourceCursor<S> {
    /// Wrap a source as an infinite cursor.
    pub fn new(source: S) -> SourceCursor<S> {
        SourceCursor { source }
    }

    /// Unwrap, returning the inner source.
    pub fn into_inner(self) -> S {
        self.source
    }
}

impl<S: BoxSource> RunCursor for SourceCursor<S> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        let run = self.source.next_run();
        // Zero-length or zero-sized runs would wedge every consumer loop
        // (no progress, no error); the BoxSource contract forbids them and
        // this adapter is where the whole pipeline checks it once.
        debug_assert!(run.repeat >= 1, "BoxSource yielded an empty run");
        debug_assert!(run.size >= 1, "BoxSource yielded a zero-sized box");
        Ok(Some(run))
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        // Sources are infinite by contract.
        (u64::MAX, None)
    }
}

/// Subtract `emitted` boxes from a pending run, keeping infinite tails
/// infinite; returns the remainder (`None` when the run is spent).
fn run_minus(run: BoxRun, emitted: u64) -> Option<BoxRun> {
    if run.repeat == u64::MAX {
        // "This size forever": any finite prefix leaves it intact.
        return Some(run);
    }
    let left = run.repeat - emitted;
    (left > 0).then_some(BoxRun {
        size: run.size,
        repeat: left,
    })
}

/// Saturating sum of two size-hint bounds.
fn hint_add(a: (u64, Option<u64>), b: (u64, Option<u64>)) -> (u64, Option<u64>) {
    let lo = a.0.saturating_add(b.0);
    let hi = match (a.1, b.1) {
        (Some(x), Some(y)) => Some(x.saturating_add(y)),
        _ => None,
    };
    (lo, hi)
}

/// Pointwise minimum of two size-hint bounds (for zipped streams, which
/// end when the shorter side does).
fn hint_min(a: (u64, Option<u64>), b: (u64, Option<u64>)) -> (u64, Option<u64>) {
    let lo = a.0.min(b.0);
    let hi = match (a.1, b.1) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) => Some(x),
        (None, Some(y)) => Some(y),
        (None, None) => None,
    };
    (lo, hi)
}

/// Truncate a cursor after `boxes` boxes. See [`RunCursorExt::take_boxes`].
#[derive(Debug, Clone)]
pub struct TakeBoxes<C> {
    inner: C,
    remaining: u64,
}

impl<C: RunCursor> RunCursor for TakeBoxes<C> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(run) = self.inner.next_run()? else {
            self.remaining = 0;
            return Ok(None);
        };
        // Law 2 (discard-on-stop) lets us drop the tail of the final run:
        // the inner cursor is never polled again after remaining hits 0.
        let emit = run.repeat.min(self.remaining);
        self.remaining -= emit;
        Ok(Some(BoxRun {
            size: run.size,
            repeat: emit,
        }))
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        let (lo, hi) = self.inner.size_hint();
        let hi = hi.map_or(self.remaining, |h| h.min(self.remaining));
        (lo.min(self.remaining), Some(hi))
    }
}

/// Cap every box size at `cap` blocks. See [`RunCursorExt::throttle`].
#[derive(Debug, Clone)]
pub struct Throttle<C> {
    inner: C,
    cap: Blocks,
}

impl<C: RunCursor> RunCursor for Throttle<C> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        // Run structure is preserved exactly: capping is pointwise on
        // sizes, so a run of k equal boxes stays a run of k equal boxes
        // (adjacent runs may now share a size; runs need not be maximal).
        Ok(self.inner.next_run()?.map(|run| BoxRun {
            size: run.size.min(self.cap),
            repeat: run.repeat,
        }))
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        self.inner.size_hint()
    }
}

/// Alternate fixed-length slices of boxes from two cursors. See
/// [`RunCursorExt::interleave`].
#[derive(Debug, Clone)]
pub struct Interleave<A, B> {
    a: A,
    b: B,
    chunk: u64,
    pending_a: Option<BoxRun>,
    pending_b: Option<BoxRun>,
    done_a: bool,
    done_b: bool,
    /// true = currently slicing from `a`.
    on_a: bool,
    left_in_slice: u64,
}

impl<A: RunCursor, B: RunCursor> Interleave<A, B> {
    /// Pull the current side's pending run, refilling from its cursor;
    /// `Ok(None)` marks that side exhausted.
    fn fill_current(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        if self.on_a {
            if self.pending_a.is_none() && !self.done_a {
                self.pending_a = self.a.next_run()?;
                self.done_a = self.pending_a.is_none();
            }
            Ok(self.pending_a)
        } else {
            if self.pending_b.is_none() && !self.done_b {
                self.pending_b = self.b.next_run()?;
                self.done_b = self.pending_b.is_none();
            }
            Ok(self.pending_b)
        }
    }
}

impl<A: RunCursor, B: RunCursor> RunCursor for Interleave<A, B> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        loop {
            match self.fill_current()? {
                Some(run) => {
                    let emit = run.repeat.min(self.left_in_slice);
                    let rest = run_minus(run, emit);
                    if self.on_a {
                        self.pending_a = rest;
                    } else {
                        self.pending_b = rest;
                    }
                    self.left_in_slice -= emit;
                    if self.left_in_slice == 0 {
                        self.on_a = !self.on_a;
                        self.left_in_slice = self.chunk;
                    }
                    return Ok(Some(BoxRun {
                        size: run.size,
                        repeat: emit,
                    }));
                }
                None => {
                    // Current side is exhausted: drain the other side in
                    // full slices (or finish when both are done).
                    if self.done_a && self.done_b {
                        return Ok(None);
                    }
                    self.on_a = !self.on_a;
                    self.left_in_slice = self.chunk;
                }
            }
        }
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        let pend = |p: &Option<BoxRun>| -> (u64, Option<u64>) {
            match p {
                Some(r) => (r.repeat, Some(r.repeat)),
                None => (0, Some(0)),
            }
        };
        let a = if self.done_a {
            pend(&self.pending_a)
        } else {
            hint_add(self.a.size_hint(), pend(&self.pending_a))
        };
        let b = if self.done_b {
            pend(&self.pending_b)
        } else {
            hint_add(self.b.size_hint(), pend(&self.pending_b))
        };
        hint_add(a, b)
    }
}

/// Combine two cursors box-by-box with a pure function. See
/// [`RunCursorExt::zip_with`].
#[derive(Debug, Clone)]
pub struct ZipWith<A, B, F> {
    a: A,
    b: B,
    f: F,
    pending_a: Option<BoxRun>,
    pending_b: Option<BoxRun>,
    done: bool,
}

impl<A, B, F> RunCursor for ZipWith<A, B, F>
where
    A: RunCursor,
    B: RunCursor,
    F: FnMut(Blocks, Blocks) -> Blocks,
{
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        if self.done {
            return Ok(None);
        }
        if self.pending_a.is_none() {
            self.pending_a = self.a.next_run()?;
        }
        if self.pending_b.is_none() {
            self.pending_b = self.b.next_run()?;
        }
        let (Some(ra), Some(rb)) = (self.pending_a, self.pending_b) else {
            // The zip ends at the shorter stream (law 2 discards the
            // longer side's dangling half-run).
            self.done = true;
            return Ok(None);
        };
        // Both runs are constant over the overlap, so the combined stream
        // is too: one output run of the overlap length.
        let emit = ra.repeat.min(rb.repeat);
        self.pending_a = run_minus(ra, emit);
        self.pending_b = run_minus(rb, emit);
        let size = (self.f)(ra.size, rb.size);
        debug_assert!(size >= 1, "zip_with must produce positive box sizes");
        Ok(Some(BoxRun { size, repeat: emit }))
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        let side = |done_hint: (u64, Option<u64>), p: &Option<BoxRun>| {
            let pend = match p {
                Some(r) => (r.repeat, Some(r.repeat)),
                None => (0, Some(0)),
            };
            hint_add(done_hint, pend)
        };
        if self.done {
            return (0, Some(0));
        }
        hint_min(
            side(self.a.size_hint(), &self.pending_a),
            side(self.b.size_hint(), &self.pending_b),
        )
    }
}

/// Observe a [`CancelToken`] between runs. See
/// [`RunCursorExt::cancellable`].
#[derive(Debug, Clone)]
pub struct Cancellable<C> {
    inner: C,
    token: CancelToken,
}

impl<C: RunCursor> RunCursor for Cancellable<C> {
    fn next_run(&mut self) -> Result<Option<BoxRun>, Cancelled> {
        // The check sits *before* the pull: a cancelled pipeline does no
        // further upstream work, and a run already handed out is never
        // torn (cancellation points are between runs only — law 4).
        if self.token.is_cancelled() {
            return Err(Cancelled);
        }
        self.inner.next_run()
    }

    fn size_hint(&self) -> (u64, Option<u64>) {
        self.inner.size_hint()
    }
}

/// Combinators on any [`RunCursor`], in the style of `Iterator` adapters.
/// Each returns a new cursor holding O(1) state.
pub trait RunCursorExt: RunCursor + Sized {
    /// Truncate the stream after `boxes` boxes (splitting a run at the
    /// boundary). The resulting cursor is finite with an exact upper
    /// hint of `boxes`.
    fn take_boxes(self, boxes: u64) -> TakeBoxes<Self> {
        TakeBoxes {
            inner: self,
            remaining: boxes,
        }
    }

    /// Cap every box at `cap` blocks — the "co-tenant stole the rest of
    /// the cache" model of memory pressure.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0` (boxes must stay positive).
    fn throttle(self, cap: Blocks) -> Throttle<Self> {
        assert!(cap > 0, "throttle cap must be positive");
        Throttle { inner: self, cap }
    }

    /// Alternate slices of `chunk` boxes from `self` and `other` — the
    /// time-sliced multi-tenancy model. When one side ends, the other is
    /// drained to completion.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    fn interleave<B: RunCursor>(self, other: B, chunk: u64) -> Interleave<Self, B> {
        assert!(chunk > 0, "interleave chunk must be positive");
        Interleave {
            a: self,
            b: other,
            chunk,
            pending_a: None,
            pending_b: None,
            done_a: false,
            done_b: false,
            on_a: true,
            left_in_slice: chunk,
        }
    }

    /// Combine `self` and `other` box-by-box with `f` (e.g.
    /// `Blocks::min` models two tenants constraining each other). Ends
    /// at the shorter stream. `f` must map positive sizes to positive
    /// sizes.
    fn zip_with<B, F>(self, other: B, f: F) -> ZipWith<Self, B, F>
    where
        B: RunCursor,
        F: FnMut(Blocks, Blocks) -> Blocks,
    {
        ZipWith {
            a: self,
            b: other,
            f,
            pending_a: None,
            pending_b: None,
            done: false,
        }
    }

    /// Observe `token` between runs, yielding `Err(`[`Cancelled`]`)` once
    /// it is cancelled.
    fn cancellable(self, token: CancelToken) -> Cancellable<Self> {
        Cancellable { inner: self, token }
    }
}

impl<C: RunCursor> RunCursorExt for C {}

// Exact equality in tests is deliberate: cursors must reproduce the
// per-box stream bit-for-bit (law 1).
#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ConstantSource, SquareProfile};

    /// Expand up to `max` boxes of a cursor into a vector (test helper;
    /// production code never materialises pipelines).
    fn expand<C: RunCursor>(cursor: &mut C, max: usize) -> Vec<Blocks> {
        let mut out = Vec::new();
        while out.len() < max {
            match cursor.next_run().expect("not cancelled") {
                Some(run) => {
                    assert!(run.repeat >= 1, "empty run yielded");
                    assert!(run.size >= 1, "zero-sized box yielded");
                    let take = (max - out.len()).min(usize::try_from(run.repeat).unwrap_or(max));
                    out.extend(std::iter::repeat_n(run.size, take));
                }
                None => break,
            }
        }
        out
    }

    fn profile(v: &[Blocks]) -> SquareProfile {
        SquareProfile::new(v.to_vec()).unwrap()
    }

    #[test]
    fn source_cursor_matches_per_box_stream() {
        let p = profile(&[2, 2, 5, 1, 1, 1]);
        let mut cursor = SourceCursor::new(p.cycle());
        let mut by_box = p.cycle();
        let expanded = expand(&mut cursor, 14);
        let direct: Vec<_> = (0..14).map(|_| by_box.next_box()).collect();
        assert_eq!(expanded, direct);
        assert_eq!(cursor.size_hint(), (u64::MAX, None));
    }

    #[test]
    fn take_boxes_is_exact() {
        let mut c = SourceCursor::new(ConstantSource::new(4)).take_boxes(10);
        assert_eq!(c.size_hint(), (10, Some(10)));
        assert_eq!(expand(&mut c, 100), vec![4; 10]);
        assert_eq!(c.size_hint(), (0, Some(0)));
        assert_eq!(c.next_run(), Ok(None));
    }

    #[test]
    fn take_boxes_splits_runs_at_the_boundary() {
        let p = profile(&[7, 7, 7, 7]);
        let mut c = SourceCursor::new(p.cycle()).take_boxes(3);
        assert_eq!(c.next_run(), Ok(Some(BoxRun { size: 7, repeat: 3 })));
        assert_eq!(c.next_run(), Ok(None));
    }

    #[test]
    fn throttle_caps_sizes_and_preserves_runs() {
        let p = profile(&[2, 8, 8, 64]);
        let mut c = SourceCursor::new(p.cycle()).throttle(8).take_boxes(8);
        assert_eq!(expand(&mut c, 100), vec![2, 8, 8, 8, 2, 8, 8, 8]);
    }

    #[test]
    fn interleave_alternates_fixed_slices() {
        let a = SourceCursor::new(ConstantSource::new(1));
        let b = SourceCursor::new(ConstantSource::new(9));
        let mut c = a.interleave(b, 2).take_boxes(9);
        assert_eq!(expand(&mut c, 100), vec![1, 1, 9, 9, 1, 1, 9, 9, 1]);
    }

    #[test]
    fn interleave_splits_runs_at_slice_boundaries() {
        let a = SourceCursor::new(ConstantSource::new(3));
        let b = SourceCursor::new(ConstantSource::new(5));
        let mut c = a.interleave(b, 4);
        // Infinite constant runs are sliced into chunk-sized runs.
        assert_eq!(c.next_run(), Ok(Some(BoxRun { size: 3, repeat: 4 })));
        assert_eq!(c.next_run(), Ok(Some(BoxRun { size: 5, repeat: 4 })));
        assert_eq!(c.next_run(), Ok(Some(BoxRun { size: 3, repeat: 4 })));
    }

    #[test]
    fn interleave_drains_the_longer_side() {
        let a = SourceCursor::new(ConstantSource::new(1)).take_boxes(3);
        let b = SourceCursor::new(ConstantSource::new(9)).take_boxes(7);
        let mut c = a.interleave(b, 2);
        assert_eq!(c.size_hint(), (10, Some(10)));
        assert_eq!(
            expand(&mut c, 100),
            vec![1, 1, 9, 9, 1, 9, 9, 9, 9, 9],
            "after a is exhausted mid-slice, b is drained to completion"
        );
        assert_eq!(c.next_run(), Ok(None));
    }

    #[test]
    fn zip_with_combines_pointwise() {
        let p = profile(&[8, 8, 2, 2, 2, 8]);
        let a = SourceCursor::new(p.cycle());
        let b = SourceCursor::new(ConstantSource::new(4));
        let mut c = a.zip_with(b, Blocks::min).take_boxes(6);
        assert_eq!(expand(&mut c, 100), vec![4, 4, 2, 2, 2, 4]);
    }

    #[test]
    fn zip_with_ends_at_the_shorter_stream() {
        let a = SourceCursor::new(ConstantSource::new(6)).take_boxes(4);
        let b = SourceCursor::new(ConstantSource::new(2));
        let mut c = a.zip_with(b, |x, y| x + y);
        assert_eq!(c.size_hint(), (4, Some(4)));
        assert_eq!(expand(&mut c, 100), vec![8, 8, 8, 8]);
        assert_eq!(c.next_run(), Ok(None));
        assert_eq!(c.size_hint(), (0, Some(0)));
    }

    #[test]
    fn cancellation_is_observed_between_runs() {
        let token = CancelToken::new();
        let mut c = SourceCursor::new(ConstantSource::new(4))
            .take_boxes(1000)
            .cancellable(token.clone());
        assert!(matches!(c.next_run(), Ok(Some(_))));
        token.cancel();
        assert_eq!(c.next_run(), Err(Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancel_token_records_a_kind() {
        let token = CancelToken::new();
        assert_eq!(token.kind(), None);
        token.cancel_with(CancelKind::Deadline);
        assert!(token.is_cancelled());
        assert_eq!(token.kind(), Some(CancelKind::Deadline));
        assert_eq!(token.kind().map(|k| k.as_str()), Some("deadline"));
    }

    #[test]
    fn cancel_token_first_cancel_wins() {
        let token = CancelToken::new();
        token.cancel_with(CancelKind::Budget);
        token.cancel_with(CancelKind::Deadline);
        token.cancel();
        assert_eq!(token.kind(), Some(CancelKind::Budget));
    }

    #[test]
    fn cancel_token_plain_cancel_is_a_user_cancel() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert_eq!(token.kind(), Some(CancelKind::User));
    }

    #[test]
    fn dyn_cursors_compose() {
        let a: Box<dyn RunCursor> =
            Box::new(SourceCursor::new(ConstantSource::new(2)).take_boxes(2));
        let b: Box<dyn RunCursor> =
            Box::new(SourceCursor::new(ConstantSource::new(3)).take_boxes(2));
        let mut c = a.interleave(b, 1);
        assert_eq!(expand(&mut c, 100), vec![2, 3, 2, 3]);
    }

    #[test]
    fn mut_ref_is_a_cursor() {
        let mut inner = SourceCursor::new(ConstantSource::new(5)).take_boxes(2);
        let mut c = &mut inner;
        assert_eq!(expand(&mut c, 100), vec![5, 5]);
    }

    #[test]
    fn cancelled_displays() {
        assert!(Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn infinite_tails_survive_combinators() {
        // An ExtendedSource's u64::MAX tail must stay infinite through
        // throttle and zip (run_minus keeps MAX as MAX).
        let p = profile(&[3]);
        let a = SourceCursor::new(p.extended(9));
        let b = SourceCursor::new(ConstantSource::new(6));
        let mut c = a.zip_with(b, Blocks::min);
        assert_eq!(c.next_run(), Ok(Some(BoxRun { size: 3, repeat: 1 })));
        assert_eq!(
            c.next_run(),
            Ok(Some(BoxRun {
                size: 6,
                repeat: u64::MAX
            }))
        );
    }
}
