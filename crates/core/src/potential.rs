//! The box potential ρ(x) = x^{log_b a} of Lemma 1, and the *n-bounded*
//! potential min(n, x)^{log_b a} that drives the optimality condition.
//!
//! For an (a, b, c)-regular algorithm with a > b and c = 1, Lemma 1 of the
//! paper shows the maximum progress a box of size x can ever make is
//! Θ(x^{log_b a}). The efficiently-cache-adaptive condition (Eq. 2) sums the
//! n-bounded potential over all boxes consumed:
//!
//! ```text
//!     Σ_i min(n, |□_i|)^{log_b a}  ≤  O(n^{log_b a}).
//! ```
//!
//! [`Potential`] caches the exponent e = log_b a and evaluates both forms.
//! Exponents are generally irrational (e.g. Strassen's log_4 7 ≈ 1.4037), so
//! evaluation is in `f64`; for the common case of x a power of b we take an
//! exact integer-exponent path that avoids `powf` rounding.

use crate::Blocks;
use serde::{Deserialize, Serialize};

/// Evaluator for ρ(x) = x^e with e = log_b a, plus the n-bounded variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Potential {
    a: u64,
    b: u64,
    exponent: f64,
}

impl Potential {
    /// Build the potential function for an (a, b, ·)-regular algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` or `b < 2` — those never describe an
    /// (a, b, c)-regular algorithm (Definition 2 requires b > 1).
    #[must_use]
    pub fn new(a: u64, b: u64) -> Self {
        assert!(a >= 1, "branching factor a must be at least 1");
        assert!(b >= 2, "shrink factor b must exceed 1");
        Potential {
            a,
            b,
            exponent: (a as f64).ln() / (b as f64).ln(),
        }
    }

    /// The branching factor a.
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The problem-shrink factor b.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.b
    }

    /// The exponent e = log_b a. For MM-Scan (8, 4) this is 3/2.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// ρ(x) = x^{log_b a}.
    ///
    /// Exact (up to `f64` representation of the result) when `x` is a power
    /// of b: x = b^k gives ρ(x) = a^k, computed by integer exponentiation.
    #[must_use]
    pub fn eval(&self, x: Blocks) -> f64 {
        if x == 0 {
            return 0.0;
        }
        if let Some(k) = exact_log(self.b, x) {
            return pow_u64_f64(self.a, k);
        }
        (x as f64).powf(self.exponent)
    }

    /// The n-bounded potential min(n, x)^{log_b a} from Eq. 2.
    #[must_use]
    pub fn bounded(&self, n: Blocks, x: Blocks) -> f64 {
        self.eval(x.min(n))
    }

    /// The total progress an (a, b, 1)-regular algorithm must make on a
    /// problem of size n: Θ(n^{log_b a}) — the right-hand side of Eq. 1.
    #[must_use]
    pub fn required_progress(&self, n: Blocks) -> f64 {
        self.eval(n)
    }
}

/// If `x` is exactly `base^k`, return `k`.
#[must_use]
pub fn exact_log(base: u64, x: u64) -> Option<u32> {
    debug_assert!(base >= 2);
    if x == 0 {
        return None;
    }
    let mut v = 1u64;
    let mut k = 0u32;
    while v < x {
        v = v.checked_mul(base)?;
        k += 1;
    }
    (v == x).then_some(k)
}

/// `base^k` as f64, via u128 when it fits (exact), falling back to powi.
fn pow_u64_f64(base: u64, k: u32) -> f64 {
    let mut acc: u128 = 1;
    for _ in 0..k {
        match acc.checked_mul(u128::from(base)) {
            Some(v) => acc = v,
            None => return (base as f64).powi(crate::cast::i32_from_u32(k)),
        }
    }
    acc as f64
}

/// Largest power of `base` that is ≤ `x` (requires `x ≥ 1`).
#[must_use]
pub fn floor_power(base: u64, x: u64) -> u64 {
    debug_assert!(base >= 2);
    assert!(x >= 1, "floor_power of zero is undefined");
    let mut v = 1u64;
    loop {
        match v.checked_mul(base) {
            Some(next) if next <= x => v = next,
            _ => return v,
        }
    }
}

/// Smallest power of `base` that is ≥ `x` (requires `x ≥ 1`).
#[must_use]
pub fn ceil_power(base: u64, x: u64) -> u64 {
    debug_assert!(base >= 2);
    assert!(x >= 1, "ceil_power of zero is undefined");
    let mut v = 1u64;
    while v < x {
        // cadapt-lint: allow(panic-reach) -- deliberate loud overflow guard: a wrapped power would corrupt box geometry
        v = v.checked_mul(base).expect("ceil_power overflow");
    }
    v
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_scan_exponent_is_three_halves() {
        let p = Potential::new(8, 4);
        assert!((p.exponent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn exact_power_path_matches_integer_math() {
        let p = Potential::new(8, 4);
        // ρ(4^k) = 8^k exactly.
        assert_eq!(p.eval(1), 1.0);
        assert_eq!(p.eval(4), 8.0);
        assert_eq!(p.eval(16), 64.0);
        assert_eq!(p.eval(4u64.pow(10)), 8f64.powi(10));
    }

    #[test]
    fn non_power_uses_powf_and_is_monotone() {
        let p = Potential::new(8, 4);
        let mut prev = 0.0;
        for x in 1..200u64 {
            let v = p.eval(x);
            assert!(v > prev, "potential must be strictly increasing");
            prev = v;
        }
    }

    #[test]
    fn bounded_caps_at_n() {
        let p = Potential::new(8, 4);
        assert_eq!(p.bounded(16, 64), p.eval(16));
        assert_eq!(p.bounded(64, 16), p.eval(16));
        assert_eq!(p.bounded(64, 64), p.eval(64));
    }

    #[test]
    fn zero_box_has_zero_potential() {
        let p = Potential::new(8, 4);
        assert_eq!(p.eval(0), 0.0);
        assert_eq!(p.bounded(10, 0), 0.0);
    }

    #[test]
    fn strassen_exponent() {
        let p = Potential::new(7, 4);
        assert!((p.exponent() - 7f64.ln() / 4f64.ln()).abs() < 1e-15);
        // log_4 7 ≈ 1.4037.
        assert!((p.exponent() - 1.4036774610288).abs() < 1e-10);
    }

    #[test]
    fn exact_log_detects_powers() {
        assert_eq!(exact_log(4, 1), Some(0));
        assert_eq!(exact_log(4, 4), Some(1));
        assert_eq!(exact_log(4, 64), Some(3));
        assert_eq!(exact_log(4, 5), None);
        assert_eq!(exact_log(4, 0), None);
        assert_eq!(exact_log(2, 1 << 62), Some(62));
    }

    #[test]
    fn floor_and_ceil_power() {
        assert_eq!(floor_power(4, 1), 1);
        assert_eq!(floor_power(4, 3), 1);
        assert_eq!(floor_power(4, 4), 4);
        assert_eq!(floor_power(4, 100), 64);
        assert_eq!(ceil_power(4, 1), 1);
        assert_eq!(ceil_power(4, 3), 4);
        assert_eq!(ceil_power(4, 5), 16);
        assert_eq!(ceil_power(4, 64), 64);
    }

    #[test]
    fn floor_power_handles_near_overflow() {
        // Must not overflow even when the next power would exceed u64::MAX.
        let x = u64::MAX;
        let fp = floor_power(2, x);
        assert_eq!(fp, 1u64 << 63);
    }

    #[test]
    #[should_panic(expected = "shrink factor")]
    fn rejects_b_one() {
        let _ = Potential::new(8, 1);
    }

    #[test]
    fn required_progress_matches_eval() {
        let p = Potential::new(8, 4);
        assert_eq!(p.required_progress(256), p.eval(256));
    }
}
