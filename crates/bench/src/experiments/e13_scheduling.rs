//! **E13 — the introduction's system, quantified** (extension beyond the
//! paper, marked as such in DESIGN.md).
//!
//! Co-schedule batches of jobs on one shared cache under different
//! allocation policies and measure the **overhead versus the static
//! fair-share baseline**: each job run alone with cache total/k (this
//! isolates the cost of *fluctuation* from the unavoidable √k cost of
//! *capacity sharing*, which the DAM already predicts). The paper's
//! opening claims become a table:
//!
//! * overhead stays near 1 for every mix under every policy — the system
//!   really can reclaim and redistribute cache freely, because emergent
//!   allocation patterns never track any job's recursion (smoothing in
//!   action, E2's conclusion at system level);
//! * the worst per-job Eq. 2 ratio stays far below the adversarial
//!   log_b n + 1 even under winner-take-all churn;
//! * equal shares are near-perfectly fair; winner-take-all is not —
//!   quantifying the Dice et al. pathology the intro cites.

use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::{try_run_trials, SweepError};
use cadapt_analysis::table::fnum;
use cadapt_analysis::{Stats, Table};
use cadapt_recursion::AbcParams;
use cadapt_sched::{
    scheduler::run_alone, ChurnShares, EqualShares, JobSpec, Scheduler, SchedulerConfig,
    WinnerTakeAll,
};

/// One measured cell.
#[derive(Debug, Clone)]
pub struct E13Cell {
    /// Job mix label.
    pub mix: String,
    /// Policy label.
    pub policy: String,
    /// Bus I/O overhead vs the single-tenant baselines (1 = ideal).
    pub overhead: f64,
    /// Jain fairness of the schedule.
    pub fairness: f64,
    /// Worst per-job Eq. 2 ratio.
    pub worst_ratio: f64,
}

/// Result of E13.
#[derive(Debug)]
pub struct E13Result {
    /// Printed table.
    pub table: Table,
    /// Raw cells.
    pub cells: Vec<E13Cell>,
}

fn mixes(n: u64) -> Vec<(&'static str, Vec<JobSpec>)> {
    let scan = AbcParams::mm_scan();
    let inplace = AbcParams::mm_inplace();
    vec![
        ("4x MM-Inplace", vec![JobSpec::new(inplace, n); 4]),
        ("4x MM-Scan", vec![JobSpec::new(scan, n); 4]),
        (
            "2x Scan + 2x Inplace",
            vec![
                JobSpec::new(scan, n),
                JobSpec::new(inplace, n),
                JobSpec::new(scan, n),
                JobSpec::new(inplace, n),
            ],
        ),
    ]
}

/// Run E13 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a failed schedule as a typed error.
pub fn run(scale: Scale) -> Result<E13Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E13 fanning the churn trials over `threads` workers (0 = available
/// parallelism). Bit-identical at any thread count: per-trial seeded RNG
/// plus trial-ordered reduction.
///
/// # Errors
///
/// Propagates a failed schedule as a typed error.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E13Result, BenchError> {
    let n = scale.pick(1u64 << 10, 1 << 14);
    let total_cache = n / 2; // contended: half of one job's footprint
    let trials = scale.pick(4u64, 16);
    let config = SchedulerConfig {
        total_cache,
        ..SchedulerConfig::default()
    };
    let mut table = Table::new(
        "E13: co-scheduling overhead vs static fair-share baselines (cache = n/2)",
        &["job mix", "policy", "overhead", "fairness", "worst ratio"],
    );
    let mut cells = Vec::new();
    for (mix_label, specs) in mixes(n) {
        // Static fair-share baseline: each job alone with cache total/k.
        let share_config = SchedulerConfig {
            total_cache: (total_cache / specs.len() as u64).max(1),
            ..config
        };
        let mut baseline: u128 = 0;
        for &s in &specs {
            baseline += run_alone(s, share_config)?.bus_io;
        }
        let run_policy = |result: cadapt_sched::ScheduleResult| -> (f64, f64, f64) {
            (
                result.bus_io as f64 / baseline as f64,
                result.fairness(),
                result.worst_ratio(),
            )
        };
        // Deterministic policies once; churn averaged over trials.
        let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
        let equal = Scheduler::new(&specs, EqualShares, config)?.run()?;
        let (o, f, w) = run_policy(equal);
        rows.push(("equal-shares".into(), o, f, w));
        let wta = Scheduler::new(&specs, WinnerTakeAll { reign: 8 }, config)?.run()?;
        let (o, f, w) = run_policy(wta);
        rows.push(("winner-take-all(8)".into(), o, f, w));
        let churn_outcomes = try_run_trials(trials, threads, |trial| {
            Scheduler::new(&specs, ChurnShares::new(trial_rng(0xE13, trial)), config)?
                .run()
                .map(&run_policy)
        })
        .map_err(|e| match e {
            SweepError::Job { error, .. } => BenchError::Core(error),
            SweepError::Panic(p) => {
                BenchError::from_trial_panic(&format!("E13 {mix_label} churn"), p)
            }
        })?;
        let mut o_stats = Stats::new();
        let mut f_stats = Stats::new();
        let mut w_stats = Stats::new();
        for (o, f, w) in churn_outcomes {
            o_stats.push(o);
            f_stats.push(f);
            w_stats.push(w);
        }
        rows.push(("churn".into(), o_stats.mean, f_stats.mean, w_stats.mean));
        for (policy, overhead, fairness, worst) in rows {
            table.push_row(vec![
                mix_label.to_string(),
                policy.clone(),
                fnum(overhead),
                fnum(fairness),
                fnum(worst),
            ]);
            cells.push(E13Cell {
                mix: mix_label.to_string(),
                policy,
                overhead,
                fairness,
                worst_ratio: worst,
            });
        }
    }
    Ok(E13Result { table, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(result: &'a E13Result, mix: &str, policy: &str) -> &'a E13Cell {
        result
            .cells
            .iter()
            .find(|c| c.mix == mix && c.policy == policy)
            .expect("cell present")
    }

    #[test]
    fn fluctuation_overhead_is_a_small_constant_for_every_mix() {
        // The intro's claim: the system can reclaim and redistribute cache
        // freely. Overhead vs the static fair-share baseline stays near 1
        // for every mix × policy (the √k sharing cost is already in the
        // baseline; what's measured here is purely the cost of dynamics).
        let result = run(Scale::Quick).expect("e13 runs");
        for c in &result.cells {
            assert!(
                (0.4..2.0).contains(&c.overhead),
                "{} / {}: overhead {}",
                c.mix,
                c.policy,
                c.overhead
            );
        }
    }

    #[test]
    fn emergent_profiles_are_never_adversarial() {
        // log_4(n)+1 would be the adversarial ratio; emergent allocation
        // patterns stay far below it for every job in every schedule.
        let result = run(Scale::Quick).expect("e13 runs");
        let adversarial = 6.0; // log_4(1024) + 1 at quick scale
        for c in &result.cells {
            assert!(
                c.worst_ratio < 0.7 * adversarial,
                "{} / {}: worst ratio {}",
                c.mix,
                c.policy,
                c.worst_ratio
            );
        }
    }

    #[test]
    fn equal_shares_are_fair_and_winner_take_all_is_not() {
        let result = run(Scale::Quick).expect("e13 runs");
        for mix in ["4x MM-Inplace", "4x MM-Scan"] {
            let equal = cell(&result, mix, "equal-shares");
            assert!(equal.fairness > 0.95, "{mix}: fairness {}", equal.fairness);
            let wta = cell(&result, mix, "winner-take-all(8)");
            assert!(
                wta.fairness <= equal.fairness + 1e-9,
                "{mix}: wta {} vs equal {}",
                wta.fairness,
                equal.fairness
            );
        }
    }
}

/// Registry adapter: E13 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e13"
    }
    fn title(&self) -> &'static str {
        "Multi-programmed cache scheduling policies"
    }
    fn deterministic(&self) -> bool {
        true // per-trial RNG + trial-ordered reduction: bit-identical at any thread count
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for cell in &result.cells {
            let base = format!("{}/{}", cell.mix, cell.policy);
            metrics.push(crate::harness::metric(
                format!("{base}/overhead"),
                cell.overhead,
            ));
            metrics.push(crate::harness::metric(
                format!("{base}/fairness"),
                cell.fairness,
            ));
            metrics.push(crate::harness::metric(
                format!("{base}/worst_ratio"),
                cell.worst_ratio,
            ));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
