//! **E10 — realistic contention profiles behave like smoothed profiles.**
//!
//! The paper's introduction motivates adaptivity with real cache dynamics:
//! winner-take-all growth-and-crash allocations, and fair sharing among a
//! churning tenant population. Neither pattern tracks an algorithm's
//! recursive structure, so (per the smoothing intuition) MM-Scan should be
//! near-optimally adaptive on them — in contrast to the tailored E1
//! profile built from exactly the same range of box sizes.

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::try_run_trials;
use cadapt_analysis::table::fnum;
use cadapt_analysis::{Stats, Table};
use cadapt_profiles::contention::multi_tenant;
use cadapt_profiles::sawtooth_squares;
use cadapt_recursion::{run_on_profile, AbcParams, RunConfig};

/// Result of E10.
#[derive(Debug)]
pub struct E10Result {
    /// Printed table.
    pub table: Table,
    /// Classified series per contention pattern.
    pub series: Vec<RatioSeries>,
}

/// Run E10 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run(scale: Scale) -> Result<E10Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E10 fanning trials over `threads` workers (0 = available
/// parallelism). Bit-identical at any thread count: per-trial seeded RNG
/// plus trial-ordered reduction.
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E10Result, BenchError> {
    let params = AbcParams::mm_scan();
    let trials = scale.pick(8, 32);
    let k_hi = scale.pick(5, 7);
    let mut table = Table::new(
        "E10: MM-Scan on realistic contention profiles (square-approximated)",
        &["pattern", "n", "ratio", "ci95"],
    );
    let mut sawtooth_points = Vec::new();
    let mut tenant_points = Vec::new();
    for n in size_sweep(&params, 2, k_hi, u64::MAX) {
        // Winner-take-all sawtooth spanning the algorithm's size range.
        // The profile is deterministic (memoized process-wide); vary the
        // phase by rotating.
        let squares = sawtooth_squares(1, n, u128::from(n), 16 * u128::from(n));
        let ratios = try_run_trials(trials, threads, |trial| {
            let mut rng = trial_rng(0xE10, trial);
            let shifted = cadapt_profiles::perturb::random_cyclic_shift(&squares, &mut rng);
            let mut source = shifted.cycle();
            run_on_profile(params, n, &mut source, &RunConfig::default()).map(|r| r.ratio())
        })
        .map_err(|e| BenchError::from_sweep(&format!("E10 sawtooth n={n}"), e))?;
        let mut stats = Stats::new();
        for ratio in ratios {
            stats.push(ratio);
        }
        table.push_row(vec![
            "sawtooth".to_string(),
            n.to_string(),
            fnum(stats.mean),
            fnum(stats.ci95()),
        ]);
        sawtooth_points.push((log_b(&params, n), stats.mean));

        // Multi-tenant fair sharing with churn (profile is per-trial
        // random, so there is nothing to memoize).
        let ratios = try_run_trials(trials, threads, |trial| {
            let mut rng = trial_rng(0x10E, trial);
            let profile = multi_tenant(
                2 * n,
                8,
                u128::from(n / 4 + 1),
                0.5,
                32 * u128::from(n),
                &mut rng,
            );
            let squares = profile.inner_squares();
            let mut source = squares.cycle();
            run_on_profile(params, n, &mut source, &RunConfig::default()).map(|r| r.ratio())
        })
        .map_err(|e| BenchError::from_sweep(&format!("E10 multi-tenant n={n}"), e))?;
        let mut stats = Stats::new();
        for ratio in ratios {
            stats.push(ratio);
        }
        table.push_row(vec![
            "multi-tenant".to_string(),
            n.to_string(),
            fnum(stats.mean),
            fnum(stats.ci95()),
        ]);
        tenant_points.push((log_b(&params, n), stats.mean));
    }
    let series = vec![
        RatioSeries::classify("sawtooth", sawtooth_points),
        RatioSeries::classify("multi-tenant", tenant_points),
    ];
    Ok(E10Result { table, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn contention_profiles_are_not_adversarial() {
        let result = run(Scale::Quick).expect("e10 runs");
        for s in &result.series {
            assert_ne!(
                s.class,
                GrowthClass::Logarithmic,
                "{}: slope {} — realistic contention should not behave adversarially",
                s.label,
                s.fit.slope
            );
            let max = s.points.iter().map(|p| p.1).fold(0.0, f64::max);
            assert!(max < 10.0, "{}: max ratio {max}", s.label);
        }
    }
}

/// Registry adapter: E10 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e10"
    }
    fn title(&self) -> &'static str {
        "Realistic contention profiles (square-approximated)"
    }
    fn deterministic(&self) -> bool {
        true // per-trial RNG + trial-ordered reduction: bit-identical at any thread count
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for series in &result.series {
            crate::harness::push_series(&mut metrics, "series", series);
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
