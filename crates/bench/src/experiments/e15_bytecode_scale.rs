//! **E15 — compiled trace replay at scales the event vector cannot hold.**
//!
//! The bytecode pipeline (`cadapt_trace::bytecode`) stores a trace as a
//! compact program — delta-encoded accesses, run-length scans, counted
//! loops — and both replay backends stream events straight out of it.
//! This experiment validates the pipeline end to end and then exercises
//! it at scale:
//!
//! 1. **Validation** — at a common small size, for every corpus algorithm
//!    (the vEB search workload included): structural emission must equal
//!    recompilation of the recorded trace byte for byte, the decoded
//!    stream must equal the recorded event vector event for event, and
//!    the simulator must return identical results fed from either
//!    representation across fixed caches, square-box menus (per-box
//!    history included), and a sawtooth m(t) profile. Any inequality is a
//!    typed invariant failure, not a wrong table.
//! 2. **Scale** — every corpus algorithm is compiled by structural
//!    emission (no `Vec<TraceEvent>` is ever materialised) at inputs ≥ 8×
//!    the accesses of E14's simulated-replay stage, then replayed through
//!    the *simulator* by streaming decode: fixed-cache and constant-box
//!    square replays whose event vectors would occupy hundreds of
//!    megabytes run out of a few hundred kilobytes of bytecode. The table
//!    records the bytes-per-event and compression ratios that make this
//!    possible.
//!
//! Programs come from the memoized corpus store (`cadapt_trace::corpus`),
//! so trial workers and repeated stages share one compile.

use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::Table;
use cadapt_core::profile::ConstantSource;
use cadapt_core::{cast, MemoryProfile, SquareProfile};
use cadapt_paging::{replay_fixed, replay_memory_profile, replay_square_profile_history};
use cadapt_trace::{compile, compiled, TraceAlgo};

/// Side used for the representation-equivalence validation stage.
const VALIDATE_SIDE: usize = 16;
const BLOCK_WORDS: u64 = 4;
/// Bytes one event occupies in the `Vec<TraceEvent>` representation.
const VEC_BYTES_PER_EVENT: u64 = 16;

/// Result of E15.
#[derive(Debug)]
pub struct E15Result {
    /// Per-algorithm validation outcomes at the common size.
    pub validation_table: Table,
    /// Compression and streamed-replay numbers at scale.
    pub scale_table: Table,
    /// Equalities checked during validation.
    pub checks: u64,
    /// Per algorithm at scale: (label, accesses, bytecode bytes).
    pub sizes: Vec<(String, u64, u64)>,
    /// Per algorithm at scale: (label, vec bytes / bytecode bytes).
    pub compressions: Vec<(String, f64)>,
    /// Smallest accesses ratio (at-scale / validation size) over the
    /// corpus — the "beyond E14's simulated regime" margin.
    pub min_growth: f64,
}

/// Run E15.
///
/// # Errors
///
/// Any representation disagreement during validation is reported as a
/// typed invariant failure.
#[allow(clippy::too_many_lines)]
pub fn run(scale: Scale) -> Result<E15Result, BenchError> {
    let side = scale.pick(64, 128);

    // 1. Validate: bytecode is a lossless representation and the replay
    //    backends are representation-blind.
    let mut validation_table = Table::new(
        "E15a: bytecode representation validation (side 16)",
        &["algorithm", "mode", "checks", "verdict"],
    );
    let mut checks = 0u64;
    for algo in TraceAlgo::EXTENDED {
        let trace = algo.trace(VALIDATE_SIDE, BLOCK_WORDS);
        let program = compiled(algo, VALIDATE_SIDE, BLOCK_WORDS);
        let rho = algo.potential();

        // Structural emission == recompilation of the recorded trace.
        if compile(&trace) != *program {
            return Err(BenchError::invariant(format!(
                "E15: {} structural emission diverged from recompilation",
                algo.label()
            )));
        }
        // Decoded stream == recorded event vector.
        if !program.events().eq(trace.events().iter().copied()) {
            return Err(BenchError::invariant(format!(
                "E15: {} decoded stream diverged from recorded events",
                algo.label()
            )));
        }
        let bytecode_checks = 2u64;

        let mut fixed_checks = 0u64;
        for m in [0u64, 1, 16, 256, 1 << 20] {
            let from_vec = replay_fixed(&trace, m);
            let from_stream = replay_fixed(&*program, m);
            if from_vec != from_stream {
                return Err(BenchError::invariant(format!(
                    "E15: {} fixed M={m}: vec {} vs stream {}",
                    algo.label(),
                    from_vec.io,
                    from_stream.io
                )));
            }
            fixed_checks += 1;
        }

        let mut square_checks = 0u64;
        for menu in [vec![16u64], vec![4, 1, 64]] {
            let profile = SquareProfile::new(menu.clone())
                .map_err(|e| BenchError::invariant(format!("E15 menu {menu:?}: {e}")))?;
            let (vec_report, vec_boxes) =
                replay_square_profile_history(&trace, &mut profile.cycle(), rho);
            let (stream_report, stream_boxes) =
                replay_square_profile_history(&*program, &mut profile.cycle(), rho);
            if vec_report != stream_report || vec_boxes != stream_boxes {
                return Err(BenchError::invariant(format!(
                    "E15: {} menu {menu:?}: representations diverged",
                    algo.label()
                )));
            }
            square_checks += 1;
        }

        let tooth: Vec<u64> = (1..=32).chain((1..=32).rev()).collect();
        let steps: Vec<u64> = tooth
            .iter()
            .cycle()
            .take(tooth.len() * 64)
            .copied()
            .collect();
        let profile = MemoryProfile::from_steps(&steps)
            .map_err(|e| BenchError::invariant(format!("E15 sawtooth: {e}")))?;
        if replay_memory_profile(&trace, &profile) != replay_memory_profile(&*program, &profile) {
            return Err(BenchError::invariant(format!(
                "E15: {} sawtooth m(t): representations diverged",
                algo.label()
            )));
        }
        let profile_checks = 1u64;

        for (mode, n) in [
            ("bytecode", bytecode_checks),
            ("fixed", fixed_checks),
            ("square", square_checks),
            ("profile", profile_checks),
        ] {
            validation_table.push_row(vec![
                algo.label().to_string(),
                mode.to_string(),
                n.to_string(),
                "equal".to_string(),
            ]);
            checks += n;
        }
    }

    // 2. Scale: structural compilation + streamed simulated replay at
    //    sizes whose event vectors would dwarf the bytecode.
    let mut scale_table = Table::new(
        "E15b: compiled traces and streamed simulated replay at scale",
        &[
            "algorithm",
            "accesses",
            "events",
            "bytecode B",
            "vec B",
            "compression",
            "I/O @ M=4096",
            "I/O @ box 4096",
        ],
    );
    let mut sizes = Vec::new();
    let mut compressions = Vec::new();
    let mut min_growth = f64::INFINITY;
    for algo in TraceAlgo::EXTENDED {
        let program = compiled(algo, side, BLOCK_WORDS);
        let small = compiled(algo, VALIDATE_SIDE, BLOCK_WORDS);
        let accesses = program.accesses();
        let events = program.event_count();
        let bytecode_bytes = cast::u64_from_usize(program.byte_len());
        let vec_bytes = events * u128::from(VEC_BYTES_PER_EVENT);
        let compression = vec_bytes as f64 / bytecode_bytes as f64;
        let growth = accesses as f64 / small.accesses() as f64;
        min_growth = min_growth.min(growth);

        let fixed = replay_fixed(&*program, 1 << 12);
        let (square, _) = replay_square_profile_history(
            &*program,
            &mut ConstantSource::new(1 << 12),
            algo.potential(),
        );

        scale_table.push_row(vec![
            algo.label().to_string(),
            accesses.to_string(),
            events.to_string(),
            bytecode_bytes.to_string(),
            vec_bytes.to_string(),
            fnum(compression),
            fixed.io.to_string(),
            square.total_io.to_string(),
        ]);
        sizes.push((algo.label().to_string(), accesses, bytecode_bytes));
        compressions.push((algo.label().to_string(), compression));
    }

    Ok(E15Result {
        validation_table,
        scale_table,
        checks,
        sizes,
        compressions,
        min_growth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_passes_and_counts() {
        let result = run(Scale::Quick).expect("e15 runs");
        // 2 bytecode + 5 fixed + 2 square + 1 profile per corpus algorithm.
        assert_eq!(result.checks, 10 * TraceAlgo::EXTENDED.len() as u64);
    }

    #[test]
    fn quick_scale_exceeds_e14_simulated_sizes_by_8x() {
        // E14 runs its simulated replays at side 16; E15's quick scale
        // (side 64) must replay at least 8× those access counts — the
        // sizes the streaming representation exists for.
        let result = run(Scale::Quick).expect("e15 runs");
        assert!(
            result.min_growth >= 8.0,
            "smallest at-scale growth {} < 8x",
            result.min_growth
        );
    }

    #[test]
    fn every_corpus_program_beats_the_vector_representation() {
        let result = run(Scale::Quick).expect("e15 runs");
        for (label, compression) in &result.compressions {
            assert!(
                *compression >= 2.0,
                "{label}: compression {compression} < 2x"
            );
        }
    }
}

/// Registry adapter: E15 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e15"
    }
    fn title(&self) -> &'static str {
        "Compiled trace replay: bytecode validation and streamed replay at scale"
    }
    fn deterministic(&self) -> bool {
        true // pure functions of deterministic traces
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = vec![
            crate::harness::metric("validation/checks", result.checks as f64),
            crate::harness::metric("scale/min_growth", result.min_growth),
        ];
        for (label, accesses, bytes) in &result.sizes {
            metrics.push(crate::harness::metric(
                format!("accesses/{label}"),
                *accesses as f64,
            ));
            metrics.push(crate::harness::metric(
                format!("bytecode_bytes/{label}"),
                *bytes as f64,
            ));
        }
        for (label, compression) in &result.compressions {
            metrics.push(crate::harness::metric(
                format!("compression/{label}"),
                *compression,
            ));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![
                result.validation_table.render(),
                result.scale_table.render(),
            ],
        })
    }
}
