//! **E6 — the Lemma 3 recurrence predicts the measurement.**
//!
//! For discrete Σ the recurrence engine produces rigorous bounds
//! [f_lo, f_hi] on the expected number of boxes f(n) and on the expected
//! adaptivity ratio (Eq. 3). This experiment measures both by Monte Carlo
//! and checks containment — the theory and the simulator validating each
//! other.

use crate::{BenchError, Scale};
use cadapt_analysis::recurrence::{
    equation6_checks, equation7_checks, equation8_products, recurrence_bounds, DiscreteSigma,
    Equation6Check,
};
use cadapt_analysis::table::fnum;
use cadapt_analysis::{monte_carlo_ratio, McConfig, Table};
use cadapt_profiles::dist::{BoxDist, DynDistSource, PointMass, PowerOfB};
use cadapt_recursion::AbcParams;

/// One comparison row.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Distribution label.
    pub dist: String,
    /// Problem size.
    pub n: u64,
    /// Recurrence lower bound on f(n).
    pub f_lo: f64,
    /// Measured mean boxes (f(n) estimate).
    pub f_measured: f64,
    /// Recurrence upper bound on f(n).
    pub f_hi: f64,
    /// Half-width of the measurement's 95% CI.
    pub ci95: f64,
}

impl E6Row {
    /// Does the measurement fall inside the predicted interval (with CI
    /// slack)?
    #[must_use]
    pub fn contained(&self) -> bool {
        self.f_measured + self.ci95 >= self.f_lo && self.f_measured - self.ci95 <= self.f_hi
    }
}

/// Result of E6.
#[derive(Debug)]
pub struct E6Result {
    /// Printed table.
    pub table: Table,
    /// Raw rows for assertions.
    pub rows: Vec<E6Row>,
    /// The Eq. 6/8 diagnostic table.
    pub eq6_table: Table,
    /// Per-distribution Eq. 6 checks with their telescoped products.
    pub eq6: Vec<(String, Vec<Equation6Check>, f64)>,
    /// Per-distribution Eq. 7 step checks paired with the level's predicted
    /// ratio (Eq. 9's gate), plus the Eq. 8 product estimates.
    pub eq7_eq8: Vec<Eq7Eq8Row>,
}

/// One distribution's Eq. 7/8 record: (label, per-level (check, ratio_hi),
/// (Eq. 8 product lo-chain, hi-chain)).
pub type Eq7Eq8Row = (String, Vec<(Equation6Check, f64)>, (f64, f64));

fn sigmas(n_max: u64) -> Vec<Box<dyn BoxDist>> {
    let k_max = cadapt_core::potential::exact_log(4, n_max).unwrap_or(6);
    vec![
        Box::new(PointMass { size: 1 }),
        Box::new(PointMass { size: n_max }),
        Box::new(PowerOfB::new(4, 0, k_max)),
        Box::new(PowerOfB::new(4, 1, 2)),
    ]
}

/// Run E6 (MM-Scan parameters, §4 conventions: base 1, scans at end) with
/// the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a Monte-Carlo failure, keyed by the offending trial.
pub fn run(scale: Scale) -> Result<E6Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E6 with an explicit worker budget for the Monte-Carlo trial
/// fan-out (0 = available parallelism).
///
/// # Errors
///
/// Propagates a Monte-Carlo failure, keyed by the offending trial.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E6Result, BenchError> {
    let params = AbcParams::mm_scan();
    let trials = scale.pick(96, 192);
    let k_hi = scale.pick(5, 7);
    let n_max = params.canonical_size(k_hi);
    let mut table = Table::new(
        "E6: Lemma-3 recurrence bounds vs Monte-Carlo f(n) (MM-Scan)",
        &[
            "distribution",
            "n",
            "f_lo",
            "measured",
            "f_hi",
            "ci95",
            "contained",
        ],
    );
    let mut eq6_table = Table::new(
        "E6b: the Eq. 6 induction step — measured f(n)/f(n/b) vs b^e·m_{n/b}/m_n",
        &["distribution", "n", "growth", "bound", "margin", "holds"],
    );
    let mut rows = Vec::new();
    let mut eq6 = Vec::new();
    let mut eq7_eq8 = Vec::new();
    for dist in sigmas(n_max) {
        let sigma = DiscreteSigma::from_dist(dist.as_ref())?;
        let bounds = recurrence_bounds(params.a(), params.b(), &sigma, k_hi);
        let eq7 = equation7_checks(params.a(), params.b(), &bounds);
        let eq7_with_gate: Vec<(Equation6Check, f64)> = eq7
            .iter()
            .zip(bounds.iter().skip(1))
            .map(|(c, rb)| (*c, rb.ratio_hi))
            .collect();
        eq7_eq8.push((dist.label(), eq7_with_gate, equation8_products(&bounds)));
        let mut f_by_level = vec![1.0]; // f(1) = 1: any box completes a leaf
        for k in 1..=k_hi {
            let n = params.canonical_size(k);
            let config = McConfig {
                trials,
                seed: 0xE6B,
                threads,
                ..McConfig::default()
            };
            let summary = monte_carlo_ratio(params, n, &config, |rng| {
                DynDistSource::new(dist.as_ref(), rng)
            })?;
            f_by_level.push(summary.boxes.mean);
        }
        let checks = equation6_checks(params.a(), params.b(), &sigma, &f_by_level);
        for c in &checks {
            eq6_table.push_row(vec![
                dist.label(),
                c.n.to_string(),
                fnum(c.growth),
                fnum(c.bound),
                fnum(c.margin()),
                c.holds().to_string(),
            ]);
        }
        let product: f64 = checks.iter().map(Equation6Check::margin).product();
        eq6.push((dist.label(), checks, product));
        for k in 2..=k_hi {
            let n = params.canonical_size(k);
            let rb = bounds[k as usize];
            let config = McConfig {
                trials,
                seed: 0xE6,
                threads,
                ..McConfig::default()
            };
            let summary = monte_carlo_ratio(params, n, &config, |rng| {
                DynDistSource::new(dist.as_ref(), rng)
            })?;
            let row = E6Row {
                dist: dist.label(),
                n,
                f_lo: rb.f_lo,
                f_measured: summary.boxes.mean,
                f_hi: rb.f_hi,
                ci95: summary.boxes.ci95(),
            };
            table.push_row(vec![
                row.dist.clone(),
                n.to_string(),
                fnum(row.f_lo),
                fnum(row.f_measured),
                fnum(row.f_hi),
                fnum(row.ci95),
                row.contained().to_string(),
            ]);
            rows.push(row);
        }
    }
    Ok(E6Result {
        table,
        rows,
        eq6_table,
        eq6,
        eq7_eq8,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_fall_in_predicted_intervals() {
        let result = run(Scale::Quick).expect("e6 runs");
        assert!(!result.rows.is_empty());
        let violations: Vec<_> = result.rows.iter().filter(|r| !r.contained()).collect();
        assert!(
            violations.is_empty(),
            "recurrence bounds violated: {violations:?}"
        );
    }

    #[test]
    fn equation8_product_is_bounded_even_when_equation6_fails() {
        // The paper: individual Eq. 6 steps may exceed 1, but the
        // aggregate effect of scans over all levels is a constant (Eq. 8).
        let result = run(Scale::Quick).expect("e6 runs");
        let mut saw_violation = false;
        for (label, checks, product) in &result.eq6 {
            saw_violation |= checks.iter().any(|c| !c.holds());
            assert!(
                *product < 8.0,
                "{label}: telescoped margin product {product}"
            );
        }
        assert!(
            saw_violation,
            "at least one Σ should violate a naive Eq. 6 step (point(1) does)"
        );
    }

    #[test]
    fn equation7_holds_at_the_boundary_and_equation8_is_bounded() {
        // The semi-inductive skeleton of the paper's proof: Eq. 7 is only
        // claimed where Eq. 9 holds (the predicted ratio is on the cusp of
        // violating adaptivity, here gated at ≥ 2); Eq. 8's scan-inflation
        // product must be O(1) unconditionally.
        let result = run(Scale::Quick).expect("e6 runs");
        let mut gated_checks = 0;
        for (label, eq7, (lo, hi)) in &result.eq7_eq8 {
            for (check, ratio_hi) in eq7 {
                if *ratio_hi >= 2.0 {
                    gated_checks += 1;
                    assert!(
                        check.holds(),
                        "{label} n={}: Eq. 7 fails at the boundary (margin {})",
                        check.n,
                        check.margin()
                    );
                }
            }
            assert!(
                *lo >= 1.0 - 1e-9 && *hi < 8.0,
                "{label}: Eq. 8 ({lo}, {hi})"
            );
        }
        assert!(gated_checks > 0, "the Eq. 9 gate should fire for some Σ");
    }

    #[test]
    fn point_mass_n_needs_one_box() {
        let result = run(Scale::Quick).expect("e6 runs");
        // For Σ = point(n_max) at n = n_max the prediction and measurement
        // are both exactly 1.
        let row = result
            .rows
            .iter()
            .filter(|r| r.dist.starts_with("point(") && r.dist != "point(1)")
            .max_by_key(|r| r.n)
            .unwrap();
        assert!((row.f_measured - 1.0).abs() < 1e-9);
        assert!((row.f_lo - 1.0).abs() < 1e-9);
    }
}

/// Registry adapter: E6 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e6"
    }
    fn title(&self) -> &'static str {
        "Lemma 3 recurrence bounds and the Eq. 6-8 checks"
    }
    fn deterministic(&self) -> bool {
        false // compared by CI overlap: goldens stay robust to trial-count retunings
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for row in &result.rows {
            let base = format!("rows/{}/n{}", row.dist, row.n);
            metrics.push(crate::harness::metric(format!("{base}/lo"), row.f_lo));
            metrics.push(crate::harness::metric_ci(
                format!("{base}/measured"),
                row.f_measured,
                row.ci95,
            ));
            metrics.push(crate::harness::metric(format!("{base}/hi"), row.f_hi));
        }
        for (label, _, product) in &result.eq6 {
            metrics.push(crate::harness::metric(
                format!("eq6/{label}/product"),
                *product,
            ));
        }
        for (label, _, (lo, hi)) in &result.eq7_eq8 {
            metrics.push(crate::harness::metric(format!("eq8/{label}/lo"), *lo));
            metrics.push(crate::harness::metric(format!("eq8/{label}/hi"), *hi));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render(), result.eq6_table.render()],
        })
    }
}
