//! Shared helpers for the experiment modules.

use cadapt_analysis::{classify_growth, GrowthClass, LineFit};
use cadapt_recursion::AbcParams;

/// A (log_b n, ratio) series for one configuration, with its growth
/// verdict.
#[derive(Debug, Clone)]
pub struct RatioSeries {
    /// Configuration label.
    pub label: String,
    /// (log_b n, mean ratio) points.
    pub points: Vec<(f64, f64)>,
    /// Growth classification.
    pub class: GrowthClass,
    /// The underlying line fit.
    pub fit: LineFit,
}

impl RatioSeries {
    /// Classify a finished point series.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two points.
    #[must_use]
    pub fn classify(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        let (class, fit) = classify_growth(&points);
        RatioSeries {
            label: label.into(),
            points,
            class,
            fit,
        }
    }
}

/// The canonical sweep of problem sizes for `params`: levels
/// `k_lo ..= k_hi` (clamped so n stays ≤ `n_cap`).
#[must_use]
pub fn size_sweep(params: &AbcParams, k_lo: u32, k_hi: u32, n_cap: u64) -> Vec<u64> {
    (k_lo..=k_hi)
        .map(|k| params.canonical_size(k))
        .filter(|&n| n <= n_cap)
        .collect()
}

/// log_b n as f64.
#[must_use]
pub fn log_b(params: &AbcParams, n: u64) -> f64 {
    (n as f64).ln() / (params.b() as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_respects_cap() {
        let p = AbcParams::mm_scan();
        assert_eq!(size_sweep(&p, 1, 5, 300), vec![4, 16, 64, 256]);
    }

    #[test]
    fn log_b_values() {
        let p = AbcParams::mm_scan();
        assert!((log_b(&p, 256) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn classify_wraps_fit() {
        let s = RatioSeries::classify("demo", vec![(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        assert_eq!(s.class, GrowthClass::Constant);
        assert_eq!(s.label, "demo");
    }
}
