//! **E12 — scan-hiding rescues worst-case adaptivity** (Lincoln et al.
//! SPAA '18, the paper's cited alternative to smoothing).
//!
//! The paper closes the gap *on average* (smoothing); scan-hiding closes it
//! *in the worst case* by restructuring the algorithm: interleave scan work
//! with the recursion so no standalone scans remain for the adversary to
//! waste boxes on. At the model level the transformed algorithm is
//! (a, b, 0)-regular with an O(1)-larger base case
//! ([`AbcParams::scan_hidden`]).
//!
//! Measured here: on the *matched* adversarial profile, the original pays
//! Θ(log_b n) while the transformed algorithm converges to a constant —
//! at a bounded work overhead (the trade-off the paper calls "complex,
//! introduces overhead").

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::Table;
use cadapt_profiles::{MatchedWorstCase, WorstCase};
use cadapt_recursion::{run_on_profile, AbcParams, ClosedForms, ExecModel, RunConfig};

/// Result of E12.
#[derive(Debug)]
pub struct E12Result {
    /// Printed table.
    pub table: Table,
    /// Series: (original, scan-hidden) per algorithm.
    pub series: Vec<(RatioSeries, RatioSeries)>,
    /// Work overhead factors T_hidden/T_orig at the largest n, per
    /// algorithm.
    pub overheads: Vec<(String, f64)>,
}

/// Run E12.
///
/// # Errors
///
/// Propagates construction or execution failures as typed errors.
pub fn run(scale: Scale) -> Result<E12Result, BenchError> {
    let mut table = Table::new(
        "E12: scan-hiding — worst-case ratio before and after the transformation",
        &["algorithm", "n", "original", "scan-hidden", "work overhead"],
    );
    let mut series = Vec::new();
    let mut overheads = Vec::new();
    for (label, params) in [
        ("MM-Scan (8,4,1)", AbcParams::mm_scan()),
        ("Strassen (7,4,1)", AbcParams::strassen()),
        ("CO-DP (3,2,1)", AbcParams::co_dp()),
    ] {
        let hidden = params.scan_hidden()?;
        let k_hi = if params.b() == 2 {
            scale.pick(11, 13)
        } else {
            scale.pick(7, 8)
        };
        let config = RunConfig {
            model: ExecModel::capacity(),
            ..RunConfig::default()
        };
        let mut orig_points = Vec::new();
        let mut hidden_points = Vec::new();
        let mut overhead = 0.0;
        for sweep_n in size_sweep(&params, 2, k_hi, u64::MAX) {
            let k = params.depth_of(sweep_n).ok_or_else(|| {
                BenchError::invariant(format!("E12 {label}: {sweep_n} is not a canonical size"))
            })?;
            let n = params.canonical_size(k);
            // Original on its own adversary.
            let wc = WorstCase::for_problem(&params, n)?;
            let mut source = wc.source();
            let orig = run_on_profile(params, n, &mut source, &config)?;
            // Transformed algorithm on the adversary matched to *it*
            // (same recursion depth; base cases grown by the hidden work).
            let hn = hidden.canonical_size(k);
            let mut matched = MatchedWorstCase::new(hidden, hn)?;
            let hid = run_on_profile(hidden, hn, &mut matched, &config)?;
            overhead = ClosedForms::for_size(hidden, hn)?.total_time() as f64
                / ClosedForms::for_size(params, n)?.total_time() as f64;
            table.push_row(vec![
                label.to_string(),
                n.to_string(),
                fnum(orig.ratio()),
                fnum(hid.ratio()),
                fnum(overhead),
            ]);
            orig_points.push((log_b(&params, n), orig.ratio()));
            hidden_points.push((log_b(&params, n), hid.ratio()));
        }
        series.push((
            RatioSeries::classify(format!("{label} original"), orig_points),
            RatioSeries::classify(format!("{label} scan-hidden"), hidden_points),
        ));
        overheads.push((label.to_string(), overhead));
    }
    Ok(E12Result {
        table,
        series,
        overheads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn scan_hiding_closes_the_worst_case_gap() {
        let result = run(Scale::Quick).expect("e12 runs");
        for (orig, hidden) in &result.series {
            assert_eq!(
                orig.class,
                GrowthClass::Logarithmic,
                "{}: slope {}",
                orig.label,
                orig.fit.slope
            );
            assert_ne!(
                hidden.class,
                GrowthClass::Logarithmic,
                "{}: slope {}",
                hidden.label,
                hidden.fit.slope
            );
            // The transformed ratio stays below the original's final value.
            let hidden_max = hidden.points.iter().map(|p| p.1).fold(0.0, f64::max);
            let orig_final = orig.points.last().unwrap().1;
            assert!(hidden_max < orig_final, "{}", hidden.label);
        }
    }

    #[test]
    fn overhead_is_a_small_constant() {
        let result = run(Scale::Quick).expect("e12 runs");
        for (label, overhead) in &result.overheads {
            assert!(
                (1.0..2.5).contains(overhead),
                "{label}: overhead {overhead}"
            );
        }
    }
}

/// Registry adapter: E12 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e12"
    }
    fn title(&self) -> &'static str {
        "Scan-hiding: worst-case ratio before and after"
    }
    fn deterministic(&self) -> bool {
        true // worst-case profiles, no randomness
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = Vec::new();
        for (original, hidden) in &result.series {
            crate::harness::push_series(&mut metrics, "original", original);
            crate::harness::push_series(&mut metrics, "scan_hidden", hidden);
        }
        for (label, overhead) in &result.overheads {
            metrics.push(crate::harness::metric(
                format!("overhead/{label}"),
                *overhead,
            ));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
