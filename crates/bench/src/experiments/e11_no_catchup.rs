//! **E11 — the No-Catch-up Lemma at scale** (Lemma 2).
//!
//! The property tests in `cadapt-recursion` already check the lemma on
//! small instances; this experiment hammers it with large randomized
//! instances across algorithms, models, and box regimes, reporting the
//! count of checked instances (all of which must hold — a violation is a
//! simulator bug, not a finding about the paper).

use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::{try_run_trials, SweepError};
use cadapt_analysis::Table;
use cadapt_core::cast;
use cadapt_recursion::no_catchup::final_positions;
use cadapt_recursion::{AbcParams, ExecModel};
use rand::Rng;

/// Result of E11.
#[derive(Debug)]
pub struct E11Result {
    /// Printed table.
    pub table: Table,
    /// Total instances checked.
    pub checked: u64,
    /// Instances where the lemma failed (must be 0).
    pub violations: u64,
}

/// Run E11 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a failed instance, keyed by its trial index.
pub fn run(scale: Scale) -> Result<E11Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E11 fanning instances over `threads` workers (0 = available
/// parallelism). Bit-identical at any thread count: per-instance seeded
/// RNG plus instance-ordered reduction.
///
/// # Errors
///
/// Propagates a failed instance, keyed by its trial index.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E11Result, BenchError> {
    let instances = scale.pick(200, 2000);
    let mut table = Table::new(
        "E11: No-Catch-up Lemma — randomized instances checked",
        &["algorithm", "model", "instances", "violations"],
    );
    let mut checked = 0u64;
    let mut violations = 0u64;
    for (label, params, k) in [
        ("MM-Scan", AbcParams::mm_scan(), 4u32),
        ("Strassen", AbcParams::strassen(), 4),
        ("CO-DP", AbcParams::co_dp(), 8),
    ] {
        let n = params.canonical_size(k);
        for model in [ExecModel::Simplified, ExecModel::capacity()] {
            let violated = try_run_trials(instances, threads, |i| {
                let mut rng = trial_rng(0xE11, i);
                let len = rng.gen_range(1..60);
                let boxes: Vec<u64> = (0..len).map(|_| rng.gen_range(1..=2 * n)).collect();
                let s1 = rng.gen_range(0..4 * n);
                let s2 = rng.gen_range(0..4 * n);
                let (early, late) = (s1.min(s2), s1.max(s2));
                final_positions(
                    params,
                    n,
                    &boxes,
                    u128::from(early),
                    u128::from(late),
                    model,
                )
                .map(|(pe, pl)| pe > pl)
            })
            .map_err(|e| match e {
                SweepError::Job { error, .. } => BenchError::Core(error),
                SweepError::Panic(p) => {
                    BenchError::from_trial_panic(&format!("E11 {label} instances"), p)
                }
            })?;
            checked += instances;
            let local_violations = cast::u64_from_usize(violated.iter().filter(|&&v| v).count());
            violations += local_violations;
            table.push_row(vec![
                label.to_string(),
                model.label(),
                instances.to_string(),
                local_violations.to_string(),
            ]);
        }
    }
    Ok(E11Result {
        table,
        checked,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_ever() {
        let result = run(Scale::Quick).expect("e11 runs");
        assert!(result.checked >= 1000);
        assert_eq!(result.violations, 0, "No-Catch-up Lemma violated!");
    }
}

/// Registry adapter: E11 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e11"
    }
    fn title(&self) -> &'static str {
        "No-Catch-up Lemma on randomized instances"
    }
    fn deterministic(&self) -> bool {
        true // per-instance RNG + instance-ordered reduction: bit-identical at any thread count
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let metrics = vec![
            crate::harness::metric("instances_checked", result.checked as f64),
            crate::harness::metric("violations", result.violations as f64),
        ];
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
