//! Experiment implementations, one module per DESIGN.md index entry.

pub mod ablations;
pub mod common;
pub mod e10_contention;
pub mod e11_no_catchup;
pub mod e12_scan_hiding;
pub mod e13_scheduling;
pub mod e14_analytic_scale;
pub mod e15_bytecode_scale;
pub mod e16_streaming_contention;
pub mod e1_worst_case_gap;
pub mod e2_iid_smoothing;
pub mod e3_size_perturb;
pub mod e4_start_shift;
pub mod e5_box_order;
pub mod e6_recurrence;
pub mod e7_potential;
pub mod e8_trace_validation;
pub mod e9_taxonomy;
