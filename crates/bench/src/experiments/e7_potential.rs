//! **E7 — the potential lemma, measured** (Lemma 1).
//!
//! Drop a single box of size x at a grid of execution offsets (plus random
//! ones) and record the best progress observed. Lemma 1 says the maximum
//! is Θ(x^{log_b a}); for the §4 simplified model on canonical box sizes it
//! is *exactly* a^{log_b x} = x^{log_b a} (the box completes one size-x
//! subtree at best).

use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::table::fnum;
use cadapt_analysis::Table;
use cadapt_recursion::probe::{empirical_potential, probe_offsets};
use cadapt_recursion::{AbcParams, ClosedForms, ExecModel};

/// One measurement row.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Algorithm label.
    pub algo: String,
    /// Execution model label.
    pub model: String,
    /// Box size probed.
    pub box_size: u64,
    /// Best progress observed.
    pub measured: u128,
    /// ρ(x) = x^{log_b a}.
    pub rho: f64,
}

/// Result of E7.
#[derive(Debug)]
pub struct E7Result {
    /// Printed table.
    pub table: Table,
    /// Raw rows.
    pub rows: Vec<E7Row>,
}

/// Run E7.
///
/// # Errors
///
/// Propagates a failed probe as a typed error.
pub fn run(scale: Scale) -> Result<E7Result, BenchError> {
    let k_hi = scale.pick(4, 6);
    let random_probes = scale.pick(64, 512);
    let mut table = Table::new(
        "E7: measured box potential vs ρ(x) = x^{log_b a}",
        &[
            "algorithm",
            "model",
            "box x",
            "max progress",
            "rho(x)",
            "measured/rho",
        ],
    );
    let mut rows = Vec::new();
    for (algo, params) in [
        ("MM-Scan (8,4,1)", AbcParams::mm_scan()),
        ("Strassen (7,4,1)", AbcParams::strassen()),
        ("CO-DP (3,2,1)", AbcParams::co_dp()),
    ] {
        let n = params.canonical_size(k_hi + 2);
        let cf = ClosedForms::for_size(params, n)?;
        let mut rng = trial_rng(0xE7, 0);
        let offsets = probe_offsets(cf.total_time(), 128, random_probes, &mut rng);
        for model in [ExecModel::Simplified, ExecModel::capacity()] {
            for k in 0..=k_hi {
                let x = params.canonical_size(k);
                let sample = empirical_potential(params, n, x, model, &offsets)?;
                let rho = params.potential().eval(x);
                let row = E7Row {
                    algo: algo.to_string(),
                    model: model.label(),
                    box_size: x,
                    measured: sample.max_progress,
                    rho,
                };
                table.push_row(vec![
                    row.algo.clone(),
                    row.model.clone(),
                    x.to_string(),
                    row.measured.to_string(),
                    fnum(rho),
                    fnum(row.measured as f64 / rho),
                ]);
                rows.push(row);
            }
        }
    }
    Ok(E7Result { table, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplified_model_matches_rho_exactly() {
        let result = run(Scale::Quick).expect("e7 runs");
        for row in result.rows.iter().filter(|r| r.model == "simplified") {
            assert!(
                (row.measured as f64 - row.rho).abs() < 1e-9,
                "{} box {}: measured {} vs rho {}",
                row.algo,
                row.box_size,
                row.measured,
                row.rho
            );
        }
    }

    #[test]
    fn capacity_model_within_constant_factor() {
        let result = run(Scale::Quick).expect("e7 runs");
        for row in result
            .rows
            .iter()
            .filter(|r| r.model.starts_with("capacity"))
        {
            let factor = row.measured as f64 / row.rho;
            assert!(
                (0.9..=8.0).contains(&factor),
                "{} box {}: factor {factor}",
                row.algo,
                row.box_size
            );
        }
    }
}

/// Registry adapter: E7 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e7"
    }
    fn title(&self) -> &'static str {
        "Measured box potential vs rho(x) = x^(log_b a)"
    }
    fn deterministic(&self) -> bool {
        true // serial probes with fixed seeds
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = Vec::new();
        for row in &result.rows {
            let base = format!("{}/{}/x{}", row.algo, row.model, row.box_size);
            metrics.push(crate::harness::metric(
                format!("{base}/measured"),
                row.measured as f64,
            ));
            metrics.push(crate::harness::metric(format!("{base}/rho"), row.rho));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
