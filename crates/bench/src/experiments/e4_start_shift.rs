//! **E4 — random start-time shifts do not close the gap** (§4 robustness).
//!
//! Cyclic-shift the worst-case profile by a uniformly random start *time*
//! (box i becomes the start with probability ∝ |□_i|) and run the
//! algorithm from there. The paper: with constant probability the start
//! lands in a prefix whose suffix still carries a constant fraction of the
//! worst-case potential, so the expected ratio stays Θ(log_b n).

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::try_run_trials;
use cadapt_analysis::table::fnum;
use cadapt_analysis::{Stats, Table};
use cadapt_profiles::perturb::random_cyclic_shift;
use cadapt_profiles::{worst_case_squares, WorstCase};
use cadapt_recursion::{run_on_profile, AbcParams, RunConfig};

/// Result of E4.
#[derive(Debug)]
pub struct E4Result {
    /// Per-row measurements.
    pub table: Table,
    /// The classified ratio series.
    pub series: RatioSeries,
}

/// Run E4 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run(scale: Scale) -> Result<E4Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E4 fanning trials over `threads` workers (0 = available
/// parallelism). Bit-identical at any thread count: per-trial seeded RNG
/// plus trial-ordered reduction.
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E4Result, BenchError> {
    let params = AbcParams::mm_scan();
    let trials = scale.pick(16, 64);
    // Shifted profiles must be materialised; cap the depth so the box count
    // stays manageable (8^7 ≈ 2M boxes at k = 7).
    let k_hi = scale.pick(5, 7);
    let mut table = Table::new(
        "E4: expected ratio under random cyclic start shifts (MM-Scan)",
        &["n", "ratio", "ci95", "min", "max"],
    );
    let mut points = Vec::new();
    for n in size_sweep(&params, 2, k_hi, u64::MAX) {
        let wc = WorstCase::for_problem(&params, n)?;
        // Memoized across sweep points and workers: every trial shifts the
        // same materialised prefix.
        let profile = worst_case_squares(&wc);
        let ratios = try_run_trials(trials, threads, |trial| {
            let mut rng = trial_rng(0xE4, trial);
            let shifted = random_cyclic_shift(&profile, &mut rng);
            let mut source = shifted.cycle();
            run_on_profile(params, n, &mut source, &RunConfig::default()).map(|r| r.ratio())
        })
        .map_err(|e| BenchError::from_sweep(&format!("E4 cyclic shift n={n}"), e))?;
        let mut stats = Stats::new();
        for ratio in ratios {
            stats.push(ratio);
        }
        table.push_row(vec![
            n.to_string(),
            fnum(stats.mean),
            fnum(stats.ci95()),
            fnum(stats.min),
            fnum(stats.max),
        ]);
        points.push((log_b(&params, n), stats.mean));
    }
    let series = RatioSeries::classify("random cyclic shift", points);
    Ok(E4Result { table, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn shifted_profiles_remain_worst_case() {
        let result = run(Scale::Quick).expect("e4 runs");
        assert_eq!(
            result.series.class,
            GrowthClass::Logarithmic,
            "slope {} — a start-time shuffle alone should NOT rescue adaptivity",
            result.series.fit.slope
        );
    }
}

/// Registry adapter: E4 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e4"
    }
    fn title(&self) -> &'static str {
        "Random cyclic start shifts (Section 4)"
    }
    fn deterministic(&self) -> bool {
        true // per-trial RNG + trial-ordered reduction: bit-identical at any thread count
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        crate::harness::push_series(&mut metrics, "series", &result.series);
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
