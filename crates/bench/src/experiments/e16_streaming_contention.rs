//! **E16 — streaming contention pipelines at lengths no materialised
//! profile could hold.**
//!
//! The cursor layer (`cadapt_core::cursor`, `cadapt_profiles::scenario`)
//! claims that any contention scenario — tenants throttled to fair cache
//! shares and time-sliced round-robin — can be *streamed* through the
//! closed-form execution driver with O(1) resident profile state and
//! bit-identical results. This experiment validates the claim and then
//! leans on it:
//!
//! 1. **Validation** — at a common small size: streaming drives must
//!    reproduce the batched `BoxSource` drivers report-for-report
//!    (constant and worst-case feeds), the N-ary [`RoundRobin`] must agree
//!    with the binary `interleave` combinator both on abstract executions
//!    and on LRU trace replays, and a pre-fired [`CancelToken`] must
//!    surface as the typed `Cancelled` outcome at zero boxes. Any
//!    disagreement is a typed invariant failure, not a wrong table.
//! 2. **Scale** — a three-tenant contended round-robin (worst-case
//!    adversary, sawtooth cycle, constant hog), each throttled to its fair
//!    share, is streamed through the execution driver for **64× the
//!    longest trace E15 replays at the same scale** — pipeline lengths
//!    whose materialised `MemoryProfile` would occupy gigabytes. The
//!    pipeline is cut by `take_boxes` at exactly the target, and the
//!    driver's typed `ProfileExhausted { after_boxes }` outcome proves
//!    every box was consumed. When the `count-alloc` meter is compiled in
//!    (the CI perf smoke), the drive runs under a **hard peak-heap
//!    assertion**: resident growth must stay under a fixed ceiling
//!    regardless of pipeline length.

use crate::{BenchError, Scale};
use cadapt_analysis::Table;
use cadapt_core::profile::ConstantSource;
use cadapt_core::{BoxSource, CancelToken, RunCursor, RunCursorExt, SquareProfile};
use cadapt_paging::{replay_square_cursor, replay_square_profile};
use cadapt_profiles::{contended_round_robin, fair_share, RoundRobin, WorstCase};
use cadapt_recursion::{run_cursor_on_profile, run_on_profile, AbcParams, RunConfig, RunError};
use cadapt_trace::{compiled, TraceAlgo};

/// Side used for the small-size validation stage.
const VALIDATE_SIDE: usize = 16;
const BLOCK_WORDS: u64 = 4;
/// E16 streams this many times E15's longest replay at the same scale.
const GROWTH_FACTOR: u64 = 64;
/// Boxes per tenant turn in the round-robin scenarios.
const CHUNK: u64 = 1024;
/// Cache blocks shared by the contending tenants at scale.
const TOTAL_CACHE: u64 = 96;
/// Hard ceiling on resident heap growth while streaming the at-scale
/// pipeline, when the `count-alloc` meter is installed. The streamed
/// state is a few cursor structs and a non-retaining ledger — well under
/// a mebibyte at *any* pipeline length; a materialised profile would blow
/// through this at the first few million boxes.
const PEAK_CEILING_BYTES: u64 = 1 << 20;

/// Result of E16.
#[derive(Debug)]
pub struct E16Result {
    /// Per-check validation outcomes at the common size.
    pub validation_table: Table,
    /// The at-scale streaming drive.
    pub scale_table: Table,
    /// Equalities checked during validation.
    pub checks: u64,
    /// Boxes streamed through the contended pipeline at scale.
    pub boxes_streamed: u64,
    /// `boxes_streamed / max(E15 accesses at this scale)`.
    pub growth_vs_e15: f64,
    /// Peak resident heap growth during the at-scale drive, when the
    /// `count-alloc` meter is installed (always under
    /// `PEAK_CEILING_BYTES` — asserted, not just reported).
    pub peak_heap_bytes: Option<u64>,
}

/// The sawtooth menu the cycling tenant repeats.
fn tooth_profile() -> Result<SquareProfile, BenchError> {
    // cadapt-lint: allow(cursor-materialize) -- the 64-entry sawtooth menu the cycling tenant repeats; fixed size, never grows with pipeline length
    let tooth: Vec<u64> = (1..=32).chain((1..=32).rev()).collect();
    SquareProfile::new(tooth).map_err(|e| BenchError::invariant(format!("E16 tooth menu: {e}")))
}

fn check_equal<T: PartialEq + std::fmt::Debug>(
    table: &mut Table,
    checks: &mut u64,
    name: &str,
    left: &T,
    right: &T,
) -> Result<(), BenchError> {
    if left != right {
        return Err(BenchError::invariant(format!(
            "E16 validation {name}: {left:?} != {right:?}"
        )));
    }
    table.push_row(vec![name.to_string(), "equal".to_string()]);
    *checks += 1;
    Ok(())
}

/// Run E16.
///
/// # Errors
///
/// Any batched-vs-streaming disagreement during validation, a wrong typed
/// outcome from the drivers, or (when metered) a peak-heap ceiling breach
/// is reported as a typed failure.
pub fn run(scale: Scale) -> Result<E16Result, BenchError> {
    run_cancellable(scale, &CancelToken::new())
}

/// Run E16 under an external [`CancelToken`]: the at-scale drive observes
/// the token between runs, so firing it from another thread (or the CLI's
/// `--cancel-after` watcher) aborts the stream with the typed
/// [`BenchError::Cancelled`] outcome instead of running to the target.
///
/// # Errors
///
/// As [`run`], plus [`BenchError::Cancelled`] when `token` fires.
#[allow(clippy::too_many_lines)]
pub fn run_cancellable(scale: Scale, token: &CancelToken) -> Result<E16Result, BenchError> {
    let mm = AbcParams::mm_scan();
    let config = RunConfig::default();
    let mut validation_table = Table::new(
        "E16a: streaming pipelines reproduce batched drivers",
        &["check", "verdict"],
    );
    let mut checks = 0u64;

    // 1a. Streaming == batched on the plain feeds.
    let n1 = mm.canonical_size(scale.pick(6, 7));
    let batched = run_on_profile(mm, n1, &mut ConstantSource::new(16), &config)?;
    let streamed =
        run_cursor_on_profile(mm, n1, &mut ConstantSource::new(16).into_cursor(), &config)?;
    check_equal(
        &mut validation_table,
        &mut checks,
        "constant: batched vs streamed",
        &batched,
        &streamed,
    )?;

    let wc_depth = scale.pick(4, 5);
    let wc = WorstCase::new(8, 4, 1, wc_depth)
        .map_err(|e| BenchError::invariant(format!("E16 worst-case params: {e}")))?;
    let wc_n = mm.canonical_size(wc_depth);
    let batched = run_on_profile(mm, wc_n, &mut wc.source(), &config)?;
    let streamed = run_cursor_on_profile(mm, wc_n, &mut wc.source().into_cursor(), &config)?;
    check_equal(
        &mut validation_table,
        &mut checks,
        "worst-case: batched vs streamed",
        &batched,
        &streamed,
    )?;

    // 1b. N-ary round-robin == binary interleave, on the abstract driver.
    let tooth = tooth_profile()?;
    let rr_tenants: Vec<Box<dyn RunCursor + '_>> = vec![
        Box::new(ConstantSource::new(16).into_cursor()),
        Box::new(tooth.cycle().into_cursor()),
    ];
    let mut rr = RoundRobin::new(rr_tenants, 3);
    let via_rr = run_cursor_on_profile(mm, n1, &mut rr, &config)?;
    let mut il = ConstantSource::new(16)
        .into_cursor()
        .interleave(tooth.cycle().into_cursor(), 3);
    let via_il = run_cursor_on_profile(mm, n1, &mut il, &config)?;
    check_equal(
        &mut validation_table,
        &mut checks,
        "exec: round-robin vs interleave",
        &via_rr,
        &via_il,
    )?;

    // 1c. The same equivalences under LRU trace replay.
    let program = compiled(TraceAlgo::MmInplace, VALIDATE_SIDE, BLOCK_WORDS);
    let rho = TraceAlgo::MmInplace.potential();
    let legacy = replay_square_profile(&*program, &mut ConstantSource::new(16), rho);
    let streamed = replay_square_cursor(&*program, &mut ConstantSource::new(16).into_cursor(), rho)
        .map_err(|e| BenchError::invariant(format!("E16 streamed replay: {e}")))?;
    check_equal(
        &mut validation_table,
        &mut checks,
        "replay: legacy vs streamed",
        &legacy,
        &streamed,
    )?;

    let rr_tenants: Vec<Box<dyn RunCursor + '_>> = vec![
        Box::new(ConstantSource::new(16).into_cursor()),
        Box::new(tooth.cycle().into_cursor()),
    ];
    let mut rr = RoundRobin::new(rr_tenants, 3);
    let via_rr = replay_square_cursor(&*program, &mut rr, rho)
        .map_err(|e| BenchError::invariant(format!("E16 round-robin replay: {e}")))?;
    let mut il = ConstantSource::new(16)
        .into_cursor()
        .interleave(tooth.cycle().into_cursor(), 3);
    let via_il = replay_square_cursor(&*program, &mut il, rho)
        .map_err(|e| BenchError::invariant(format!("E16 interleave replay: {e}")))?;
    check_equal(
        &mut validation_table,
        &mut checks,
        "replay: round-robin vs interleave",
        &via_rr,
        &via_il,
    )?;

    // 1d. Cancellation surfaces as the typed outcome, at zero boxes for a
    //     pre-fired token.
    let fired = CancelToken::new();
    fired.cancel();
    let mut cancelled = ConstantSource::new(16).into_cursor().cancellable(fired);
    let outcome = run_cursor_on_profile(mm, n1, &mut cancelled, &config);
    check_equal(
        &mut validation_table,
        &mut checks,
        "cancellation: typed outcome",
        &outcome.err(),
        &Some(RunError::Cancelled { after_boxes: 0 }),
    )?;

    // 2. Scale: stream a three-tenant contended scenario for 64× E15's
    //    longest replay, under the peak-heap ceiling when metered.
    let side = scale.pick(64, 128);
    let e15_len = TraceAlgo::EXTENDED
        .iter()
        .map(|algo| compiled(*algo, side, BLOCK_WORDS).accesses())
        .max()
        .ok_or_else(|| BenchError::invariant("E16: empty corpus"))?;
    let target = e15_len.saturating_mul(GROWTH_FACTOR);
    // A problem far too large to complete within the pipeline: the typed
    // ProfileExhausted outcome then proves every box was streamed.
    let huge_n = mm.canonical_size(30);
    let wc_scale = WorstCase::new(8, 4, 1, 20)
        .map_err(|e| BenchError::invariant(format!("E16 scale adversary: {e}")))?;
    eprintln!(
        "[cadapt-bench] e16: streaming {target} boxes (64x E15's {e15_len}) through 3 contended tenants…"
    );
    let drive = || -> Result<RunError, BenchError> {
        let tenants: Vec<Box<dyn RunCursor + '_>> = vec![
            Box::new(wc_scale.source().into_cursor()),
            Box::new(tooth.cycle().into_cursor()),
            Box::new(ConstantSource::new(TOTAL_CACHE).into_cursor()),
        ];
        let mut pipeline = contended_round_robin(tenants, CHUNK, TOTAL_CACHE)
            .take_boxes(target)
            .cancellable(token.clone());
        match run_cursor_on_profile(mm, huge_n, &mut pipeline, &config) {
            Err(e) => Ok(e),
            Ok(report) => Err(BenchError::invariant(format!(
                "E16: the at-scale drive completed in {} boxes — huge_n is not huge",
                report.boxes_used
            ))),
        }
    };
    // Warm the process-wide descent-table cache for (mm, huge_n) outside
    // the metered region so the measurement sees only the streaming state.
    let mut warmup = ConstantSource::new(16).into_cursor().take_boxes(4);
    let _ = run_cursor_on_profile(mm, huge_n, &mut warmup, &config);
    let (outcome, peak_heap_bytes) = crate::alloc_meter::measure_peak_growth(drive);
    let outcome = outcome?;
    if let RunError::Cancelled { after_boxes } = outcome {
        // The external token fired mid-stream: surface the typed outcome
        // (exit code 6) rather than an invariant failure.
        return Err(BenchError::Cancelled { after_boxes });
    }
    if outcome
        != (RunError::ProfileExhausted {
            after_boxes: target,
        })
    {
        return Err(BenchError::invariant(format!(
            "E16: expected ProfileExhausted after {target} boxes, got {outcome:?}"
        )));
    }
    if let Some(peak) = peak_heap_bytes {
        if peak > PEAK_CEILING_BYTES {
            return Err(BenchError::invariant(format!(
                "E16: peak heap growth {peak} B exceeds the {PEAK_CEILING_BYTES} B ceiling — \
                 a pipeline is materialising state"
            )));
        }
        eprintln!("[cadapt-bench] e16: peak heap growth {peak} B (ceiling {PEAK_CEILING_BYTES} B)");
    }

    let mut scale_table = Table::new(
        "E16b: contended round-robin streamed through the execution driver",
        &[
            "tenants",
            "chunk",
            "share",
            "boxes streamed",
            "vs E15",
            "outcome",
        ],
    );
    scale_table.push_row(vec![
        "3".to_string(),
        CHUNK.to_string(),
        fair_share(TOTAL_CACHE, 3).to_string(),
        target.to_string(),
        format!("{GROWTH_FACTOR}x"),
        "profile-exhausted at target".to_string(),
    ]);

    Ok(E16Result {
        validation_table,
        scale_table,
        checks,
        boxes_streamed: target,
        growth_vs_e15: target as f64 / e15_len as f64,
        peak_heap_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_passes_and_counts() {
        let result = run(Scale::Quick).expect("e16 runs");
        assert_eq!(result.checks, 6);
        assert!(result.boxes_streamed > 0);
    }

    #[test]
    fn quick_scale_streams_64x_e15_lengths() {
        let result = run(Scale::Quick).expect("e16 runs");
        assert!(
            result.growth_vs_e15 >= 64.0,
            "streamed only {}x E15's lengths",
            result.growth_vs_e15
        );
    }

    #[test]
    fn external_token_cancels_the_scale_drive_with_the_typed_outcome() {
        let token = CancelToken::new();
        token.cancel();
        match run_cancellable(Scale::Quick, &token) {
            Err(BenchError::Cancelled { after_boxes: 0 }) => {}
            other => panic!("expected Cancelled after 0 boxes, got {other:?}"),
        }
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn metered_builds_report_a_peak_under_the_ceiling() {
        let result = run(Scale::Quick).expect("e16 runs");
        let peak = result.peak_heap_bytes.expect("meter is compiled in");
        assert!(peak <= PEAK_CEILING_BYTES, "peak {peak} over ceiling");
    }
}

/// Registry adapter: E16 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e16"
    }
    fn title(&self) -> &'static str {
        "Streaming contention pipelines: constant-memory replay at 64x E15 lengths"
    }
    fn deterministic(&self) -> bool {
        true // pure functions of deterministic pipelines
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_cancellable(ctx.scale, &ctx.cancel)?;
        let metrics = vec![
            crate::harness::metric("validation/checks", result.checks as f64),
            crate::harness::metric("scale/boxes_streamed", result.boxes_streamed as f64),
            crate::harness::metric("scale/growth_vs_e15", result.growth_vs_e15),
        ];
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![
                result.validation_table.render(),
                result.scale_table.render(),
            ],
        })
    }
}
