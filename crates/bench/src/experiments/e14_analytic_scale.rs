//! **E14 — the analytic cache model at scales the simulator cannot reach.**
//!
//! The analytic backend (`cadapt_paging::analytic`) answers fixed-capacity
//! fault counts in O(log A) per query from a once-per-trace summary, and
//! square-profile replays in one arithmetic pass — against the simulator's
//! full per-reference LRU replay *per sweep point*. This experiment puts
//! that to work in three stages:
//!
//! 1. **Cross-validation** — before trusting the fast path, both backends
//!    run at a common small size on every corpus algorithm: fixed sweeps,
//!    square menus (per-box history included), and a sawtooth m(t). Any
//!    inequality is a typed invariant failure, not a wrong table.
//! 2. **Capacity sweep at scale** — the classical miss-ratio curve
//!    (faults vs M) for every corpus algorithm at inputs well beyond the
//!    E8 regime (quick: side 32; full: side 128 — 64× the work of E8's
//!    full scale), one summary amortized over the whole sweep.
//! 3. **Box-size sweep at scale** — E8b's adaptivity-transfer phenomenon
//!    (MM-Inplace converts cache into I/O savings, MM-Scan cannot)
//!    re-measured at the larger inputs via analytic square replay.
//!
//! Traces and summaries come from the memoized corpus store
//! (`cadapt_trace::corpus`), so trial fan-out workers share one build.

use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::Table;
use cadapt_core::{MemoryProfile, SquareProfile};
use cadapt_paging::{
    analytic_fixed, analytic_memory_profile, analytic_square_profile,
    analytic_square_profile_history, replay_fixed, replay_memory_profile,
    replay_square_profile_history,
};
use cadapt_trace::{summarized, TraceAlgo};

/// Side used for the simulator-vs-analytic cross-validation stage.
const VALIDATE_SIDE: usize = 16;
const BLOCK_WORDS: u64 = 4;

/// Result of E14.
#[derive(Debug)]
pub struct E14Result {
    /// Backend cross-validation at the common size.
    pub cross_table: Table,
    /// Analytic miss-ratio curves at scale.
    pub capacity_table: Table,
    /// Analytic box-size sweep at scale.
    pub box_table: Table,
    /// (label, accesses) of the at-scale traces.
    pub trace_sizes: Vec<(String, u64)>,
    /// (label, I/O speedup smallest → largest box) at scale.
    pub speedups: Vec<(String, f64)>,
    /// Equalities checked during cross-validation.
    pub checks: u64,
}

/// Run E14.
///
/// # Errors
///
/// Any simulator/analytic disagreement during cross-validation is
/// reported as a typed invariant failure.
pub fn run(scale: Scale) -> Result<E14Result, BenchError> {
    let side = scale.pick(32, 128);

    // 1. Cross-validate the backends where both are affordable.
    let mut cross_table = Table::new(
        "E14a: simulator vs analytic cross-validation (side 16)",
        &["algorithm", "mode", "checks", "verdict"],
    );
    let mut checks = 0u64;
    for algo in TraceAlgo::ALL {
        let st = summarized(algo, VALIDATE_SIDE, BLOCK_WORDS);
        let rho = algo.potential();

        let mut fixed_checks = 0u64;
        for m in [0u64, 1, 4, 16, 64, 256, 1 << 20] {
            let sim = replay_fixed(st.program(), m);
            let ana = analytic_fixed(st.summary(), m);
            if sim != ana {
                return Err(BenchError::invariant(format!(
                    "E14: {} fixed M={m}: simulator {} vs analytic {}",
                    algo.label(),
                    sim.io,
                    ana.io
                )));
            }
            fixed_checks += 1;
        }

        let mut square_checks = 0u64;
        for menu in [vec![1u64], vec![16], vec![4, 1, 64], vec![2, 32, 8]] {
            let profile = SquareProfile::new(menu.clone())
                .map_err(|e| BenchError::invariant(format!("E14 menu {menu:?}: {e}")))?;
            let (sim, sim_boxes) =
                replay_square_profile_history(st.program(), &mut profile.cycle(), rho);
            let (ana, ana_boxes) =
                analytic_square_profile_history(st.summary(), &mut profile.cycle(), rho);
            if sim != ana || sim_boxes != ana_boxes {
                return Err(BenchError::invariant(format!(
                    "E14: {} menu {menu:?}: backends diverged",
                    algo.label()
                )));
            }
            square_checks += 1;
        }

        let tooth: Vec<u64> = (1..=32).chain((1..=32).rev()).collect();
        let steps: Vec<u64> = tooth
            .iter()
            .cycle()
            .take(tooth.len() * 64)
            .copied()
            .collect();
        let profile = MemoryProfile::from_steps(&steps)
            .map_err(|e| BenchError::invariant(format!("E14 sawtooth: {e}")))?;
        let sim = replay_memory_profile(st.program(), &profile);
        let ana = analytic_memory_profile(st.summary(), &profile);
        if sim != ana {
            return Err(BenchError::invariant(format!(
                "E14: {} sawtooth m(t): backends diverged",
                algo.label()
            )));
        }
        let profile_checks = 1u64;

        for (mode, n) in [
            ("fixed", fixed_checks),
            ("square", square_checks),
            ("profile", profile_checks),
        ] {
            cross_table.push_row(vec![
                algo.label().to_string(),
                mode.to_string(),
                n.to_string(),
                "equal".to_string(),
            ]);
            checks += n;
        }
    }

    // 2. Analytic miss-ratio curves at scale. One summary per algorithm
    //    answers the whole sweep.
    let mut capacity_table = Table::new(
        "E14b: analytic miss-ratio curves at scale",
        &["algorithm", "M (blocks)", "I/O", "accesses", "miss rate"],
    );
    let mut trace_sizes = Vec::new();
    for algo in TraceAlgo::ALL {
        let st = summarized(algo, side, BLOCK_WORDS);
        let accesses = st.summary().accesses();
        trace_sizes.push((algo.label().to_string(), accesses));
        for j in [2u32, 4, 6, 8, 10, 12, 14, 20] {
            let m = 1u64 << j;
            let replay = analytic_fixed(st.summary(), m);
            capacity_table.push_row(vec![
                algo.label().to_string(),
                m.to_string(),
                replay.io.to_string(),
                accesses.to_string(),
                fnum(replay.io as f64 / accesses as f64),
            ]);
        }
    }

    // 3. Box-size sweep at scale (E8b's phenomenon, bigger inputs).
    let mut box_table = Table::new(
        "E14c: analytic I/O under constant-box square profiles at scale",
        &["algorithm", "box (blocks)", "I/O", "vs largest"],
    );
    let mut speedups = Vec::new();
    let box_sizes: Vec<u64> = (3..=12)
        .map(|j| 1u64 << j)
        .filter(|&b| b <= (side * side * 4) as u64)
        .collect();
    for algo in TraceAlgo::ALL {
        let st = summarized(algo, side, BLOCK_WORDS);
        let rho = algo.potential();
        let mut ios = Vec::new();
        for &b0 in &box_sizes {
            let profile = SquareProfile::from_boxes_unchecked(vec![b0]);
            let mut source = profile.cycle();
            let io = analytic_square_profile(st.summary(), &mut source, rho).total_io;
            ios.push(io);
        }
        let last = *ios.last().unwrap_or(&1);
        for (&b0, &io) in box_sizes.iter().zip(&ios) {
            box_table.push_row(vec![
                algo.label().to_string(),
                b0.to_string(),
                io.to_string(),
                fnum(io as f64 / last as f64),
            ]);
        }
        let first = *ios.first().unwrap_or(&1);
        speedups.push((algo.label().to_string(), first as f64 / last as f64));
    }

    Ok(E14Result {
        cross_table,
        capacity_table,
        box_table,
        trace_sizes,
        speedups,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_validation_passes_and_counts() {
        let result = run(Scale::Quick).expect("e14 runs");
        // 7 fixed + 4 square + 1 profile per corpus algorithm.
        assert_eq!(result.checks, 12 * TraceAlgo::ALL.len() as u64);
    }

    #[test]
    fn miss_rate_is_monotone_in_cache_size() {
        let result = run(Scale::Quick).expect("e14 runs");
        let io = result.capacity_table.numeric_column("I/O");
        for group in io.chunks(8) {
            for w in group.windows(2) {
                assert!(w[0] >= w[1], "I/O increased with more cache: {w:?}");
            }
        }
    }

    #[test]
    fn quick_scale_outgrows_e8_by_an_order_of_magnitude() {
        // The point of the analytic backend: E8 full scale runs side 32;
        // E14 reaches side 32 in *quick* mode and side 128 in full, so
        // even the quick traces dwarf E8's quick (side 16) regime.
        let result = run(Scale::Quick).expect("e14 runs");
        for algo in TraceAlgo::ALL {
            let small = summarized(algo, 16, BLOCK_WORDS).summary().accesses();
            let at_scale = result
                .trace_sizes
                .iter()
                .find(|(l, _)| l == algo.label())
                .map(|&(_, a)| a)
                .unwrap();
            // Doubling the side grows each algorithm by its branching
            // factor a (8 for the MM variants, 7 for Strassen, 4 for the
            // quadratic edit distance); full scale (side 128) adds two
            // more doublings on top of this.
            let factor = match algo {
                TraceAlgo::MmScan | TraceAlgo::MmInplace => 8,
                TraceAlgo::Strassen => 7,
                // VebSearch is not in ALL (post-golden addition, E15 only);
                // its per-doubling growth is ~4 (side² queries × path).
                TraceAlgo::EditDistance | TraceAlgo::VebSearch => 4,
            };
            assert!(
                at_scale >= factor * small,
                "{}: {at_scale} accesses is not ≫ {small}",
                algo.label()
            );
        }
    }

    #[test]
    fn adaptivity_transfer_reappears_at_scale() {
        let result = run(Scale::Quick).expect("e14 runs");
        let get = |name: &str| {
            result
                .speedups
                .iter()
                .find(|(l, _)| l == name)
                .map(|&(_, r)| r)
                .unwrap()
        };
        assert!(
            get("MM-Inplace") > 2.0 * get("MM-Scan"),
            "speedups: inplace {} vs scan {}",
            get("MM-Inplace"),
            get("MM-Scan")
        );
    }
}

/// Registry adapter: E14 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e14"
    }
    fn title(&self) -> &'static str {
        "Analytic cache model: cross-validation and capacity sweeps at scale"
    }
    fn deterministic(&self) -> bool {
        true // closed-form queries over deterministic traces
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = vec![crate::harness::metric(
            "cross_validation/checks",
            result.checks as f64,
        )];
        for (label, accesses) in &result.trace_sizes {
            metrics.push(crate::harness::metric(
                format!("accesses/{label}"),
                *accesses as f64,
            ));
        }
        for (label, speedup) in &result.speedups {
            metrics.push(crate::harness::metric(format!("speedup/{label}"), *speedup));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![
                result.cross_table.render(),
                result.capacity_table.render(),
                result.box_table.render(),
            ],
        })
    }
}
