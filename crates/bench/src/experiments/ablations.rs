//! **Ablations** called out in DESIGN.md §4.
//!
//! * **A1 shuffle granularity** — i.i.d. resampling of the worst-case box
//!   multiset (Theorem 1's hypothesis) vs a without-replacement random
//!   permutation of the same boxes. Both flatten the ratio.
//! * **A2 scan placement** — the adversary is *matched* to where the scan
//!   work sits (front, end, or split around the recursive calls). End and
//!   split placements admit the full Θ(log n) gap. Pure upfront scans do
//!   not: a box sized to a subproblem's scan arrives *before* the
//!   subproblem's work, so it completes the subproblem instead of being
//!   wasted — the adversary has nothing to burn large boxes on. This is
//!   the executable face of the paper's remark that upfront-scan
//!   algorithms convert to end-scan form: the conversion is needed
//!   precisely because the construction only bites posterior scans. (Real
//!   gap-regime algorithms have posterior scans by necessity — MM-Scan's
//!   merge must follow its children.)
//! * **A3 execution model** — simplified and block-capacity (×1) agree on
//!   smoothed profiles; block-capacity with cost factor 2 needs its boxes
//!   augmented by the same factor 2 to be comparable — precisely the O(1)
//!   resource augmentation the paper's optimality definitions allow.
//! * **A4 minimum box size** — "sufficiently large in Ω(1)": the gap and
//!   its smoothing are insensitive to the worst-case profile's smallest
//!   box size.

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::try_run_trials;
use cadapt_analysis::table::fnum;
use cadapt_analysis::{monte_carlo_ratio, McConfig, Stats, Table};
use cadapt_profiles::dist::{DistSource, EmpiricalMultiset, PermutationSource, PowerOfB};
use cadapt_profiles::{worst_case_squares, MatchedWorstCase, WorstCase};
use cadapt_recursion::{run_on_profile, AbcParams, ExecModel, RunConfig, ScanLayout};

/// Result of the ablation suite.
#[derive(Debug)]
pub struct AblationResult {
    /// A1 table.
    pub shuffle_table: Table,
    /// A1 series (iid, permutation).
    pub shuffle_series: Vec<RatioSeries>,
    /// A2 table.
    pub layout_table: Table,
    /// A2 series per layout.
    pub layout_series: Vec<RatioSeries>,
    /// A3 table.
    pub model_table: Table,
    /// A3 series per model.
    pub model_series: Vec<RatioSeries>,
    /// A4 table.
    pub min_box_table: Table,
    /// A4 series per minimum box size.
    pub min_box_series: Vec<RatioSeries>,
}

/// A box source whose boxes are scaled by a constant factor (the resource
/// augmentation knob of A3).
struct Augmented<S> {
    inner: S,
    factor: u64,
}

impl<S: cadapt_core::BoxSource> cadapt_core::BoxSource for Augmented<S> {
    fn next_box(&mut self) -> u64 {
        self.inner.next_box().saturating_mul(self.factor)
    }
}

/// Run all ablations (MM-Scan throughout) with the default thread budget
/// (all cores).
///
/// # Errors
///
/// Propagates construction, execution, or Monte-Carlo failures as typed
/// errors.
pub fn run(scale: Scale) -> Result<AblationResult, BenchError> {
    run_threaded(scale, 0)
}

/// Run all ablations with an explicit worker budget for the trial
/// fan-outs (0 = available parallelism).
///
/// # Errors
///
/// Propagates construction, execution, or Monte-Carlo failures as typed
/// errors.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<AblationResult, BenchError> {
    let params = AbcParams::mm_scan();
    let trials = scale.pick(24, 64);
    // k_hi = 6 gives the sweep five points (four increments) even at Quick
    // scale — the minimum for classify_growth's increment-trend rule to
    // tell a converging shuffled series from sustained growth.
    let k_hi = scale.pick(6, 7);
    let sizes = size_sweep(&params, 2, k_hi, u64::MAX);

    // --- A1: shuffle granularity ---------------------------------------
    let mut shuffle_table = Table::new(
        "A1: i.i.d. resampling vs without-replacement permutation of M_{8,4}'s boxes",
        &["mode", "n", "ratio", "ci95"],
    );
    let mut iid_points = Vec::new();
    let mut perm_points = Vec::new();
    for &n in &sizes {
        let wc = WorstCase::for_problem(&params, n)?;
        let dist = EmpiricalMultiset::from_counts(&wc.box_multiset(), "iid");
        let config = McConfig {
            trials,
            seed: 0xA1,
            threads,
            ..McConfig::default()
        };
        let summary =
            monte_carlo_ratio(params, n, &config, |rng| DistSource::new(dist.clone(), rng))?;
        shuffle_table.push_row(vec![
            "iid multiset".to_string(),
            n.to_string(),
            fnum(summary.ratio.mean),
            fnum(summary.ratio.ci95()),
        ]);
        iid_points.push((log_b(&params, n), summary.ratio.mean));

        let profile = worst_case_squares(&wc);
        let ratios = try_run_trials(trials, threads, |trial| {
            let rng = trial_rng(0xA1A, trial);
            let mut source = PermutationSource::new(&profile, rng);
            run_on_profile(params, n, &mut source, &RunConfig::default()).map(|r| r.ratio())
        })
        .map_err(|e| BenchError::from_sweep(&format!("A1 permutation n={n}"), e))?;
        let mut stats = Stats::new();
        for ratio in ratios {
            stats.push(ratio);
        }
        shuffle_table.push_row(vec![
            "permutation".to_string(),
            n.to_string(),
            fnum(stats.mean),
            fnum(stats.ci95()),
        ]);
        perm_points.push((log_b(&params, n), stats.mean));
    }
    let shuffle_series = vec![
        RatioSeries::classify("iid multiset", iid_points),
        RatioSeries::classify("permutation", perm_points),
    ];

    // --- A2: scan placement --------------------------------------------
    let mut layout_table = Table::new(
        "A2: worst-case ratio when the adversary matches the scan placement",
        &["layout", "n", "matched ratio", "end-profile ratio"],
    );
    let mut layout_series = Vec::new();
    for (label, layout) in [
        ("end", ScanLayout::End),
        ("start", ScanLayout::Start),
        ("split", ScanLayout::Split),
    ] {
        let p = params.with_layout(layout);
        let mut points = Vec::new();
        for &n in &sizes {
            let mut matched = MatchedWorstCase::new(p, n)?;
            let report = run_on_profile(p, n, &mut matched, &RunConfig::default())?;
            // Contrast: the canonical end-scan profile against this layout.
            let wc = WorstCase::for_problem(&params, n)?;
            let mut end_source = wc.source();
            let end_report = run_on_profile(p, n, &mut end_source, &RunConfig::default())?;
            layout_table.push_row(vec![
                label.to_string(),
                n.to_string(),
                fnum(report.ratio()),
                fnum(end_report.ratio()),
            ]);
            points.push((log_b(&p, n), report.ratio()));
        }
        layout_series.push(RatioSeries::classify(label, points));
    }

    // --- A3: execution model --------------------------------------------
    let mut model_table = Table::new(
        "A3: smoothed ratio under simplified vs block-capacity models",
        &["model", "boxes", "n", "ratio", "ci95"],
    );
    let mut model_series = Vec::new();
    // (model, box-size multiplier, label). Cost factor 2 doubles the box a
    // problem of size m needs, so comparing it fairly means doubling the
    // boxes — the O(1) resource augmentation of the paper's definitions.
    let configs: [(ExecModel, u64, &str); 4] = [
        (ExecModel::Simplified, 1, "1x"),
        (ExecModel::capacity(), 1, "1x"),
        (ExecModel::Capacity { cost_factor: 2 }, 1, "1x"),
        (ExecModel::Capacity { cost_factor: 2 }, 2, "2x"),
    ];
    for (model, augment, aug_label) in configs {
        let mut points = Vec::new();
        for &n in &sizes {
            let k_max = params
                .depth_of(n)
                .ok_or_else(|| BenchError::invariant(format!("A3: {n} is not a canonical size")))?;
            let dist = PowerOfB::new(4, 0, k_max);
            let config = McConfig {
                trials,
                seed: 0xA3,
                threads,
                run: RunConfig {
                    model,
                    ..RunConfig::default()
                },
            };
            let summary = monte_carlo_ratio(params, n, &config, |rng| Augmented {
                inner: DistSource::new(dist, rng),
                factor: augment,
            })?;
            model_table.push_row(vec![
                model.label(),
                aug_label.to_string(),
                n.to_string(),
                fnum(summary.ratio.mean),
                fnum(summary.ratio.ci95()),
            ]);
            points.push((log_b(&params, n), summary.ratio.mean));
        }
        model_series.push(RatioSeries::classify(
            format!("{} {aug_label}", model.label()),
            points,
        ));
    }

    // --- A4: minimum box size --------------------------------------------
    let mut min_box_table = Table::new(
        "A4: worst-case ratio vs the profile's minimum box size",
        &["min box", "n", "ratio"],
    );
    let mut min_box_series = Vec::new();
    for s_min in [1u64, 4, 16] {
        let mut points = Vec::new();
        for &n in &sizes {
            if n <= s_min * 16 {
                continue;
            }
            let depth_n = params
                .depth_of(n)
                .ok_or_else(|| BenchError::invariant(format!("A4: {n} is not a canonical size")))?;
            let depth_min = params.depth_of(s_min).ok_or_else(|| {
                BenchError::invariant(format!("A4: min box {s_min} is not a power of four"))
            })?;
            let wc = WorstCase::new(8, 4, s_min, depth_n - depth_min)?;
            let mut source = wc.source();
            let report = run_on_profile(params, n, &mut source, &RunConfig::default())?;
            min_box_table.push_row(vec![s_min.to_string(), n.to_string(), fnum(report.ratio())]);
            points.push((log_b(&params, n), report.ratio()));
        }
        if points.len() >= 2 {
            min_box_series.push(RatioSeries::classify(format!("min {s_min}"), points));
        }
    }

    Ok(AblationResult {
        shuffle_table,
        shuffle_series,
        layout_table,
        layout_series,
        model_table,
        model_series,
        min_box_table,
        min_box_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn both_shuffle_granularities_flatten() {
        let result = run(Scale::Quick).expect("ablations run");
        for s in &result.shuffle_series {
            assert_ne!(s.class, GrowthClass::Logarithmic, "{}", s.label);
        }
    }

    #[test]
    fn posterior_scan_layouts_keep_the_gap() {
        let result = run(Scale::Quick).expect("ablations run");
        for s in &result.layout_series {
            let expected = if s.label == "start" {
                // Upfront scans defeat the adversary (see module docs).
                GrowthClass::Constant
            } else {
                GrowthClass::Logarithmic
            };
            assert_eq!(s.class, expected, "{}: slope {}", s.label, s.fit.slope);
        }
    }

    #[test]
    fn models_agree_on_smoothed_profiles_up_to_augmentation() {
        let result = run(Scale::Quick).expect("ablations run");
        let by_label = |needle: &str| {
            result
                .model_series
                .iter()
                .find(|s| s.label.contains(needle))
                .expect("series present")
        };
        let simplified = by_label("simplified");
        let cap1 = by_label("capacity(x1)");
        let cap2aug = by_label("capacity(x2) 2x");
        for s in [simplified, cap1, cap2aug] {
            assert_ne!(s.class, GrowthClass::Logarithmic, "{}", s.label);
        }
        // Constant-factor agreement at the largest n between the fairly
        // compared trio.
        let finals = [
            simplified.points.last().unwrap().1,
            cap1.points.last().unwrap().1,
            cap2aug.points.last().unwrap().1,
        ];
        let (lo, hi) = (
            finals.iter().copied().fold(f64::INFINITY, f64::min),
            finals.iter().copied().fold(0.0_f64, f64::max),
        );
        assert!(hi / lo < 4.0, "models disagree: {finals:?}");
        // And the unaugmented x2 run pays more than the augmented one —
        // the augmentation is load-bearing.
        let cap2raw = by_label("capacity(x2) 1x");
        assert!(
            cap2raw.points.last().unwrap().1 > cap2aug.points.last().unwrap().1,
            "augmentation should lower the ratio"
        );
    }

    #[test]
    fn min_box_size_does_not_matter() {
        let result = run(Scale::Quick).expect("ablations run");
        for s in &result.min_box_series {
            assert_eq!(s.class, GrowthClass::Logarithmic, "{}", s.label);
        }
    }
}

/// Registry adapter: the A1-A4 ablations through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "ablations"
    }
    fn title(&self) -> &'static str {
        "Ablations A1-A4 (shuffle granularity, layout, model, min box)"
    }
    fn deterministic(&self) -> bool {
        false // compared by CI overlap: goldens stay robust to trial-count retunings
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for series in &result.shuffle_series {
            crate::harness::push_series(&mut metrics, "a1", series);
        }
        for series in &result.layout_series {
            crate::harness::push_series(&mut metrics, "a2", series);
        }
        for series in &result.model_series {
            crate::harness::push_series(&mut metrics, "a3", series);
        }
        for series in &result.min_box_series {
            crate::harness::push_series(&mut metrics, "a4", series);
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![
                result.shuffle_table.render(),
                result.layout_table.render(),
                result.model_table.render(),
                result.min_box_table.render(),
            ],
        })
    }
}
