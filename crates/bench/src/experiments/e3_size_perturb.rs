//! **E3 — box-size perturbation does not close the gap** (§4 robustness).
//!
//! Multiply every box of the worst-case profile by an independent factor
//! X_i and measure the expected adaptivity ratio.
//!
//! * For X ~ U[0, t] (the paper's construction), the perturbed profile
//!   remains worst-case in expectation: the ratio keeps growing ~log_b n —
//!   the contrast with E2, where destroying the *order* of the same boxes
//!   flattens it. Measured slopes stay ≈ 1 per level.
//! * Our additional ×b/÷b *level-jump jiggle* (multiply by exactly b or
//!   1/b) dampens the adversary much more — a box scaled by exactly b
//!   completes the next level up, partially desynchronising the profile —
//!   but full-depth sweeps show the growth persists at roughly a fifth of
//!   the canonical slope after a long flat transient. Even exact
//!   level-hopping noise does not flatten the profile asymptotically:
//!   the robustness result is sturdier than it first appears (we
//!   initially misread the transient as a plateau; deeper data corrected
//!   it — see EXPERIMENTS.md).

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::try_run_trials;
use cadapt_analysis::table::fnum;
use cadapt_analysis::{Stats, Table};
use cadapt_profiles::perturb::{
    ConstantFactorJiggle, MultiplierDist, SizePerturbedSource, UniformMultiplier,
};
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_on_profile, AbcParams, RunConfig};

/// Result of E3.
#[derive(Debug)]
pub struct E3Result {
    /// Per-row measurements.
    pub table: Table,
    /// One classified series per multiplier distribution.
    pub series: Vec<RatioSeries>,
}

fn multipliers() -> Vec<Box<dyn MultiplierDist>> {
    vec![
        Box::new(UniformMultiplier { t: 2.0 }),
        Box::new(UniformMultiplier { t: 8.0 }),
        Box::new(ConstantFactorJiggle { s: 4.0 }),
    ]
}

/// Run E3 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run(scale: Scale) -> Result<E3Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E3 fanning trials over `threads` workers (0 = available
/// parallelism). Bit-identical at any thread count: per-trial seeded RNG
/// plus trial-ordered reduction.
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E3Result, BenchError> {
    let params = AbcParams::mm_scan();
    let trials = scale.pick(12, 32);
    let k_hi = scale.pick(6, 8);
    let mut table = Table::new(
        "E3: expected ratio on size-perturbed worst-case profiles (MM-Scan)",
        &["multiplier", "n", "ratio", "ci95"],
    );
    let mut series = Vec::new();
    for mult in multipliers() {
        let mut points = Vec::new();
        for n in size_sweep(&params, 2, k_hi, u64::MAX) {
            let wc = WorstCase::for_problem(&params, n)?;
            let ratios = try_run_trials(trials, threads, |trial| {
                let rng = trial_rng(0xE3, trial);
                let mut source = SizePerturbedSource::new(wc.source(), mult.as_ref(), rng);
                run_on_profile(params, n, &mut source, &RunConfig::default()).map(|r| r.ratio())
            })
            .map_err(|e| BenchError::from_sweep(&format!("E3 {} n={n}", mult.label()), e))?;
            let mut stats = Stats::new();
            for ratio in ratios {
                stats.push(ratio);
            }
            table.push_row(vec![
                mult.label(),
                n.to_string(),
                fnum(stats.mean),
                fnum(stats.ci95()),
            ]);
            points.push((log_b(&params, n), stats.mean));
        }
        series.push(RatioSeries::classify(mult.label(), points));
    }
    Ok(E3Result { table, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn uniform_perturbations_remain_worst_case() {
        let result = run(Scale::Quick).expect("e3 runs");
        for s in result.series.iter().filter(|s| s.label.starts_with("U[")) {
            assert_eq!(
                s.class,
                GrowthClass::Logarithmic,
                "{}: slope {} — size noise alone should NOT rescue adaptivity",
                s.label,
                s.fit.slope
            );
            assert!(s.fit.slope > 0.5, "{}: slope {}", s.label, s.fit.slope);
        }
    }

    #[test]
    fn level_jump_jiggle_flattens() {
        // The documented boundary case: multiplying by exactly b hops a
        // recursion level and acts like smoothing.
        let result = run(Scale::Quick).expect("e3 runs");
        let jiggle = result
            .series
            .iter()
            .find(|s| s.label.starts_with("jiggle"))
            .expect("jiggle series present");
        assert_eq!(
            jiggle.class,
            GrowthClass::Constant,
            "slope {}",
            jiggle.fit.slope
        );
    }
}

/// Registry adapter: E3 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e3"
    }
    fn title(&self) -> &'static str {
        "Size-perturbed worst-case profiles (Section 4)"
    }
    fn deterministic(&self) -> bool {
        true // per-trial RNG + trial-ordered reduction: bit-identical at any thread count
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for series in &result.series {
            crate::harness::push_series(&mut metrics, "series", series);
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
