//! **E1 — the worst-case gap** (Figure 1 + Theorem 2).
//!
//! Run each algorithm on its own recursive worst-case profile M_{a,b}(n)
//! and measure the adaptivity ratio across a sweep of problem sizes. The
//! paper predicts:
//!
//! * (a, b, 1)-regular with a > b (MM-Scan, Strassen, CO-DP): ratio grows
//!   as Θ(log_b n) — for the exact construction, precisely log_b n + 1;
//! * (8, 4, 0) MM-Inplace on the *same* profile: ratio stays Θ(1).

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::Table;
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_on_profile, AbcParams, ExecModel, RunConfig};

/// Result of E1.
#[derive(Debug)]
pub struct E1Result {
    /// Per-row measurements.
    pub table: Table,
    /// One classified series per algorithm.
    pub series: Vec<RatioSeries>,
}

/// Algorithms measured by E1: (label, params, worst-case profile donor).
///
/// MM-Inplace has no scans of its own, so it is measured against MM-Scan's
/// profile (the comparison the paper makes in §3: MM-Inplace performs
/// Ω(log n) multiplies on MM-Scan's bad profile).
fn algorithms() -> Vec<(&'static str, AbcParams, AbcParams)> {
    vec![
        (
            "MM-Scan (8,4,1)",
            AbcParams::mm_scan(),
            AbcParams::mm_scan(),
        ),
        (
            "MM-Inplace (8,4,0)",
            AbcParams::mm_inplace(),
            AbcParams::mm_scan(),
        ),
        (
            "Strassen (7,4,1)",
            AbcParams::strassen(),
            AbcParams::strassen(),
        ),
        ("CO-DP (3,2,1)", AbcParams::co_dp(), AbcParams::co_dp()),
    ]
}

/// Run E1.
///
/// # Errors
///
/// Propagates construction or execution failures as typed errors (cannot
/// happen for the canonical configurations).
pub fn run(scale: Scale) -> Result<E1Result, BenchError> {
    let n_cap = scale.pick(1 << 16, 1 << 18);
    let mut table = Table::new(
        "E1: adaptivity ratio on the recursive worst-case profile",
        &["algorithm", "n", "log_b n", "boxes", "ratio", "predicted"],
    );
    let mut series = Vec::new();
    for (label, params, donor) in algorithms() {
        let k_hi = scale.pick(8, 9);
        let mut points = Vec::new();
        for n in size_sweep(&donor, 2, k_hi, n_cap) {
            let wc = WorstCase::for_problem(&donor, n)?;
            let mut source = wc.source();
            // The block-capacity model: tight for the c = 1 profiles (each
            // box lands exactly on its matching scan) and fair to
            // MM-Inplace, whose boxes the §4 simplified model would
            // pessimistically truncate ("goes no further").
            let config = RunConfig {
                model: ExecModel::capacity(),
                ..RunConfig::default()
            };
            let report = run_on_profile(params, n, &mut source, &config)?;
            let predicted = if params.in_gap_regime() {
                format!("{} (log_b n + 1)", fnum(log_b(&params, n) + 1.0))
            } else {
                "O(1)".to_string()
            };
            table.push_row(vec![
                label.to_string(),
                n.to_string(),
                fnum(log_b(&donor, n)),
                report.boxes_used.to_string(),
                fnum(report.ratio()),
                predicted,
            ]);
            points.push((log_b(&donor, n), report.ratio()));
        }
        series.push(RatioSeries::classify(label, points));
    }
    Ok(E1Result { table, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn gap_algorithms_grow_logarithmically() {
        let result = run(Scale::Quick).expect("e1 runs");
        for s in &result.series {
            if s.label.starts_with("MM-Scan")
                || s.label.starts_with("Strassen")
                || s.label.starts_with("CO-DP")
            {
                assert_eq!(
                    s.class,
                    GrowthClass::Logarithmic,
                    "{}: slope {}",
                    s.label,
                    s.fit.slope
                );
            }
        }
    }

    #[test]
    fn mm_inplace_stays_constant() {
        let result = run(Scale::Quick).expect("e1 runs");
        let inplace = result
            .series
            .iter()
            .find(|s| s.label.starts_with("MM-Inplace"))
            .expect("series present");
        assert_eq!(
            inplace.class,
            GrowthClass::Constant,
            "slope {}",
            inplace.fit.slope
        );
        // And strictly below MM-Scan's final ratio.
        let scan = result
            .series
            .iter()
            .find(|s| s.label.starts_with("MM-Scan"))
            .unwrap();
        assert!(
            inplace.points.last().unwrap().1 < scan.points.last().unwrap().1,
            "MM-Inplace must beat MM-Scan on the adversarial profile"
        );
    }

    #[test]
    fn mm_scan_ratio_is_exactly_log_plus_one() {
        let result = run(Scale::Quick).expect("e1 runs");
        let scan = result
            .series
            .iter()
            .find(|s| s.label.starts_with("MM-Scan"))
            .unwrap();
        for &(x, y) in &scan.points {
            assert!((y - (x + 1.0)).abs() < 1e-9, "ratio {y} at log_b n = {x}");
        }
    }
}

/// Registry adapter: E1 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e1"
    }
    fn title(&self) -> &'static str {
        "Worst-case adaptivity gap (Theorem 2)"
    }
    fn deterministic(&self) -> bool {
        true
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = Vec::new();
        for series in &result.series {
            crate::harness::push_series(&mut metrics, "series", series);
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
