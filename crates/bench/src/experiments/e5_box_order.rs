//! **E5 — box-order perturbation** (§4 robustness).
//!
//! Rebuild the worst-case profile but place each node's big box after a
//! *random* child instead of always the last one (also the deterministic
//! "first child" variant). The paper proves the result remains worst-case
//! with probability one.
//!
//! What the executable model shows, precisely:
//!
//! * **first-child placement** (the placement most favourable to the
//!   algorithm) yields the exact series ratio = 1 + (log_b n)/a — genuine
//!   Θ(log n) growth at slope 1/a. Every run of every placement is bounded
//!   below by it, which is the "with probability one" claim in executable
//!   form: no sample escapes logarithmic growth entirely.
//! * the **mean** over random placements sits above that floor (≈ 2.3 at
//!   our sizes) in a flat transient — but because mean ≥ min, the floor
//!   forces the mean to Ω(log_b n) asymptotically. The perturbation thus
//!   reduces the adversarial constant from 1 to somewhere in [1/a, 1]
//!   without breaking the logarithmic growth: the paper's claim, with
//!   its constant made visible.

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::try_run_trials;
use cadapt_analysis::table::fnum;
use cadapt_analysis::{Stats, Table};
use cadapt_profiles::perturb::{BoxOrderPerturbedSource, FirstPlacement, RandomPlacement};
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_on_profile, AbcParams, RunConfig};

/// Result of E5.
#[derive(Debug)]
pub struct E5Result {
    /// Per-row measurements.
    pub table: Table,
    /// Classified series: random placement (mean), the per-trial minimum
    /// under random placement, and the first-child placement.
    pub series: Vec<RatioSeries>,
}

/// Run E5 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run(scale: Scale) -> Result<E5Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E5 fanning the random-placement trials over `threads` workers
/// (0 = available parallelism). Bit-identical at any thread count:
/// per-trial seeded RNG plus trial-ordered reduction.
///
/// # Errors
///
/// Propagates a failed trial, keyed by its trial index.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E5Result, BenchError> {
    let params = AbcParams::mm_scan();
    let trials = scale.pick(12, 32);
    let k_hi = scale.pick(6, 8);
    let mut table = Table::new(
        "E5: ratio under box-order (big-box placement) perturbation (MM-Scan)",
        &["placement", "n", "ratio", "ci95", "min"],
    );
    let mut random_points = Vec::new();
    let mut min_points = Vec::new();
    let mut first_points = Vec::new();
    let sizes = size_sweep(&params, 2, k_hi, u64::MAX);
    for &n in &sizes {
        let wc = WorstCase::for_problem(&params, n)?;
        // Random placement, many trials.
        let ratios = try_run_trials(trials, threads, |trial| {
            let rng = trial_rng(0xE5, trial);
            let mut source = BoxOrderPerturbedSource::new(wc, RandomPlacement(rng));
            run_on_profile(params, n, &mut source, &RunConfig::default()).map(|r| r.ratio())
        })
        .map_err(|e| BenchError::from_sweep(&format!("E5 random placement n={n}"), e))?;
        let mut stats = Stats::new();
        for ratio in ratios {
            stats.push(ratio);
        }
        table.push_row(vec![
            "random".to_string(),
            n.to_string(),
            fnum(stats.mean),
            fnum(stats.ci95()),
            fnum(stats.min),
        ]);
        random_points.push((log_b(&params, n), stats.mean));
        min_points.push((log_b(&params, n), stats.min));
        // Deterministic adversarial placement: big box right after child 1.
        let mut source = BoxOrderPerturbedSource::new(wc, FirstPlacement);
        let report = run_on_profile(params, n, &mut source, &RunConfig::default())?;
        table.push_row(vec![
            "first-child".to_string(),
            n.to_string(),
            fnum(report.ratio()),
            "0".to_string(),
            fnum(report.ratio()),
        ]);
        first_points.push((log_b(&params, n), report.ratio()));
    }
    let series = vec![
        RatioSeries::classify("random placement (mean)", random_points),
        RatioSeries::classify("random placement (min)", min_points),
        RatioSeries::classify("first-child placement", first_points),
    ];
    Ok(E5Result { table, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    fn series<'a>(result: &'a super::E5Result, label: &str) -> &'a RatioSeries {
        result
            .series
            .iter()
            .find(|s| s.label.starts_with(label))
            .expect("present")
    }

    #[test]
    fn first_child_placement_is_exactly_one_plus_k_over_a() {
        let result = run(Scale::Quick).expect("e5 runs");
        let first = series(&result, "first-child");
        for &(k, ratio) in &first.points {
            assert!(
                (ratio - (1.0 + k / 8.0)).abs() < 1e-9,
                "ratio {ratio} at log_b n = {k}"
            );
        }
        assert_eq!(
            first.class,
            GrowthClass::Logarithmic,
            "slope {}",
            first.fit.slope
        );
    }

    #[test]
    fn logarithmic_floor_holds_with_probability_one() {
        // Every sampled placement stays at or above the first-child floor:
        // the per-trial minimum itself grows logarithmically.
        let result = run(Scale::Quick).expect("e5 runs");
        let min = series(&result, "random placement (min)");
        let first = series(&result, "first-child");
        assert_eq!(
            min.class,
            GrowthClass::Logarithmic,
            "slope {}",
            min.fit.slope
        );
        for (m, f) in min.points.iter().zip(&first.points) {
            assert!(
                m.1 >= f.1 - 1e-9,
                "min ratio {} below the first-child floor {}",
                m.1,
                f.1
            );
        }
    }

    #[test]
    fn random_mean_sits_between_floor_and_canonical() {
        let result = run(Scale::Quick).expect("e5 runs");
        let mean = series(&result, "random placement (mean)");
        let first = series(&result, "first-child");
        for (m, f) in mean.points.iter().zip(&first.points) {
            // Above the floor, far below the canonical log_b n + 1.
            assert!(m.1 > f.1, "mean {} not above floor {}", m.1, f.1);
            assert!(
                m.1 < m.0 + 1.0,
                "mean {} not below canonical {}",
                m.1,
                m.0 + 1.0
            );
        }
    }
}

/// Registry adapter: E5 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e5"
    }
    fn title(&self) -> &'static str {
        "Box-order (big-box placement) perturbation (Section 4)"
    }
    fn deterministic(&self) -> bool {
        true // per-trial RNG + trial-ordered reduction: bit-identical at any thread count
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for series in &result.series {
            crate::harness::push_series(&mut metrics, "series", series);
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
