//! **E2 — i.i.d. smoothing closes the gap** (Theorem 1/3, the main result).
//!
//! For each algorithm in the gap regime and a deliberately diverse family
//! of box-size distributions Σ — including the empirical multiset of the
//! algorithm's own worst-case profile ("reshuffle the adversary") — draw
//! boxes i.i.d. from Σ and measure the expected adaptivity ratio across a
//! problem-size sweep. Theorem 1 predicts every series is O(1); contrast
//! with E1's Θ(log_b n) on the *ordered* version of the very same box
//! multiset.

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::{monte_carlo_ratio, McConfig, Table};
use cadapt_profiles::dist::{
    BoxDist, DynDistSource, EmpiricalMultiset, LogUniform, ParetoBoxes, PointMass, PowerLawBoxes,
    PowerOfB, UniformBoxes,
};
use cadapt_profiles::WorstCase;
use cadapt_recursion::AbcParams;

/// Result of E2.
#[derive(Debug)]
pub struct E2Result {
    /// Per-row measurements.
    pub table: Table,
    /// One classified series per (algorithm, distribution).
    pub series: Vec<RatioSeries>,
}

/// The distribution family for an algorithm with shrink factor b and
/// maximum problem size `n_max`. The empirical multiset is added per size
/// inside [`run`] (it depends on n).
fn family(b: u64, n_max: u64) -> Vec<Box<dyn BoxDist>> {
    let k_max = cadapt_core::potential::exact_log(b, n_max).unwrap_or(8);
    vec![
        Box::new(PointMass {
            size: (n_max / b).max(1),
        }),
        Box::new(UniformBoxes::new(1, n_max)),
        Box::new(PowerOfB::new(b, 0, k_max)),
        Box::new(PowerLawBoxes::new(b, 0, k_max, 1.0)),
        Box::new(ParetoBoxes::new(1.2, 1, 4 * n_max)),
        Box::new(LogUniform::new(1, n_max)),
    ]
}

/// Algorithms measured by E2.
fn algorithms(scale: Scale) -> Result<Vec<(&'static str, AbcParams)>, BenchError> {
    let mut v = vec![
        ("MM-Scan (8,4,1)", AbcParams::mm_scan()),
        ("CO-DP (3,2,1)", AbcParams::co_dp()),
    ];
    if matches!(scale, Scale::Full) {
        v.push(("Strassen (7,4,1)", AbcParams::strassen()));
        v.push(("(16,4,1)", AbcParams::new(16, 4, 1.0, 1)?));
    }
    Ok(v)
}

/// Run E2 with the default thread budget (all cores).
///
/// # Errors
///
/// Propagates a Monte-Carlo failure, keyed by the offending trial.
pub fn run(scale: Scale) -> Result<E2Result, BenchError> {
    run_threaded(scale, 0)
}

/// Run E2 with an explicit worker budget for the Monte-Carlo trial
/// fan-out (0 = available parallelism).
///
/// # Errors
///
/// Propagates a Monte-Carlo failure, keyed by the offending trial.
pub fn run_threaded(scale: Scale, threads: usize) -> Result<E2Result, BenchError> {
    let trials = scale.pick(24, 96);
    let mut table = Table::new(
        "E2: expected adaptivity ratio under i.i.d. box-size distributions",
        &[
            "algorithm",
            "distribution",
            "n",
            "ratio",
            "ci95",
            "E[boxes]",
        ],
    );
    let mut series = Vec::new();
    for (label, params) in algorithms(scale)? {
        // Deep sweeps are what separate transient growth from a real gap;
        // small b needs more levels to cover the same size range, while
        // high exponents (total work n^{log_b a}) cap how deep is feasible.
        let k_hi = if params.exponent() >= 2.0 {
            scale.pick(4, 5)
        } else if params.b() == 2 {
            scale.pick(10, 13)
        } else {
            scale.pick(6, 7)
        };
        let sizes = size_sweep(&params, 2, k_hi, u64::MAX);
        let n_max = *sizes
            .last()
            .ok_or_else(|| BenchError::invariant(format!("E2 {label}: empty size sweep")))?;
        let mut dists = family(params.b(), n_max);
        // The headline distribution: the adversary's own box multiset.
        let wc = WorstCase::for_problem(&params, n_max)?;
        dists.push(Box::new(EmpiricalMultiset::from_counts(
            &wc.box_multiset(),
            format!("shuffled M_{{{},{}}}", params.a(), params.b()),
        )));
        for dist in &dists {
            // Distributions with large typical boxes are cheap to simulate;
            // extend their sweep past the distribution's ceiling so the
            // boundary bump at n = n_max visibly plateaus (Theorem 1 is
            // about fixed Σ and growing n). Estimate cheapness by sampling.
            let mut probe_rng = cadapt_analysis::montecarlo::trial_rng(0xE2AB, 0);
            let mean_box: f64 = (0..512)
                .map(|_| dist.sample(&mut probe_rng) as f64)
                .sum::<f64>()
                / 512.0;
            let mut sizes = sizes.clone();
            if mean_box >= n_max as f64 / 64.0 {
                sizes.push(n_max * params.b());
                sizes.push(n_max * params.b() * params.b());
            }
            let mut points = Vec::new();
            for &n in &sizes {
                let config = McConfig {
                    trials,
                    seed: 0xE2,
                    threads,
                    ..McConfig::default()
                };
                let summary = monte_carlo_ratio(params, n, &config, |rng| {
                    DynDistSource::new(dist.as_ref(), rng)
                })?;
                table.push_row(vec![
                    label.to_string(),
                    dist.label(),
                    n.to_string(),
                    fnum(summary.ratio.mean),
                    fnum(summary.ratio.ci95()),
                    fnum(summary.boxes.mean),
                ]);
                points.push((log_b(&params, n), summary.ratio.mean));
            }
            series.push(RatioSeries::classify(
                format!("{label} / {}", dist.label()),
                points,
            ));
        }
    }
    Ok(E2Result { table, series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_analysis::GrowthClass;

    #[test]
    fn every_distribution_is_constant() {
        let result = run(Scale::Quick).expect("e2 runs");
        assert!(!result.series.is_empty());
        for s in &result.series {
            assert_ne!(
                s.class,
                GrowthClass::Logarithmic,
                "{} grew logarithmically (slope {})",
                s.label,
                s.fit.slope
            );
            // Ratios are bounded by a modest constant throughout.
            let max = s.points.iter().map(|p| p.1).fold(0.0, f64::max);
            assert!(max < 12.0, "{}: max ratio {max}", s.label);
        }
    }

    #[test]
    fn shuffled_worst_case_is_among_the_series() {
        let result = run(Scale::Quick).expect("e2 runs");
        assert!(
            result
                .series
                .iter()
                .any(|s| s.label.contains("shuffled M_")),
            "the reshuffled adversarial multiset must be tested"
        );
    }
}

/// Registry adapter: E2 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e2"
    }
    fn title(&self) -> &'static str {
        "I.i.d. smoothing across distributions (Theorem 1)"
    }
    fn deterministic(&self) -> bool {
        false // compared by CI overlap: goldens stay robust to trial-count retunings
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run_threaded(ctx.scale, ctx.threads)?;
        let mut metrics = Vec::new();
        for series in &result.series {
            crate::harness::push_series(&mut metrics, "series", series);
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
