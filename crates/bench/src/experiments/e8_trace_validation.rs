//! **E8 — the abstract model vs the real machine.**
//!
//! Three validations grounding the (a, b, c) cursor in the block-level
//! simulator:
//!
//! 1. **DAM sanity** — replaying real traces through a fixed LRU cache
//!    shows the expected I/O–vs–cache-size behaviour, and MM-Scan's I/O
//!    matches the Θ(N^{3/2}/(√M·B)) shape.
//! 2. **Adaptivity transfers** — sweep the square-profile box size and
//!    watch who can convert cache into I/O savings: the traced MM-Inplace
//!    speeds up by an order of magnitude as boxes grow, while MM-Scan
//!    stays pinned near its streaming volume (its temporaries are written
//!    and read once, so extra cache buys almost nothing) — §3's "whenever
//!    MM-Scan cannot use more memory, it gets the maximum possible"
//!    phenomenon, measured on real traces.
//! 3. **Square approximation** — replaying a trace under an arbitrary
//!    m(t) costs within a constant factor of replaying it under the
//!    inner-square decomposition of the same profile (the §2 w.l.o.g.).

use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::Table;
use cadapt_core::{Potential, SquareProfile};
use cadapt_paging::{replay_fixed, replay_memory_profile, replay_square_profile};
use cadapt_profiles::contention::sawtooth;
use cadapt_trace::mm::{mm_inplace, mm_scan};
use cadapt_trace::strassen::strassen;
use cadapt_trace::{BlockTrace, ZMatrix};

/// Result of E8.
#[derive(Debug)]
pub struct E8Result {
    /// DAM I/O vs cache size.
    pub dam_table: Table,
    /// Trace-level box-size sweep.
    pub adaptivity_table: Table,
    /// Square-approximation comparison.
    pub square_table: Table,
    /// (label, I/O speedup from the smallest to the largest box size).
    pub speedups: Vec<(String, f64)>,
    /// (arbitrary-profile I/O, square-profile I/O) pairs.
    pub square_pairs: Vec<(u128, u128)>,
}

fn test_matrices(side: usize) -> (ZMatrix, ZMatrix) {
    let a: Vec<f64> = (0..side * side)
        .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
        .collect();
    let b: Vec<f64> = (0..side * side)
        .map(|i| ((i * 5 + 1) % 13) as f64 - 6.0)
        .collect();
    (
        ZMatrix::from_row_major(side, &a),
        ZMatrix::from_row_major(side, &b),
    )
}

/// Run E8.
///
/// # Errors
///
/// Reports a replay that fails to complete as a typed invariant failure.
pub fn run(scale: Scale) -> Result<E8Result, BenchError> {
    let side = scale.pick(16, 32);
    let block_words = 4;
    let (a, b) = test_matrices(side);
    let traces: Vec<(&str, BlockTrace, Potential)> = vec![
        (
            "MM-Scan",
            mm_scan(&a, &b, block_words).1,
            Potential::new(8, 4),
        ),
        (
            "MM-Inplace",
            mm_inplace(&a, &b, block_words).1,
            Potential::new(8, 4),
        ),
        (
            "Strassen",
            strassen(&a, &b, block_words).1,
            Potential::new(7, 4),
        ),
    ];

    // 1. DAM baseline.
    let mut dam_table = Table::new(
        "E8a: DAM I/O of real traces vs cache size (LRU)",
        &["algorithm", "M (blocks)", "I/O", "accesses"],
    );
    for (label, trace, _) in &traces {
        for m in [4u64, 16, 64, 256, 1024, 1 << 20] {
            let replay = replay_fixed(trace, m);
            dam_table.push_row(vec![
                (*label).to_string(),
                m.to_string(),
                replay.io.to_string(),
                replay.accesses.to_string(),
            ]);
        }
    }

    // 2. Adaptivity transfer: I/O vs box size.
    let mut adaptivity_table = Table::new(
        "E8b: trace-level I/O under constant-box square profiles",
        &["algorithm", "box (blocks)", "I/O", "vs cold"],
    );
    let mut speedups = Vec::new();
    // Sweep absolute box sizes covering the inputs' scale (3·side² words).
    let box_sizes: Vec<u64> = (3..=10)
        .map(|j| 1u64 << j)
        .filter(|&b| b <= (side * side * 4) as u64)
        .collect();
    for (label, trace, rho) in &traces {
        let ws = trace.distinct_blocks();
        let big = SquareProfile::from_boxes_unchecked(vec![ws]);
        let cold = replay_square_profile(trace, &mut big.extended(ws), *rho).total_io;
        let mut first_io = 0u128;
        let mut last_io = 0u128;
        for &b0 in &box_sizes {
            let profile = SquareProfile::from_boxes_unchecked(vec![b0]);
            let mut source = profile.cycle();
            let io = replay_square_profile(trace, &mut source, *rho).total_io;
            if b0 == box_sizes[0] {
                first_io = io;
            }
            last_io = io;
            adaptivity_table.push_row(vec![
                (*label).to_string(),
                b0.to_string(),
                io.to_string(),
                fnum(io as f64 / cold as f64),
            ]);
        }
        speedups.push(((*label).to_string(), first_io as f64 / last_io as f64));
    }

    // 3. Square approximation of an arbitrary profile.
    let mut square_table = Table::new(
        "E8c: arbitrary m(t) vs its inner-square decomposition",
        &["algorithm", "profile I/O", "squares I/O", "ratio"],
    );
    let mut square_pairs = Vec::new();
    for (label, trace, rho) in &traces {
        let ws = trace.distinct_blocks();
        let profile = sawtooth(ws / 8 + 1, ws, u128::from(ws), u128::from(ws) * 1000);
        let arbitrary = replay_memory_profile(trace, &profile);
        if !arbitrary.completed {
            return Err(BenchError::invariant(format!(
                "E8: {label}: sawtooth profile too short"
            )));
        }
        let squares = profile.inner_squares();
        let mut source = squares.cycle();
        let square_report = replay_square_profile(trace, &mut source, *rho);
        square_table.push_row(vec![
            (*label).to_string(),
            arbitrary.io.to_string(),
            square_report.total_io.to_string(),
            fnum(square_report.total_io as f64 / arbitrary.io as f64),
        ]);
        square_pairs.push((arbitrary.io, square_report.total_io));
    }

    Ok(E8Result {
        dam_table,
        adaptivity_table,
        square_table,
        speedups,
        square_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dam_io_is_monotone_in_cache_size() {
        let result = run(Scale::Quick).expect("e8 runs");
        let io = result.dam_table.numeric_column("I/O");
        // Per algorithm the six cache sizes appear in increasing order;
        // I/O must be non-increasing within each group of six.
        for group in io.chunks(6) {
            for w in group.windows(2) {
                assert!(w[0] >= w[1], "I/O increased with more cache: {w:?}");
            }
        }
    }

    #[test]
    fn inplace_converts_cache_to_io_savings_scan_cannot() {
        let result = run(Scale::Quick).expect("e8 runs");
        let get = |name: &str| {
            result
                .speedups
                .iter()
                .find(|(l, _)| l == name)
                .map(|&(_, r)| r)
                .unwrap()
        };
        // The §3 phenomenon on real traces: growing boxes speed MM-Inplace
        // up dramatically; MM-Scan stays pinned near its streaming volume.
        assert!(
            get("MM-Inplace") > 2.0 * get("MM-Scan"),
            "speedups: inplace {} vs scan {}",
            get("MM-Inplace"),
            get("MM-Scan")
        );
        assert!(
            get("MM-Inplace") > 3.0,
            "inplace speedup {}",
            get("MM-Inplace")
        );
    }

    #[test]
    fn square_approximation_within_constant_factor() {
        let result = run(Scale::Quick).expect("e8 runs");
        for &(arbitrary, squares) in &result.square_pairs {
            let ratio = squares as f64 / arbitrary as f64;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "square decomposition changed I/O by {ratio}x"
            );
        }
    }
}

/// Registry adapter: E8 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e8"
    }
    fn title(&self) -> &'static str {
        "Trace-level validation (DAM and square-profile replay)"
    }
    fn deterministic(&self) -> bool {
        true // pure trace replay
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = Vec::new();
        for (label, speedup) in &result.speedups {
            metrics.push(crate::harness::metric(format!("speedup/{label}"), *speedup));
        }
        for (i, (profile_io, square_io)) in result.square_pairs.iter().enumerate() {
            metrics.push(crate::harness::metric(
                format!("square/{i}/profile_io"),
                *profile_io as f64,
            ));
            metrics.push(crate::harness::metric(
                format!("square/{i}/square_io"),
                *square_io as f64,
            ));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![
                result.dam_table.render(),
                result.adaptivity_table.render(),
                result.square_table.render(),
            ],
        })
    }
}
