//! **E9 — the Theorem 2 taxonomy.**
//!
//! Sweep the (a, b, c) grid across the regimes the theory distinguishes and
//! measure each configuration on its own worst-case profile:
//!
//! * c < 1 (any a, b) — adaptive: ratio Θ(1);
//! * a < b, c = 1 — adaptive (footnote 2): ratio Θ(1);
//! * a > b, c = 1 — the gap: ratio Θ(log_b n);
//! * a = b, c = 1 — already Θ(log_{M/B}) off in the DAM (footnote 3);
//!   on the worst-case profile the ratio grows like log as well.

use super::common::{log_b, size_sweep, RatioSeries};
use crate::{BenchError, Scale};
use cadapt_analysis::table::fnum;
use cadapt_analysis::{GrowthClass, Table};
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_on_profile, AbcParams, ClosedForms, ExecModel, RunConfig};

/// One taxonomy entry.
#[derive(Debug)]
pub struct E9Entry {
    /// Configuration label.
    pub label: String,
    /// Expected growth per the theory.
    pub expected: GrowthClass,
    /// Measured series.
    pub series: RatioSeries,
}

/// Result of E9.
#[derive(Debug)]
pub struct E9Result {
    /// Printed table.
    pub table: Table,
    /// Per-configuration outcomes.
    pub entries: Vec<E9Entry>,
}

fn grid() -> Result<Vec<(&'static str, AbcParams, GrowthClass)>, BenchError> {
    let p = |a, b, c| AbcParams::new(a, b, c, 1);
    Ok(vec![
        ("(8,4,1)  a>b, c=1", p(8, 4, 1.0)?, GrowthClass::Logarithmic),
        ("(7,4,1)  a>b, c=1", p(7, 4, 1.0)?, GrowthClass::Logarithmic),
        ("(3,2,1)  a>b, c=1", p(3, 2, 1.0)?, GrowthClass::Logarithmic),
        ("(8,4,0)  c=0", p(8, 4, 0.0)?, GrowthClass::Constant),
        ("(8,4,½)  c=½", p(8, 4, 0.5)?, GrowthClass::Constant),
        ("(2,4,1)  a<b", p(2, 4, 1.0)?, GrowthClass::Constant),
        ("(4,4,1)  a=b", p(4, 4, 1.0)?, GrowthClass::Logarithmic),
    ])
}

/// Run E9. Every configuration runs on the worst-case profile built from
/// its own (a, b) (the construction that is adversarial when c = 1).
///
/// # Errors
///
/// Propagates construction or execution failures as typed errors.
pub fn run(scale: Scale) -> Result<E9Result, BenchError> {
    let mut table = Table::new(
        "E9: adaptivity by (a, b, c) class on worst-case profiles",
        &["class", "n", "ratio", "expected"],
    );
    let mut entries = Vec::new();
    for (label, params, expected) in grid()? {
        let k_hi = scale.pick(
            if params.b() == 2 { 12 } else { 8 },
            if params.b() == 2 { 15 } else { 9 },
        );
        let mut points = Vec::new();
        for n in size_sweep(&params, 2, k_hi, u64::MAX) {
            let wc = WorstCase::for_problem(&params, n)?;
            let mut source = wc.source();
            let config = RunConfig {
                model: ExecModel::capacity(),
                ..RunConfig::default()
            };
            let report = run_on_profile(params, n, &mut source, &config)?;
            // For a < b the leaf-count potential is the wrong yardstick:
            // the algorithm is scan-dominated and footnote 2 calls it
            // trivially adaptive because it finishes in O(T(n)) I/Os on any
            // profile. Measure exactly that: I/Os consumed over serial time.
            let ratio = if params.a() < params.b() {
                let total = ClosedForms::for_size(params, n)?.total_time();
                report.total_io as f64 / total as f64
            } else {
                report.ratio()
            };
            table.push_row(vec![
                label.to_string(),
                n.to_string(),
                fnum(ratio),
                expected.to_string(),
            ]);
            points.push((log_b(&params, n), ratio));
        }
        entries.push(E9Entry {
            label: label.to_string(),
            expected,
            series: RatioSeries::classify(label, points),
        });
    }
    Ok(E9Result { table, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_classes_match_theory() {
        let result = run(Scale::Quick).expect("e9 runs");
        for e in &result.entries {
            assert_eq!(
                e.series.class, e.expected,
                "{}: slope {} r2 {}",
                e.label, e.series.fit.slope, e.series.fit.r2
            );
        }
    }

    #[test]
    fn gap_only_when_a_exceeds_b_and_c_is_one() {
        let result = run(Scale::Quick).expect("e9 runs");
        for e in &result.entries {
            let gap_regime = e.label.contains("a>b, c=1");
            if gap_regime {
                assert_eq!(e.series.class, GrowthClass::Logarithmic, "{}", e.label);
            }
        }
    }
}

/// Registry adapter: E9 through the experiment engine.
#[derive(Debug)]
pub struct Exp;

impl crate::harness::Experiment for Exp {
    fn id(&self) -> &'static str {
        "e9"
    }
    fn title(&self) -> &'static str {
        "Growth-law taxonomy over the (a, b, c) grid"
    }
    fn deterministic(&self) -> bool {
        true // worst-case profiles, no randomness
    }
    fn run(&self, ctx: crate::ExpCtx) -> Result<crate::harness::ExperimentOutput, BenchError> {
        let result = run(ctx.scale)?;
        let mut metrics = Vec::new();
        for entry in &result.entries {
            crate::harness::push_series(&mut metrics, "series", &entry.series);
            metrics.push(crate::harness::metric(
                format!("expected/{}", entry.label),
                crate::harness::class_code(entry.expected),
            ));
        }
        Ok(crate::harness::ExperimentOutput {
            metrics,
            tables: vec![result.table.render()],
        })
    }
}
