//! The service-layer fault-injection harness behind
//! `cadapt-bench faults --target serve`.
//!
//! `cadapt-serve` claims to be crash-safe: every state transition is
//! journaled before it takes effect, torn journal tails are dropped (not
//! replayed), sealed-segment corruption is refused typed (never replayed
//! silently), a `kill -9` mid-job re-runs the job to a byte-identical
//! result, and keyed double-submits dedup to the same id across
//! restarts. This module *attacks* those claims on a schedule: a seed
//! expands into per-case [`ServeFaultPlan`]s, each staging one crash or
//! abuse scenario against the real daemon, journal, and engine.
//!
//! The verdict per case is binary and strict, reusing the engine fault
//! suite's vocabulary ([`CaseOutcome`]):
//!
//! * **recovered** — the service absorbed the fault and the observable
//!   state (replayed events, result bytes, dedup ids) matches the
//!   no-fault reference exactly;
//! * **clean failure** — the service refused the damaged state with a
//!   typed error and replayed nothing from it.
//!
//! Anything else — a replay that silently drops acknowledged events, a
//! recovered result whose bytes differ from the uninterrupted run, a
//! corrupt segment that replays — aborts the suite with a typed
//! [`BenchError`]. The whole report is a pure function of the seed.

use crate::error::BenchError;
use crate::faults::CaseOutcome;
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_core::CancelToken;
use cadapt_serve::daemon::request_lines;
use cadapt_serve::protocol;
use cadapt_serve::{
    run_job, Algo, Daemon, DaemonConfig, JobSpec, Journal, JournalError, JournalEvent,
};
use rand::Rng;
use serde_json::{Map, Number, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// Version of the serve-fault report payload layout.
pub const REPORT_VERSION: u32 = 1;

/// Which crash or abuse scenario a case stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// Tear the final bytes off a crashed open journal segment: replay
    /// must keep the valid prefix and drop only the torn tail.
    TornTail,
    /// Flip one byte inside a sealed journal segment: replay must refuse
    /// with a typed corruption error, never replay silently.
    SealedCorruption,
    /// Kill the daemon between `Started` and `Finished`: the restarted
    /// daemon must re-run the job to a byte-identical result.
    KilledMidJob,
    /// Submit the same keyed spec twice, restart, submit again: every
    /// submit must dedup to the same id and the same result bytes.
    DoubleSubmit,
}

impl ServeFaultKind {
    /// Stable report string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeFaultKind::TornTail => "torn_tail",
            ServeFaultKind::SealedCorruption => "sealed_corruption",
            ServeFaultKind::KilledMidJob => "killed_mid_job",
            ServeFaultKind::DoubleSubmit => "double_submit",
        }
    }
}

/// What one case stages, derived deterministically from (seed, case).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFaultPlan {
    /// Suite seed.
    pub seed: u64,
    /// Case index.
    pub case: u64,
    /// The scenario (cases cycle through all four kinds).
    pub kind: ServeFaultKind,
    /// The job the scenario revolves around.
    pub spec: JobSpec,
    /// Bytes torn off the tail ([`ServeFaultKind::TornTail`] only).
    pub cut_back: u64,
}

impl ServeFaultPlan {
    /// Expand (seed, case) into a plan. Pure: same inputs, same plan.
    #[must_use]
    pub fn for_case(seed: u64, case: u64) -> ServeFaultPlan {
        let mut rng = trial_rng(seed ^ 0x5e27_7e5e, case);
        let kind = match case % 4 {
            0 => ServeFaultKind::TornTail,
            1 => ServeFaultKind::SealedCorruption,
            2 => ServeFaultKind::KilledMidJob,
            _ => ServeFaultKind::DoubleSubmit,
        };
        // Canonical mm_scan sizes (base 1, branching 4) only: the specs
        // must pass the same validation the daemon applies at submit.
        let n = match rng.gen_range(0..3) {
            0 => 4u64,
            1 => 16,
            _ => 64,
        };
        let mut spec = JobSpec::basic(Algo::MmScan, n);
        spec.seed = rng.gen_range(0..1_000_000);
        spec.total_cache = match rng.gen_range(0..3) {
            0 => 8u64,
            1 => 16,
            _ => 64,
        };
        if rng.gen_range(0..2) == 1 {
            // Half the cases run under a binding box budget so typed
            // budget outcomes flow through crash recovery too.
            spec.max_boxes = Some(rng.gen_range(2..6));
        }
        if kind == ServeFaultKind::DoubleSubmit {
            spec.key = Some(format!("case-{case}"));
        }
        let cut_back = rng.gen_range(1..24);
        ServeFaultPlan {
            seed,
            case,
            kind,
            spec,
            cut_back,
        }
    }
}

/// One case's report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCaseReport {
    /// The staged scenario.
    pub plan: ServeFaultPlan,
    /// The verdict.
    pub outcome: CaseOutcome,
    /// Deterministic one-line description of what was observed.
    pub detail: String,
}

/// The whole suite's report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFaultReport {
    /// Suite seed.
    pub seed: u64,
    /// Per-case entries, in case order.
    pub cases: Vec<ServeCaseReport>,
}

impl ServeFaultReport {
    /// Cases that recovered (the rest failed cleanly).
    #[must_use]
    pub fn recovered(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome == CaseOutcome::Recovered)
            .count()
    }

    /// The report's JSON payload (wrapped in a checksummed envelope by
    /// the caller). Pure function of the seed — no clocks, no paths,
    /// no port numbers.
    #[must_use]
    pub fn to_payload(&self) -> Value {
        let mut payload = Map::new();
        payload.insert(
            "serve_fault_report_version",
            Value::Number(Number::U(u128::from(REPORT_VERSION))),
        );
        payload.insert("seed", Value::Number(Number::U(u128::from(self.seed))));
        payload.insert(
            "cases",
            Value::Array(
                self.cases
                    .iter()
                    .map(|c| {
                        let mut entry = Map::new();
                        entry.insert("case", Value::Number(Number::U(u128::from(c.plan.case))));
                        entry.insert("kind", Value::String(c.plan.kind.as_str().to_string()));
                        entry.insert("spec", serde_json::to_value(&c.plan.spec));
                        entry.insert("outcome", Value::String(c.outcome.as_str().to_string()));
                        entry.insert("detail", Value::String(c.detail.clone()));
                        Value::Object(entry)
                    })
                    .collect(),
            ),
        );
        let count =
            |n: usize| Value::Number(Number::U(u128::from(cadapt_core::cast::u64_from_usize(n))));
        payload.insert("recovered", count(self.recovered()));
        payload.insert("clean_failures", count(self.cases.len() - self.recovered()));
        Value::Object(payload)
    }
}

fn violation(case: u64, what: impl std::fmt::Display) -> BenchError {
    BenchError::invariant(format!("serve fault case {case}: {what}"))
}

/// The journal events an uninterrupted run of `spec` (as job 0) appends
/// before a crash can interrupt it, plus the deterministic final result.
fn scripted_events(spec: &JobSpec) -> (Vec<JournalEvent>, String) {
    let result = run_job(spec, &CancelToken::new(), 0, &mut |_| {});
    let result_bytes = serde_json::to_value(&result).render_compact();
    let events = vec![
        JournalEvent::Submitted {
            id: 0,
            spec: spec.clone(),
        },
        JournalEvent::Started { id: 0, attempt: 0 },
        JournalEvent::Finished { id: 0, result },
    ];
    (events, result_bytes)
}

/// Write `events` through the real journal, then "crash" (drop without
/// sealing), leaving the open segment behind.
fn crash_with_events(
    dir: &Path,
    rotate_every: u64,
    events: &[JournalEvent],
    case: u64,
) -> Result<(), BenchError> {
    let (mut journal, replay) = Journal::open(dir, rotate_every).map_err(|e| violation(case, e))?;
    if !replay.events.is_empty() {
        return Err(violation(case, "scratch journal dir was not empty"));
    }
    for event in events {
        journal.append(event).map_err(|e| violation(case, e))?;
    }
    drop(journal);
    Ok(())
}

/// The one `.open` or `.log` segment file matching `sealed` in `dir`
/// (cases are staged so exactly one exists).
fn segment_path(dir: &Path, sealed: bool, case: u64) -> Result<PathBuf, BenchError> {
    let ext = if sealed { ".log" } else { ".open" };
    let mut found: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| violation(case, format!("listing journal dir: {e}")))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().ends_with(ext))
        .collect();
    found.sort();
    match found.first() {
        Some(first) => Ok(first.clone()),
        None => Err(violation(case, format!("no `{ext}` segment staged"))),
    }
}

/// Tear the final `cut` bytes off a crashed open segment and assert the
/// replay keeps exactly the valid prefix.
fn run_torn_tail(plan: &ServeFaultPlan, dir: &Path) -> Result<ServeCaseReport, BenchError> {
    let case = plan.case;
    let (events, _) = scripted_events(&plan.spec);
    crash_with_events(dir, 256, &events, case)?;
    let open = segment_path(dir, false, case)?;
    let mut torn = fs::read(&open).map_err(|e| violation(case, format!("reading segment: {e}")))?;
    let cut = usize::try_from(plan.cut_back)
        .unwrap_or(1)
        .min(torn.len().saturating_sub(1));
    let keep = torn.len().saturating_sub(cut);
    torn.truncate(keep);
    fs::write(&open, &torn).map_err(|e| violation(case, format!("tearing segment: {e}")))?;

    let (_journal, replay) = Journal::open(dir, 256).map_err(|e| {
        violation(
            case,
            format!("torn tail must recover, but replay refused: {e}"),
        )
    })?;
    // The cut is staged to land inside the final (Finished) line, so the
    // replay must keep the first two events and only them.
    if replay.events.as_slice() != &events[..2] {
        return Err(violation(
            case,
            format!(
                "replay kept {} events after tearing the tail (expected the 2-event prefix)",
                replay.events.len()
            ),
        ));
    }
    if !replay.dropped_torn_tail {
        return Err(violation(
            case,
            "replay did not report the dropped torn tail",
        ));
    }
    Ok(ServeCaseReport {
        plan: plan.clone(),
        outcome: CaseOutcome::Recovered,
        detail: format!(
            "tore {cut} tail bytes; replay kept the 2-event valid prefix and dropped the torn line"
        ),
    })
}

/// Flip one byte inside a sealed segment and assert replay refuses typed.
fn run_sealed_corruption(plan: &ServeFaultPlan, dir: &Path) -> Result<ServeCaseReport, BenchError> {
    let case = plan.case;
    let (events, _) = scripted_events(&plan.spec);
    // rotate_every = 2 seals the first two events into wal-00000000.log.
    crash_with_events(dir, 2, &events, case)?;
    let sealed = segment_path(dir, true, case)?;
    let mut content =
        fs::read(&sealed).map_err(|e| violation(case, format!("reading segment: {e}")))?;
    let mut rng = trial_rng(plan.seed ^ 0xf11b, case);
    let flip_at = rng.gen_range(0..cadapt_core::cast::u64_from_usize(content.len()));
    let flip_at = usize::try_from(flip_at).unwrap_or(0);
    content[flip_at] ^= 0x01;
    fs::write(&sealed, &content).map_err(|e| violation(case, format!("flipping byte: {e}")))?;

    match Journal::open(dir, 2) {
        Err(JournalError::Corrupt { segment, line, .. }) => Ok(ServeCaseReport {
            plan: plan.clone(),
            outcome: CaseOutcome::CleanFailure,
            detail: format!(
                "byte flip in sealed segment refused typed (corruption at {segment} line {line})"
            ),
        }),
        Err(other) => Err(violation(
            case,
            format!("expected a typed corruption refusal, got: {other}"),
        )),
        Ok(_) => Err(violation(
            case,
            "SILENT CORRUPTION — a byte-flipped sealed segment replayed without complaint",
        )),
    }
}

/// Parse one daemon response line, requiring `ok: true`.
fn ok_response(line: &str, what: &str, case: u64) -> Result<Map, BenchError> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| violation(case, format!("{what}: unparseable response: {e}")))?;
    let obj = value
        .as_object()
        .ok_or_else(|| violation(case, format!("{what}: response is not an object")))?;
    if obj.get("ok") != Some(&Value::Bool(true)) {
        return Err(violation(case, format!("{what}: daemon refused: {line}")));
    }
    Ok(obj.clone())
}

/// Extract the compact result bytes from a `results` response.
fn result_bytes(obj: &Map, case: u64) -> Result<String, BenchError> {
    obj.get("result")
        .map(Value::render_compact)
        .ok_or_else(|| violation(case, "results response carries no result"))
}

/// Bind a daemon on `dir`, run it on its own thread, send `lines`, and
/// wait for the clean shutdown (the last line must be `drain`).
fn with_daemon(
    dir: &Path,
    case: u64,
    lines: &[String],
) -> Result<(Vec<String>, cadapt_serve::Replay), BenchError> {
    let mut config = DaemonConfig::new(dir.to_path_buf());
    config.workers = 1;
    config.backoff_unit_ms = 0;
    let daemon = Daemon::bind(config).map_err(BenchError::from)?;
    let addr = daemon.local_addr().to_string();
    let replay = daemon.replay().clone();
    // cadapt-lint: allow(nondet-source) -- the daemon under attack needs its own thread to serve TCP; result bytes come from the per-job deterministic engine, which this suite asserts
    let handle = std::thread::spawn(move || daemon.run());
    let responses = request_lines(&addr, lines);
    let run_outcome = handle
        .join()
        .map_err(|_| violation(case, "daemon thread panicked"))?;
    run_outcome.map_err(BenchError::from)?;
    Ok((responses.map_err(BenchError::from)?, replay))
}

/// Crash between `Started` and `Finished`, restart, and assert the
/// recovered result is byte-identical to the uninterrupted run's.
fn run_killed_mid_job(plan: &ServeFaultPlan, dir: &Path) -> Result<ServeCaseReport, BenchError> {
    let case = plan.case;
    let (events, reference_bytes) = scripted_events(&plan.spec);
    // The kill window: the submit and the attempt start are journaled,
    // the finish never lands.
    crash_with_events(dir, 256, &events[..2], case)?;

    let lines = vec![
        protocol::bare_request_line("drain"),
        protocol::id_request_line("results", 0),
    ];
    let (responses, replay) = with_daemon(dir, case, &lines)?;
    if replay.clean_shutdown {
        return Err(violation(
            case,
            "a crashed journal replayed as a clean shutdown",
        ));
    }
    if replay.events.as_slice() != &events[..2] {
        return Err(violation(case, "replay lost acknowledged pre-kill events"));
    }
    ok_response(&responses[0], "drain", case)?;
    let results = ok_response(&responses[1], "results", case)?;
    let recovered_bytes = result_bytes(&results, case)?;
    if recovered_bytes != reference_bytes {
        return Err(violation(
            case,
            format!(
                "SILENT CORRUPTION — recovered result differs from the uninterrupted run\n  uninterrupted: {reference_bytes}\n  recovered:     {recovered_bytes}"
            ),
        ));
    }
    Ok(ServeCaseReport {
        plan: plan.clone(),
        outcome: CaseOutcome::Recovered,
        detail: "killed between Started and Finished; restart re-ran the job to byte-identical result bytes"
            .to_string(),
    })
}

/// Submit the same keyed spec twice, restart, submit again: one id, one
/// result, stable across the restart.
fn run_double_submit(plan: &ServeFaultPlan, dir: &Path) -> Result<ServeCaseReport, BenchError> {
    let case = plan.case;
    let submit = protocol::submit_line(&plan.spec);
    let first_lines = vec![
        submit.clone(),
        submit.clone(),
        protocol::bare_request_line("drain"),
        protocol::id_request_line("results", 0),
    ];
    let (responses, _) = with_daemon(dir, case, &first_lines)?;
    let first = ok_response(&responses[0], "first submit", case)?;
    let second = ok_response(&responses[1], "second submit", case)?;
    let first_id = first.get("id").and_then(Value::as_u64);
    let second_id = second.get("id").and_then(Value::as_u64);
    if first_id != Some(0) || second_id != Some(0) {
        return Err(violation(
            case,
            format!("double submit minted distinct ids: {first_id:?} vs {second_id:?}"),
        ));
    }
    if second.get("deduped") != Some(&Value::Bool(true)) {
        return Err(violation(case, "second submit was not flagged as deduped"));
    }
    ok_response(&responses[2], "drain", case)?;
    let before = result_bytes(&ok_response(&responses[3], "results", case)?, case)?;

    // Restart on the same journal: the key map must survive replay.
    let second_lines = vec![
        submit,
        protocol::id_request_line("results", 0),
        protocol::bare_request_line("drain"),
    ];
    let (responses, replay) = with_daemon(dir, case, &second_lines)?;
    if !replay.clean_shutdown {
        return Err(violation(
            case,
            "drained daemon left no clean-shutdown marker",
        ));
    }
    let resubmit = ok_response(&responses[0], "post-restart submit", case)?;
    if resubmit.get("id").and_then(Value::as_u64) != Some(0)
        || resubmit.get("deduped") != Some(&Value::Bool(true))
    {
        return Err(violation(case, "restart forgot the dedup key"));
    }
    let after = result_bytes(
        &ok_response(&responses[1], "post-restart results", case)?,
        case,
    )?;
    if before != after {
        return Err(violation(
            case,
            "SILENT CORRUPTION — the deduped job's result bytes changed across restart",
        ));
    }
    ok_response(&responses[2], "post-restart drain", case)?;
    Ok(ServeCaseReport {
        plan: plan.clone(),
        outcome: CaseOutcome::Recovered,
        detail: "three submits (one across a restart) deduped to id 0 with stable result bytes"
            .to_string(),
    })
}

/// Run one case inside its own scratch subdirectory.
fn run_case(seed: u64, case: u64, dir: &Path) -> Result<ServeCaseReport, BenchError> {
    let plan = ServeFaultPlan::for_case(seed, case);
    let case_dir = dir.join(format!("case-{case}"));
    let _ = fs::remove_dir_all(&case_dir);
    fs::create_dir_all(&case_dir).map_err(|e| BenchError::io("create", &case_dir, &e))?;
    match plan.kind {
        ServeFaultKind::TornTail => run_torn_tail(&plan, &case_dir),
        ServeFaultKind::SealedCorruption => run_sealed_corruption(&plan, &case_dir),
        ServeFaultKind::KilledMidJob => run_killed_mid_job(&plan, &case_dir),
        ServeFaultKind::DoubleSubmit => run_double_submit(&plan, &case_dir),
    }
}

/// Run `cases` service fault cases from `seed` inside `dir` (created if
/// missing), returning the deterministic suite report.
///
/// # Errors
///
/// A typed [`BenchError`] if any case exhibits silent corruption — a
/// replay that lies, a recovered result whose bytes drifted, a corrupt
/// segment that replays — or the scratch directory cannot be used.
pub fn run_suite(seed: u64, cases: u64, dir: &Path) -> Result<ServeFaultReport, BenchError> {
    fs::create_dir_all(dir).map_err(|e| BenchError::io("create", dir, &e))?;
    let mut reports = Vec::new();
    for case in 0..cases {
        reports.push(run_case(seed, case, dir)?);
    }
    Ok(ServeFaultReport {
        seed,
        cases: reports,
    })
}

/// A scratch directory for the suite, keyed by seed so concurrent suites
/// do not collide.
#[must_use]
pub fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("cadapt-serve-faults-{}-{seed}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_cycle_kinds() {
        for case in 0..8 {
            assert_eq!(
                ServeFaultPlan::for_case(7, case),
                ServeFaultPlan::for_case(7, case)
            );
        }
        let kinds: Vec<ServeFaultKind> = (0..4)
            .map(|c| ServeFaultPlan::for_case(7, c).kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                ServeFaultKind::TornTail,
                ServeFaultKind::SealedCorruption,
                ServeFaultKind::KilledMidJob,
                ServeFaultKind::DoubleSubmit,
            ]
        );
        assert_ne!(
            ServeFaultPlan::for_case(7, 0).spec,
            ServeFaultPlan::for_case(8, 0).spec,
            "different seeds must draw different specs"
        );
        assert!(ServeFaultPlan::for_case(7, 3).spec.key.is_some());
        assert!(ServeFaultPlan::for_case(7, 0).spec.key.is_none());
    }

    #[test]
    fn suite_is_deterministic_and_report_is_byte_stable() {
        let dir = scratch_dir(7);
        let first = run_suite(7, 4, &dir).unwrap();
        let second = run_suite(7, 4, &dir).unwrap();
        assert_eq!(first, second, "same seed, same verdicts");
        assert_eq!(
            first.to_payload().render_pretty(),
            second.to_payload().render_pretty(),
            "the report must be byte-stable"
        );
        assert_eq!(first.cases.len(), 4);
        // Every scenario but sealed corruption must recover; corruption
        // must be refused (a clean failure), never replayed.
        for c in &first.cases {
            let expected = match c.plan.kind {
                ServeFaultKind::SealedCorruption => CaseOutcome::CleanFailure,
                _ => CaseOutcome::Recovered,
            };
            assert_eq!(
                c.outcome, expected,
                "case {} ({:?})",
                c.plan.case, c.plan.kind
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_kind_recovers_across_more_seeds() {
        let dir = scratch_dir(23);
        let report = run_suite(23, 8, &dir).unwrap();
        assert_eq!(
            report.recovered(),
            6,
            "all but the 2 corruption cases recover"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
