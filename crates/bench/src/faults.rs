//! The deterministic fault-injection harness behind `cadapt-bench faults`.
//!
//! The engine claims to be unkillable: trial panics are isolated, writes
//! are atomic, artifacts are checksummed, interrupted runs resume
//! bit-identically. This module *attacks* those claims on a schedule. A
//! seed expands into per-case [`FaultPlan`]s — which trial panics, which
//! write operation fails outright, which one "crashes" mid-write leaving
//! a truncated staging file — and each case drives a small synthetic
//! trial workload through the real machinery (`run_trials_isolated`,
//! [`TrialSpans`] resume, [`ArtifactWriter`] persistence, envelope
//! verification) under that plan.
//!
//! The verdict per case is binary and strict:
//!
//! * **recovered** — the final artifact verifies and its payload is
//!   bit-identical to an in-process no-fault reference;
//! * **clean failure** — the harness surfaced a typed error and no
//!   artifact that verifies exists.
//!
//! Anything else — an artifact that verifies but differs from the
//! reference — is **silent corruption**, and the suite fails with a
//! typed error naming the case. The whole report (written as a
//! checksummed envelope, default `FAULTS.json`) is a pure function of
//! the seed: two runs of `cadapt-bench faults --seed 7` must produce
//! byte-identical reports, which CI asserts.

use crate::error::BenchError;
use crate::harness::store::{self, ArtifactWriter, StoreError};
use cadapt_analysis::checkpoint::{run_missing_trials, TrialSpans};
use cadapt_analysis::montecarlo::trial_rng;
use cadapt_analysis::parallel::run_trials_isolated;
use rand::Rng;
use serde_json::{Map, Number, Value};
use std::convert::Infallible;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Trials in each case's synthetic workload.
pub const TRIALS_PER_CASE: u64 = 16;

/// Version of the fault-report payload layout.
pub const REPORT_VERSION: u32 = 1;

/// What one case injects, derived deterministically from (seed, case).
///
/// Each fault site is drawn from a range wider than the live region, so
/// some cases skip some faults — the no-fault path is part of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Suite seed.
    pub seed: u64,
    /// Case index.
    pub case: u64,
    /// Trial whose first attempt panics (`>= TRIALS_PER_CASE` ⇒ none).
    pub panic_trial: Option<u64>,
    /// Writer operation that fails with no side effects.
    pub fail_write_op: Option<u64>,
    /// Writer operation that "crashes" mid-write: a truncated staging
    /// file is left behind and the destination is untouched.
    pub truncate_write_op: Option<u64>,
}

impl FaultPlan {
    /// Expand (seed, case) into a plan. Pure: same inputs, same plan.
    #[must_use]
    pub fn for_case(seed: u64, case: u64) -> FaultPlan {
        let mut rng = trial_rng(seed, case);
        let draw = |rng: &mut rand_chacha::ChaCha8Rng, live: u64, dead: u64| {
            let pick = rng.gen_range(0..live + dead);
            (pick < live).then_some(pick)
        };
        FaultPlan {
            seed,
            case,
            panic_trial: draw(&mut rng, TRIALS_PER_CASE, TRIALS_PER_CASE / 2),
            // The workload performs up to 2 writer ops (first try + retry);
            // drawing from 0..4 leaves dead space for fault-free cases.
            fail_write_op: draw(&mut rng, 2, 2),
            truncate_write_op: draw(&mut rng, 2, 2),
        }
    }
}

/// An [`ArtifactWriter`] that injects the plan's write faults, counting
/// operations across the case so the fault schedule is deterministic.
pub struct FaultyWriter<'a> {
    inner: &'a dyn ArtifactWriter,
    plan: FaultPlan,
    ops: AtomicU64,
}

impl std::fmt::Debug for FaultyWriter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyWriter")
            .field("plan", &self.plan)
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}

impl<'a> FaultyWriter<'a> {
    /// Wrap `inner` under `plan`.
    #[must_use]
    pub fn new(inner: &'a dyn ArtifactWriter, plan: FaultPlan) -> FaultyWriter<'a> {
        FaultyWriter {
            inner,
            plan,
            ops: AtomicU64::new(0),
        }
    }

    /// How many persist operations have been attempted.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

impl ArtifactWriter for FaultyWriter<'_> {
    fn persist(&self, path: &Path, text: &str) -> Result<(), StoreError> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.plan.fail_write_op == Some(op) {
            return Err(StoreError::Injected {
                action: "write",
                path: path.to_path_buf(),
            });
        }
        if self.plan.truncate_write_op == Some(op) {
            // Simulate a crash mid-write: truncated bytes reach the
            // staging file, the rename never happens, the destination is
            // untouched. The stray .tmp is exactly what a real crash
            // leaves; nothing may ever read it back.
            let cut = text.len() / 2;
            let _ = std::fs::write(store::tmp_path(path), &text[..cut]);
            return Err(StoreError::Injected {
                action: "truncate",
                path: path.to_path_buf(),
            });
        }
        self.inner.persist(path, text)
    }
}

/// How one case ended (silent corruption is not an outcome: it aborts the
/// suite as a typed error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The engine absorbed every injected fault and produced a verified
    /// artifact bit-identical to the no-fault reference.
    Recovered,
    /// The faults exceeded the engine's retry budget; it reported a typed
    /// error and left no artifact that verifies.
    CleanFailure,
}

impl CaseOutcome {
    /// Stable report string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CaseOutcome::Recovered => "recovered",
            CaseOutcome::CleanFailure => "clean_failure",
        }
    }
}

/// One case's report entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseReport {
    /// The plan that was injected.
    pub plan: FaultPlan,
    /// Whether the injected panic actually fired and was isolated.
    pub panic_isolated: bool,
    /// Writer operations attempted (counts retries).
    pub write_ops: u64,
    /// The verdict.
    pub outcome: CaseOutcome,
}

/// The whole suite's report.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Suite seed.
    pub seed: u64,
    /// Per-case entries, in case order.
    pub cases: Vec<CaseReport>,
}

impl FaultReport {
    /// Cases that recovered (the rest failed cleanly).
    #[must_use]
    pub fn recovered(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome == CaseOutcome::Recovered)
            .count()
    }

    /// The report's JSON payload (wrapped in a checksummed envelope by
    /// the caller). Pure function of the seed — no clocks, no paths.
    #[must_use]
    pub fn to_payload(&self) -> Value {
        let mut payload = Map::new();
        payload.insert(
            "fault_report_version",
            Value::Number(Number::U(u128::from(REPORT_VERSION))),
        );
        payload.insert("seed", Value::Number(Number::U(u128::from(self.seed))));
        payload.insert(
            "trials_per_case",
            Value::Number(Number::U(u128::from(TRIALS_PER_CASE))),
        );
        let opt = |o: Option<u64>| match o {
            Some(v) => Value::Number(Number::U(u128::from(v))),
            None => Value::Null,
        };
        payload.insert(
            "cases",
            Value::Array(
                self.cases
                    .iter()
                    .map(|c| {
                        let mut entry = Map::new();
                        entry.insert("case", Value::Number(Number::U(u128::from(c.plan.case))));
                        entry.insert("panic_trial", opt(c.plan.panic_trial));
                        entry.insert("fail_write_op", opt(c.plan.fail_write_op));
                        entry.insert("truncate_write_op", opt(c.plan.truncate_write_op));
                        entry.insert("panic_isolated", Value::Bool(c.panic_isolated));
                        entry.insert(
                            "write_ops",
                            Value::Number(Number::U(u128::from(c.write_ops))),
                        );
                        entry.insert("outcome", Value::String(c.outcome.as_str().to_string()));
                        Value::Object(entry)
                    })
                    .collect(),
            ),
        );
        let count =
            |n: usize| Value::Number(Number::U(u128::from(cadapt_core::cast::u64_from_usize(n))));
        payload.insert("recovered", count(self.recovered()));
        payload.insert("clean_failures", count(self.cases.len() - self.recovered()));
        Value::Object(payload)
    }
}

/// The case's trial workload: a pure function of (seed, case, trial), so
/// the no-fault reference can be computed in-process.
fn sample(seed: u64, case: u64, trial: u64) -> f64 {
    let mut rng = trial_rng(seed ^ (case << 32), trial);
    rng.gen_range(0.0_f64..1.0)
}

/// The artifact a case persists: its trial values (by index) plus their
/// trial-ordered sum — the order-sensitive reduction a real record has.
fn case_payload(seed: u64, case: u64, values: &[(u64, f64)]) -> Value {
    let mut payload = Map::new();
    payload.insert("case", Value::Number(Number::U(u128::from(case))));
    payload.insert("seed", Value::Number(Number::U(u128::from(seed))));
    payload.insert(
        "trials",
        Value::Array(
            values
                .iter()
                .map(|&(t, x)| {
                    Value::Array(vec![
                        Value::Number(Number::U(u128::from(t))),
                        Value::Number(Number::F(x)),
                    ])
                })
                .collect(),
        ),
    );
    let total: f64 = values.iter().map(|&(_, x)| x).sum();
    payload.insert("sum", Value::Number(Number::F(total)));
    Value::Object(payload)
}

/// Run one case under its plan inside `dir`. Returns the case report, or
/// a typed error if the engine silently emitted wrong data (the one
/// unforgivable outcome) or the scratch directory itself failed.
fn run_case(seed: u64, case: u64, dir: &Path) -> Result<CaseReport, BenchError> {
    let plan = FaultPlan::for_case(seed, case);

    // The no-fault reference, computed entirely in process.
    let reference: Vec<(u64, f64)> = (0..TRIALS_PER_CASE)
        .map(|t| (t, sample(seed, case, t)))
        .collect();
    let reference_payload = case_payload(seed, case, &reference);

    // Phase 1: the workload, with the planned trial panicking on its
    // first attempt. The engine must isolate it — every other trial's
    // value survives.
    let first_pass = run_trials_isolated(TRIALS_PER_CASE, 2, |t| {
        if plan.panic_trial == Some(t) {
            // cadapt-lint: allow(panic-reach) -- deliberate injected fault: this panic exists to be caught by the engine under test
            panic!("injected fault: case {case} trial {t}");
        }
        sample(seed, case, t)
    });
    let mut done = TrialSpans::new();
    let mut values: Vec<(u64, f64)> = Vec::new();
    let mut panic_isolated = false;
    for (t, outcome) in first_pass.into_iter().enumerate() {
        let t = cadapt_core::cast::u64_from_usize(t);
        match outcome {
            Ok(x) => {
                done.insert(t);
                values.push((t, x));
            }
            Err(p) => {
                if p.trial != t || !p.message.contains("injected fault") {
                    return Err(BenchError::invariant(format!(
                        "case {case}: unexpected trial failure: {p}"
                    )));
                }
                panic_isolated = true;
            }
        }
    }
    if plan.panic_trial.is_some() != panic_isolated {
        return Err(BenchError::invariant(format!(
            "case {case}: planned panic {:?} but isolation observed = {panic_isolated}",
            plan.panic_trial
        )));
    }

    // Phase 2: resume exactly the missing trials (the checkpoint path a
    // killed run takes) and merge in trial order.
    let fresh = run_missing_trials(TRIALS_PER_CASE, 2, &done, |t| {
        Ok::<f64, Infallible>(sample(seed, case, t))
    })
    .map_err(|e| BenchError::invariant(format!("case {case}: resume pass failed: {e}")))?;
    values.extend(fresh);
    values.sort_unstable_by_key(|&(t, _)| t);
    let payload = case_payload(seed, case, &values);

    // Phase 3: persist through the faulty writer, one retry allowed.
    // Clear leftovers from a previous suite in the same scratch dir so the
    // phase-4 verdict only ever sees THIS case's writes.
    let artifact = dir.join(format!("case-{case}.json"));
    let _ = std::fs::remove_file(&artifact);
    let _ = std::fs::remove_file(store::tmp_path(&artifact));
    let writer = FaultyWriter::new(&store::FsWriter, plan);
    let first_try = store::write_envelope(&writer, &artifact, &payload);
    let persisted = match first_try {
        Ok(()) => true,
        Err(_) => store::write_envelope(&writer, &artifact, &payload).is_ok(),
    };
    let write_ops = writer.ops();

    // Phase 4: the verdict. Whatever happened above, the one thing that
    // must never exist is a *verifying* artifact with the wrong payload.
    let outcome = match store::read_envelope(&artifact) {
        Ok(read_back) => {
            if read_back != reference_payload {
                return Err(BenchError::invariant(format!(
                    "case {case}: SILENT CORRUPTION — artifact verifies but differs from the no-fault reference"
                )));
            }
            if !persisted {
                return Err(BenchError::invariant(format!(
                    "case {case}: write reported failure but a verifying artifact exists"
                )));
            }
            CaseOutcome::Recovered
        }
        Err(StoreError::Io { .. }) if !persisted => CaseOutcome::CleanFailure,
        Err(StoreError::Envelope { detail, .. }) => {
            return Err(BenchError::invariant(format!(
                "case {case}: destination holds an unverifiable artifact ({detail}) — atomic persistence was violated"
            )));
        }
        Err(e) => {
            return Err(BenchError::invariant(format!(
                "case {case}: write reported success but read-back failed: {e}"
            )));
        }
    };

    Ok(CaseReport {
        plan,
        panic_isolated,
        write_ops,
        outcome,
    })
}

/// Run `cases` fault-injection cases from `seed` inside `dir` (created if
/// missing), returning the deterministic suite report.
///
/// # Errors
///
/// A typed [`BenchError`] if any case exhibits silent corruption, breaks
/// atomicity, or the scratch directory cannot be used.
pub fn run_suite(seed: u64, cases: u64, dir: &Path) -> Result<FaultReport, BenchError> {
    std::fs::create_dir_all(dir).map_err(|e| BenchError::io("create", dir, &e))?;
    // Injected panics are expected here by construction; keep them off
    // stderr while the suite runs, then restore the previous hook.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut reports = Vec::new();
    let mut first_error = None;
    for case in 0..cases {
        match run_case(seed, case, dir) {
            Ok(report) => reports.push(report),
            Err(e) => {
                first_error = Some(e);
                break;
            }
        }
    }
    std::panic::set_hook(previous_hook);
    match first_error {
        Some(e) => Err(e),
        None => Ok(FaultReport {
            seed,
            cases: reports,
        }),
    }
}

/// A scratch directory for the suite, keyed by seed so concurrent suites
/// do not collide (contents are overwritten deterministically per case).
#[must_use]
pub fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("cadapt-faults-{}-{seed}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_varied() {
        for case in 0..8 {
            assert_eq!(FaultPlan::for_case(7, case), FaultPlan::for_case(7, case));
        }
        let plans: Vec<FaultPlan> = (0..16).map(|c| FaultPlan::for_case(7, c)).collect();
        assert!(plans.iter().any(|p| p.panic_trial.is_some()));
        assert!(plans.iter().any(|p| p.panic_trial.is_none()));
        assert!(plans.iter().any(|p| p.fail_write_op.is_some()));
        assert!(plans.iter().any(|p| p.truncate_write_op.is_some()));
        assert_ne!(
            FaultPlan::for_case(7, 0),
            FaultPlan::for_case(8, 0),
            "different seeds must draw different plans"
        );
    }

    #[test]
    fn faulty_writer_injects_on_schedule_only() {
        let dir = scratch_dir(101);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        let plan = FaultPlan {
            seed: 0,
            case: 0,
            panic_trial: None,
            fail_write_op: Some(0),
            truncate_write_op: Some(1),
        };
        let writer = FaultyWriter::new(&store::FsWriter, plan);
        // Op 0: clean failure, nothing on disk.
        assert!(matches!(
            writer.persist(&path, "hello").unwrap_err(),
            StoreError::Injected {
                action: "write",
                ..
            }
        ));
        assert!(!path.exists());
        // Op 1: truncation — staging file exists, destination untouched.
        assert!(matches!(
            writer.persist(&path, "hello").unwrap_err(),
            StoreError::Injected {
                action: "truncate",
                ..
            }
        ));
        assert!(!path.exists());
        assert!(store::tmp_path(&path).exists());
        // Op 2: past the schedule, the write goes through.
        writer.persist(&path, "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        assert_eq!(writer.ops(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_is_deterministic_and_never_silently_corrupts() {
        let dir = scratch_dir(7);
        let first = run_suite(7, 6, &dir).unwrap();
        let second = run_suite(7, 6, &dir).unwrap();
        assert_eq!(first, second, "same seed, same verdicts");
        assert_eq!(
            first.to_payload().render_pretty(),
            second.to_payload().render_pretty(),
            "the report must be byte-stable"
        );
        assert_eq!(first.cases.len(), 6);
        // The retry budget absorbs any single write fault, so every case
        // with at most one injected write fault must recover.
        for c in &first.cases {
            let write_faults = usize::from(c.plan.fail_write_op.is_some_and(|op| op < 2))
                + usize::from(c.plan.truncate_write_op.is_some_and(|op| op < 2));
            if write_faults <= 1 {
                assert_eq!(
                    c.outcome,
                    CaseOutcome::Recovered,
                    "case {} with {write_faults} write fault(s)",
                    c.plan.case
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panic_injection_is_isolated_not_fatal() {
        let dir = scratch_dir(11);
        let report = run_suite(11, 8, &dir).unwrap();
        let with_panic = report
            .cases
            .iter()
            .filter(|c| c.plan.panic_trial.is_some())
            .count();
        assert!(with_panic > 0, "the seed must exercise panic injection");
        for c in &report.cases {
            assert_eq!(c.panic_isolated, c.plan.panic_trial.is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
