//! Peak-heap metering for the constant-memory claims of the streaming
//! cursor pipelines (feature `count-alloc`).
//!
//! With the feature enabled, the `cadapt-bench` binary installs
//! `CountingAlloc` as the global allocator: a thin shim over the system
//! allocator that tracks live bytes and their high-water mark in two
//! relaxed atomics. The perf suite's `streaming` section resets the mark,
//! drives a pipeline, and reads `peak_bytes` — turning "O(1) resident
//! state" from a code-review argument into a measured, CI-asserted number.
//!
//! Without the feature (the default), every probe returns `None`, nothing
//! is installed, and the crate contains no `unsafe` at all. Metering adds
//! two relaxed atomic RMWs per allocation, so the default build keeps the
//! untouched system allocator for honest throughput timings.
//!
//! Accounting is process-wide and approximate in exactly one direction:
//! `realloc` is counted as free-then-allocate of the requested sizes, and
//! allocator bookkeeping overhead is invisible, so the reported peak is a
//! **lower bound** on true RSS growth. That is the right direction for a
//! ceiling assertion: a flat lower bound can still fail loudly when a
//! pipeline materialises a profile.

/// Live/peak counters and the allocator shim. Only this module may use
/// `unsafe`, and only to forward to the system allocator.
#[cfg(feature = "count-alloc")]
#[allow(unsafe_code)]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// A [`System`] wrapper that tracks live bytes and their high-water
    /// mark. Relaxed ordering throughout: the counters carry no data
    /// dependencies, and the meter's readers synchronise via the joins
    /// that end the region they measure.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CountingAlloc;

    fn on_alloc(bytes: usize) {
        let live = LIVE.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(bytes: usize) {
        LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
    }

    // SAFETY: every method forwards verbatim to `System`, which upholds
    // the `GlobalAlloc` contract; the counter updates touch no allocator
    // state and never unwind.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                on_dealloc(layout.size());
                on_alloc(new_size);
            }
            p
        }
    }

    /// Bytes currently live.
    pub fn live_bytes() -> u64 {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`reset_peak`].
    pub fn peak_bytes() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }

    /// Restart the high-water mark from the current live total.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(feature = "count-alloc")]
pub use counting::CountingAlloc;

/// Bytes currently allocated, or `None` when metering is compiled out.
#[must_use]
pub fn live_bytes() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(counting::live_bytes())
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// Peak bytes since the last [`reset_peak`], or `None` when metering is
/// compiled out.
#[must_use]
pub fn peak_bytes() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(counting::peak_bytes())
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// Restart the peak high-water mark from the current live total. A no-op
/// when metering is compiled out.
pub fn reset_peak() {
    #[cfg(feature = "count-alloc")]
    counting::reset_peak();
}

/// Measure the peak heap growth of `f` relative to the bytes live at
/// entry: resets the mark, runs `f`, and returns `(result, growth)` where
/// growth is `None` when metering is compiled out.
pub fn measure_peak_growth<T>(f: impl FnOnce() -> T) -> (T, Option<u64>) {
    let base = live_bytes();
    reset_peak();
    let result = f();
    let growth = match (peak_bytes(), base) {
        (Some(peak), Some(base)) => Some(peak.saturating_sub(base)),
        _ => None,
    };
    (result, growth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_agree_with_the_feature_gate() {
        let metered = cfg!(feature = "count-alloc");
        assert_eq!(live_bytes().is_some(), metered);
        assert_eq!(peak_bytes().is_some(), metered);
        let ((), growth) = measure_peak_growth(|| ());
        assert_eq!(growth.is_some(), metered);
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn peak_growth_sees_a_large_allocation() {
        // The meter only observes allocations when installed as the
        // global allocator (the binary does that); as a plain unit test we
        // can still check reset/read plumbing is monotone and consistent.
        let ((), growth) = measure_peak_growth(|| {
            let v = vec![0u8; 1 << 20];
            std::hint::black_box(&v);
        });
        let growth = growth.expect("feature is on");
        // Not installed globally here, so growth may legitimately be 0 —
        // but it must never underflow into nonsense.
        assert!(growth < (1 << 30), "implausible growth {growth}");
    }
}
