//! Harness: E8 — abstract model vs block-level replay of real traces.
use cadapt_bench::experiments::e8_trace_validation;
use cadapt_bench::Scale;

fn main() {
    let result = e8_trace_validation::run(Scale::from_args());
    print!("{}", result.dam_table);
    println!();
    print!("{}", result.adaptivity_table);
    println!();
    print!("{}", result.square_table);
}
