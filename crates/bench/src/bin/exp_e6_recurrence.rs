//! Harness: E6 — Lemma-3 recurrence bounds vs Monte-Carlo measurement.
use cadapt_bench::experiments::e6_recurrence;
use cadapt_bench::Scale;

fn main() {
    let result = e6_recurrence::run(Scale::from_args());
    print!("{}", result.table);
    let contained = result.rows.iter().filter(|r| r.contained()).count();
    println!();
    println!(
        "{contained}/{} measurements inside predicted bounds",
        result.rows.len()
    );
    println!();
    print!("{}", result.eq6_table);
    println!();
    for (label, _, product) in &result.eq6 {
        println!("{label:<20} telescoped Eq.6 margin product: {product:.3}");
    }
    println!();
    for (label, eq7, (lo, hi)) in &result.eq7_eq8 {
        let boundary_ok = eq7
            .iter()
            .filter(|(_, ratio_hi)| *ratio_hi >= 2.0)
            .all(|(c, _)| c.holds());
        println!(
            "{label:<20} Eq.7 holds at the Eq.9 boundary: {boundary_ok}                Eq.8 product in [{lo:.3}, {hi:.3}]"
        );
    }
}
