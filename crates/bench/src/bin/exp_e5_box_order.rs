//! Harness: E5 — box-order perturbations do not close the gap.
use cadapt_bench::experiments::e5_box_order;
use cadapt_bench::Scale;

fn main() {
    let result = e5_box_order::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for s in &result.series {
        println!(
            "{:<24} growth: {} (slope {:.3}/level)",
            s.label, s.class, s.fit.slope
        );
    }
}
