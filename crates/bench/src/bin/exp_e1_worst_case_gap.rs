//! Harness: E1 — the worst-case gap (Figure 1 + Theorem 2).
use cadapt_bench::experiments::e1_worst_case_gap;
use cadapt_bench::Scale;

fn main() {
    let result = e1_worst_case_gap::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for s in &result.series {
        println!(
            "{:<22} growth: {} (slope {:.3}/level, r² {:.3})",
            s.label, s.class, s.fit.slope, s.fit.r2
        );
    }
}
