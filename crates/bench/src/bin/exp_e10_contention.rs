//! Harness: E10 — realistic contention profiles behave like smoothed ones.
use cadapt_bench::experiments::e10_contention;
use cadapt_bench::Scale;

fn main() {
    let result = e10_contention::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for s in &result.series {
        println!(
            "{:<14} growth: {} (slope {:.3}/level)",
            s.label, s.class, s.fit.slope
        );
    }
}
