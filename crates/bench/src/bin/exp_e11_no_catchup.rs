//! Harness: E11 — the No-Catch-up Lemma at scale (Lemma 2).
use cadapt_bench::experiments::e11_no_catchup;
use cadapt_bench::Scale;

fn main() {
    let result = e11_no_catchup::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    println!(
        "checked {} instances, {} violations",
        result.checked, result.violations
    );
}
