//! Harness: E13 — the introduction's multi-programmed system, quantified.
use cadapt_bench::experiments::e13_scheduling;
use cadapt_bench::Scale;

fn main() {
    let result = e13_scheduling::run(Scale::from_args());
    print!("{}", result.table);
}
