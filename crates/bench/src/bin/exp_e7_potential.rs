//! Harness: E7 — the potential lemma (Lemma 1), measured.
use cadapt_bench::experiments::e7_potential;
use cadapt_bench::Scale;

fn main() {
    let result = e7_potential::run(Scale::from_args());
    print!("{}", result.table);
}
