//! Harness: E3 — box-size perturbations do not close the gap.
use cadapt_bench::experiments::e3_size_perturb;
use cadapt_bench::Scale;

fn main() {
    let result = e3_size_perturb::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for s in &result.series {
        println!(
            "{:<16} growth: {} (slope {:.3}/level)",
            s.label, s.class, s.fit.slope
        );
    }
}
