//! Harness: the DESIGN.md ablation suite (A1–A4).
use cadapt_bench::experiments::ablations;
use cadapt_bench::Scale;

fn main() {
    let result = ablations::run(Scale::from_args());
    for table in [
        &result.shuffle_table,
        &result.layout_table,
        &result.model_table,
        &result.min_box_table,
    ] {
        print!("{table}");
        println!();
    }
    for (name, series) in [
        ("A1", &result.shuffle_series),
        ("A2", &result.layout_series),
        ("A3", &result.model_series),
        ("A4", &result.min_box_series),
    ] {
        for s in series {
            println!(
                "{name} {:<24} growth: {} (slope {:.3}/level)",
                s.label, s.class, s.fit.slope
            );
        }
    }
}
