//! Harness: run every experiment and print every table (EXPERIMENTS.md is
//! generated from this output).
use cadapt_analysis::Table;
use cadapt_bench::experiments::*;
use cadapt_bench::Scale;
use std::path::PathBuf;

/// Optional `--json DIR`: write every table as JSON next to the printout.
fn json_dir() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn emit(table: &Table, dir: Option<&PathBuf>) {
    print!("{table}");
    if let Some(dir) = dir {
        if let Err(e) = table.write_json(dir) {
            eprintln!("[exp_all] failed to write JSON: {e}");
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    let json = json_dir();
    eprintln!("[exp_all] running e1…");
    let e1 = e1_worst_case_gap::run(scale);
    emit(&e1.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e2…");
    let e2 = e2_iid_smoothing::run(scale);
    emit(&e2.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e3…");
    let e3 = e3_size_perturb::run(scale);
    emit(&e3.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e4…");
    let e4 = e4_start_shift::run(scale);
    emit(&e4.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e5…");
    let e5 = e5_box_order::run(scale);
    emit(&e5.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e6…");
    let e6 = e6_recurrence::run(scale);
    emit(&e6.table, json.as_ref());
    emit(&e6.eq6_table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e7…");
    let e7 = e7_potential::run(scale);
    emit(&e7.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e8…");
    let e8 = e8_trace_validation::run(scale);
    emit(&e8.dam_table, json.as_ref());
    emit(&e8.adaptivity_table, json.as_ref());
    emit(&e8.square_table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e9…");
    let e9 = e9_taxonomy::run(scale);
    emit(&e9.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e10…");
    let e10 = e10_contention::run(scale);
    emit(&e10.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e11…");
    let e11 = e11_no_catchup::run(scale);
    emit(&e11.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e12…");
    let e12 = e12_scan_hiding::run(scale);
    emit(&e12.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running e13…");
    let e13 = e13_scheduling::run(scale);
    emit(&e13.table, json.as_ref());
    println!();
    eprintln!("[exp_all] running ab…");
    let ab = ablations::run(scale);
    emit(&ab.shuffle_table, json.as_ref());
    emit(&ab.layout_table, json.as_ref());
    emit(&ab.model_table, json.as_ref());
    emit(&ab.min_box_table, json.as_ref());
}
