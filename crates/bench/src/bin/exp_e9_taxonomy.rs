//! Harness: E9 — the Theorem 2 (a, b, c) taxonomy.
use cadapt_bench::experiments::e9_taxonomy;
use cadapt_bench::Scale;

fn main() {
    let result = e9_taxonomy::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for e in &result.entries {
        println!(
            "{:<20} measured: {:<9} expected: {:<9} (slope {:.3}/level)",
            e.label,
            e.series.class.to_string(),
            e.expected.to_string(),
            e.series.fit.slope
        );
    }
}
