//! Harness: E12 — scan-hiding closes the worst-case gap at constant
//! overhead.
use cadapt_bench::experiments::e12_scan_hiding;
use cadapt_bench::Scale;

fn main() {
    let result = e12_scan_hiding::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for (orig, hidden) in &result.series {
        println!(
            "{:<28} {} (slope {:.3})   →   {:<30} {} (slope {:.3})",
            orig.label, orig.class, orig.fit.slope, hidden.label, hidden.class, hidden.fit.slope
        );
    }
}
