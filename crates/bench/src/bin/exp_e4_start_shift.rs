//! Harness: E4 — random start-time shifts do not close the gap.
use cadapt_bench::experiments::e4_start_shift;
use cadapt_bench::Scale;

fn main() {
    let result = e4_start_shift::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    let s = &result.series;
    println!(
        "growth: {} (slope {:.3}/level, r² {:.3})",
        s.class, s.fit.slope, s.fit.r2
    );
}
