//! Harness: E2 — i.i.d. smoothing closes the gap (Theorem 1/3).
use cadapt_bench::experiments::e2_iid_smoothing;
use cadapt_bench::Scale;

fn main() {
    let result = e2_iid_smoothing::run(Scale::from_args());
    print!("{}", result.table);
    println!();
    for s in &result.series {
        println!(
            "{:<50} growth: {} (slope {:.3}/level)",
            s.label, s.class, s.fit.slope
        );
    }
}
