//! The bench harness's typed error chain.
//!
//! Every fallible path in `cadapt-bench` — experiment execution, record
//! (de)serialization, artifact IO, golden comparison, checkpoint handling
//! — funnels into [`BenchError`], and `main` is the **only** place that
//! turns one into a process exit code. The error taxonomy mirrors the
//! failure model in DESIGN.md: user mistakes (`Usage`), semantic failures
//! the harness detected and reported cleanly (`Golden`, `Invariant`),
//! environmental failures (`Io`), data we refuse to trust (`Record`,
//! `Corrupt`, `Checkpoint`), and isolated trial panics (`Panicked`).
//!
//! The library half of the crate never panics on these paths (enforced by
//! `cadapt-lint`'s `panic-reach` rule, which covers `crates/bench` since
//! the fault-tolerance rework); anything that used to `unwrap` now
//! `?`-propagates here.

use cadapt_analysis::{McError, SweepError, TrialPanic};
use cadapt_core::CoreError;
use cadapt_recursion::RunError;
use cadapt_serve::ServeError;
use std::fmt;
use std::path::PathBuf;

use crate::harness::record::RecordError;
use crate::harness::store::StoreError;

/// Anything that can go wrong running the bench harness.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// Bad command line; `main` prints usage and exits 2.
    Usage(String),
    /// A model primitive rejected its inputs.
    Core(CoreError),
    /// An execution failed (bad problem size, box budget exhausted).
    Run(RunError),
    /// A [`CancelToken`](cadapt_core::CancelToken) fired and the pipeline
    /// stopped cooperatively at a run boundary. Not a bug: the separate
    /// exit code lets wrappers distinguish "asked to stop" from "failed".
    Cancelled {
        /// Boxes fully consumed before cancellation was observed.
        after_boxes: u64,
    },
    /// A Monte-Carlo estimate failed, keyed by the offending trial.
    Mc(McError),
    /// An isolated trial panic, caught at the engine boundary.
    Panicked {
        /// What was running ("experiment e3", "sweep n=1024", …).
        context: String,
        /// The failing trial index, when the panic came from a trial sweep.
        trial: Option<u64>,
        /// The rendered panic payload.
        message: String,
    },
    /// An internal invariant did not hold (a metric/series the code just
    /// produced is missing, a computed table has the wrong shape, …).
    Invariant {
        /// What was being computed and which invariant broke.
        context: String,
    },
    /// A filesystem operation failed.
    Io {
        /// What was being attempted ("write", "read", "rename", …).
        action: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error, rendered.
        message: String,
    },
    /// A run-record file failed to parse.
    Record {
        /// The file that was being parsed.
        path: PathBuf,
        /// The typed parse failure.
        source: RecordError,
    },
    /// A checksummed artifact failed verification (truncated, bit-flipped,
    /// or checksum-mismatched) — its contents must not be trusted.
    Corrupt {
        /// The artifact.
        path: PathBuf,
        /// What exactly failed to verify.
        detail: String,
    },
    /// A golden record is missing or unusable; `cadapt-bench check`
    /// reports this with the command to regenerate it.
    Golden {
        /// Experiment id the golden belongs to.
        id: String,
        /// Expected golden path.
        path: PathBuf,
        /// Why it cannot be used.
        detail: String,
    },
    /// A checkpoint manifest is unusable for resuming this run.
    Checkpoint {
        /// The manifest path.
        path: PathBuf,
        /// Why it cannot be used.
        detail: String,
    },
    /// The job service failed: the daemon refused to start, a request
    /// errored, or the serve fault suite found a robustness violation.
    Service(ServeError),
}

impl BenchError {
    /// Map the failure onto the process exit code contract (documented in
    /// DESIGN.md's failure model):
    ///
    /// * `2` — usage errors;
    /// * `3` — filesystem / environment errors;
    /// * `4` — untrusted data: corrupt artifacts, unparseable records,
    ///   missing or stale goldens, unusable checkpoints;
    /// * `5` — an isolated panic (a bug, but one that was contained);
    /// * `6` — cooperative cancellation (a fired
    ///   [`CancelToken`](cadapt_core::CancelToken), not a failure);
    /// * `7` — a job-service failure (daemon, protocol, or journal);
    /// * `1` — everything else (semantic failures reported cleanly).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            BenchError::Usage(_) => 2,
            BenchError::Io { .. } => 3,
            BenchError::Record { .. }
            | BenchError::Corrupt { .. }
            | BenchError::Golden { .. }
            | BenchError::Checkpoint { .. } => 4,
            BenchError::Panicked { .. } => 5,
            BenchError::Cancelled { .. } => 6,
            BenchError::Service(_) => 7,
            BenchError::Core(_)
            | BenchError::Run(_)
            | BenchError::Mc(_)
            | BenchError::Invariant { .. } => 1,
        }
    }

    /// Wrap an engine sweep failure, recording what was running.
    #[must_use]
    pub fn from_sweep(context: &str, e: SweepError<RunError>) -> BenchError {
        match e {
            SweepError::Job { trial, error } => BenchError::Mc(McError::Run { trial, error }),
            SweepError::Panic(p) => BenchError::from_trial_panic(context, p),
        }
    }

    /// Wrap an isolated trial panic, recording what was running.
    #[must_use]
    pub fn from_trial_panic(context: &str, p: TrialPanic) -> BenchError {
        BenchError::Panicked {
            context: context.to_string(),
            trial: Some(p.trial),
            message: p.message,
        }
    }

    /// An internal-invariant failure with a formatted context.
    #[must_use]
    pub fn invariant(context: impl Into<String>) -> BenchError {
        BenchError::Invariant {
            context: context.into(),
        }
    }

    /// A filesystem failure.
    #[must_use]
    pub fn io(action: &'static str, path: impl Into<PathBuf>, err: &std::io::Error) -> BenchError {
        BenchError::Io {
            action,
            path: path.into(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Usage(msg) => write!(f, "usage error: {msg}"),
            BenchError::Core(e) => write!(f, "model error: {e}"),
            BenchError::Run(e) => write!(f, "execution error: {e}"),
            BenchError::Cancelled { after_boxes } => {
                write!(f, "cancelled after {after_boxes} boxes")
            }
            BenchError::Mc(e) => write!(f, "monte-carlo error: {e}"),
            BenchError::Panicked {
                context,
                trial,
                message,
            } => match trial {
                Some(t) => write!(f, "{context}: trial {t} panicked: {message}"),
                None => write!(f, "{context}: panicked: {message}"),
            },
            BenchError::Invariant { context } => {
                write!(f, "internal invariant violated: {context}")
            }
            BenchError::Io {
                action,
                path,
                message,
            } => write!(f, "failed to {action} {}: {message}", path.display()),
            BenchError::Record { path, source } => {
                write!(f, "unreadable run record {}: {source}", path.display())
            }
            BenchError::Corrupt { path, detail } => {
                write!(f, "corrupt artifact {}: {detail}", path.display())
            }
            BenchError::Golden { id, path, detail } => write!(
                f,
                "golden record for `{id}` unusable ({}): {detail}\n  regenerate with: cadapt-bench run --exp {id} --size quick --out tests/golden",
                path.display()
            ),
            BenchError::Checkpoint { path, detail } => {
                write!(f, "checkpoint manifest {} unusable: {detail}", path.display())
            }
            BenchError::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Core(e) => Some(e),
            BenchError::Run(e) => Some(e),
            BenchError::Mc(e) => Some(e),
            BenchError::Record { source, .. } => Some(source),
            BenchError::Service(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for BenchError {
    fn from(e: ServeError) -> BenchError {
        BenchError::Service(e)
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> BenchError {
        BenchError::Core(e)
    }
}

impl From<RunError> for BenchError {
    fn from(e: RunError) -> BenchError {
        match e {
            // Cooperative cancellation is a control-flow outcome, not an
            // execution failure; normalise it so every entry point maps a
            // fired token to the same typed error and exit code.
            RunError::Cancelled { after_boxes } => BenchError::Cancelled { after_boxes },
            other => BenchError::Run(other),
        }
    }
}

impl From<McError> for BenchError {
    fn from(e: McError) -> BenchError {
        match e {
            McError::Run {
                error: RunError::Cancelled { after_boxes },
                ..
            } => BenchError::Cancelled { after_boxes },
            other => BenchError::Mc(other),
        }
    }
}

impl From<StoreError> for BenchError {
    fn from(e: StoreError) -> BenchError {
        match e {
            StoreError::Io {
                action,
                path,
                message,
            } => BenchError::Io {
                action,
                path,
                message,
            },
            StoreError::Injected { action, path } => BenchError::Io {
                action,
                path,
                message: "injected fault".to_string(),
            },
            StoreError::Envelope { path, detail } => BenchError::Corrupt { path, detail },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(BenchError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            BenchError::Io {
                action: "write",
                path: "r.json".into(),
                message: "denied".into()
            }
            .exit_code(),
            3
        );
        assert_eq!(
            BenchError::Corrupt {
                path: "r.json".into(),
                detail: "crc mismatch".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            BenchError::Golden {
                id: "e1".into(),
                path: "tests/golden/e1.json".into(),
                detail: "missing".into()
            }
            .exit_code(),
            4
        );
        assert_eq!(
            BenchError::Panicked {
                context: "e3".into(),
                trial: Some(7),
                message: "boom".into()
            }
            .exit_code(),
            5
        );
        assert_eq!(
            BenchError::Run(RunError::BoxBudgetExhausted { max_boxes: 2 }).exit_code(),
            1
        );
        assert_eq!(BenchError::invariant("x").exit_code(), 1);
        assert_eq!(BenchError::Cancelled { after_boxes: 9 }.exit_code(), 6);
        assert_eq!(
            BenchError::Service(ServeError::Overloaded { capacity: 4 }).exit_code(),
            7
        );
    }

    #[test]
    fn cancellation_normalises_from_every_entry_point() {
        // A fired token reaches main as the same typed error whether it
        // surfaced from a direct run or from inside a Monte-Carlo trial.
        let direct: BenchError = RunError::Cancelled { after_boxes: 17 }.into();
        let via_mc: BenchError = McError::Run {
            trial: 3,
            error: RunError::Cancelled { after_boxes: 17 },
        }
        .into();
        assert_eq!(direct, BenchError::Cancelled { after_boxes: 17 });
        assert_eq!(via_mc, direct);
        assert!(direct.to_string().contains("cancelled after 17 boxes"));
        // Non-cancellation errors still take their original variants.
        let plain: BenchError = RunError::BoxBudgetExhausted { max_boxes: 2 }.into();
        assert!(matches!(plain, BenchError::Run(_)));
    }

    #[test]
    fn golden_error_tells_the_user_how_to_regenerate() {
        let e = BenchError::Golden {
            id: "e5".into(),
            path: "tests/golden/e5.json".into(),
            detail: "missing".into(),
        };
        let s = e.to_string();
        assert!(s.contains("e5"), "{s}");
        assert!(s.contains("regenerate"), "{s}");
        assert!(s.contains("cadapt-bench run"), "{s}");
    }

    #[test]
    fn sweep_wrappers_keep_the_trial_index() {
        let e = BenchError::from_sweep(
            "experiment e2",
            SweepError::Panic(TrialPanic {
                trial: 9,
                message: "boom".into(),
            }),
        );
        assert_eq!(
            e,
            BenchError::Panicked {
                context: "experiment e2".into(),
                trial: Some(9),
                message: "boom".into()
            }
        );
        assert!(e.to_string().contains("trial 9"));
    }
}
