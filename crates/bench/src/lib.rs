//! # cadapt-bench — the experiment harness
//!
//! One module per experiment in DESIGN.md's per-experiment index, each
//! exposing a `run(scale) -> …Result` function used three ways:
//!
//! * the `exp_*` binaries print the tables (EXPERIMENTS.md embeds them);
//! * the workspace integration tests assert the qualitative shape
//!   (who wins, which growth law);
//! * the Criterion benches time the underlying kernels.
//!
//! [`Scale`] keeps the same code usable from debug-mode tests (`Quick`) and
//! release-mode harness runs (`Full`).

// `deny`, not `forbid`: the optional `count-alloc` peak-memory meter is
// the one `unsafe` island (a `GlobalAlloc` impl must be), scoped by a
// targeted allow inside `alloc_meter`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_meter;
pub mod error;
pub mod experiments;
pub mod faults;
pub mod harness;
pub mod perf;
pub mod serve_faults;

pub use error::BenchError;

/// Execution context handed to every registered experiment: the scale,
/// the worker-thread budget for the experiment's internal trial fan-out
/// (0 = available parallelism), and the run's cooperative
/// [`CancelToken`](cadapt_core::CancelToken). Results are bit-identical
/// at any thread count — see the determinism contract in
/// `cadapt_analysis::parallel` — so the budget only moves wall time.
/// Cursor-driven experiments observe the token between runs and surface a
/// fired one as [`BenchError::Cancelled`] (exit code 6).
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// How big to run.
    pub scale: Scale,
    /// Worker threads for trial fan-out (0 = available parallelism).
    pub threads: usize,
    /// Cooperative cancellation flag shared with the CLI's watcher.
    pub cancel: cadapt_core::CancelToken,
}

impl ExpCtx {
    /// Context at `scale` with the default thread budget (all cores).
    #[must_use]
    pub fn new(scale: Scale) -> ExpCtx {
        ExpCtx::with_threads(scale, 0)
    }

    /// Context with an explicit worker budget.
    #[must_use]
    pub fn with_threads(scale: Scale, threads: usize) -> ExpCtx {
        ExpCtx {
            scale,
            threads,
            cancel: cadapt_core::CancelToken::new(),
        }
    }

    /// Replace the cancellation token (builder style).
    #[must_use]
    pub fn with_cancel(mut self, cancel: cadapt_core::CancelToken) -> ExpCtx {
        self.cancel = cancel;
        self
    }
}

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes / few trials — fast enough for debug-mode tests.
    Quick,
    /// Paper-scale sizes and trial counts (use release builds).
    Full,
}

impl Scale {
    /// Parse from a CLI argument (`--quick` / `--full`; default full).
    #[must_use]
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Parse a `--size` value (`quick` / `full`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name (`"quick"` / `"full"`), as stored in
    /// run records.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.pick("quick", "full")
    }

    /// Pick between the two variants.
    #[must_use]
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
