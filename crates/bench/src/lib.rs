//! # cadapt-bench — the experiment harness
//!
//! One module per experiment in DESIGN.md's per-experiment index, each
//! exposing a `run(scale) -> …Result` function used three ways:
//!
//! * the `exp_*` binaries print the tables (EXPERIMENTS.md embeds them);
//! * the workspace integration tests assert the qualitative shape
//!   (who wins, which growth law);
//! * the Criterion benches time the underlying kernels.
//!
//! [`Scale`] keeps the same code usable from debug-mode tests (`Quick`) and
//! release-mode harness runs (`Full`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod perf;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sizes / few trials — fast enough for debug-mode tests.
    Quick,
    /// Paper-scale sizes and trial counts (use release builds).
    Full,
}

impl Scale {
    /// Parse from a CLI argument (`--quick` / `--full`; default full).
    #[must_use]
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Parse a `--size` value (`quick` / `full`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The canonical lowercase name (`"quick"` / `"full"`), as stored in
    /// run records.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.pick("quick", "full")
    }

    /// Pick between the two variants.
    #[must_use]
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
