//! Wall-clock comparison of the per-box baseline against the run-length
//! fast path (`cadapt-bench perf`).
//!
//! Each entry runs the *same* execution twice — once with
//! `RunConfig { fast_path: false }` (per-box advancement, the pre-fast-path
//! behaviour) and once with the default batched draining — and reports the
//! minimum-of-iterations wall time for each. The two runs are also checked
//! to agree on every report aggregate, so a perf record doubles as an
//! end-to-end equivalence assertion at benchmark sizes.

use crate::Scale;
use cadapt_core::profile::ConstantSource;
use cadapt_core::BoxSource;
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_on_profile, AbcParams, ExecModel, RunConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Bump when the JSON layout changes shape.
pub const SCHEMA_VERSION: u32 = 1;

/// Timing iterations per configuration; the minimum is reported (the
/// standard noise-rejection choice for CPU-bound single-threaded work).
const ITERS: u32 = 3;

/// One benchmark case, timed both ways.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfEntry {
    /// Case name (stable across runs; used by tooling).
    pub name: String,
    /// Boxes the execution consumed (identical in both modes).
    pub boxes: u64,
    /// Minimum wall time of the per-box baseline, in milliseconds.
    pub per_box_ms: f64,
    /// Minimum wall time of the batched fast path, in milliseconds.
    pub batched_ms: f64,
    /// `per_box_ms / batched_ms`.
    pub speedup: f64,
}

/// The whole suite, as serialised to `BENCH_2.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSuite {
    /// JSON layout version.
    pub schema_version: u32,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// All timed cases.
    pub entries: Vec<PerfEntry>,
}

impl PerfSuite {
    /// Pretty JSON for the committed record.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (plain data; it cannot).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("serializable");
        text.push('\n');
        text
    }

    /// Render the human table printed by the CLI.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>14} {:>14} {:>9}\n",
            "case", "boxes", "per-box (ms)", "batched (ms)", "speedup"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<20} {:>12} {:>14.2} {:>14.2} {:>8.1}x\n",
                e.name, e.boxes, e.per_box_ms, e.batched_ms, e.speedup
            ));
        }
        out
    }
}

/// Time `make_source` + `run_on_profile` under `config`, returning
/// (min wall ms, boxes used).
fn time_case<S: BoxSource>(
    params: AbcParams,
    n: u64,
    config: &RunConfig,
    make_source: impl Fn() -> S,
) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut boxes = 0;
    for _ in 0..ITERS {
        let mut source = make_source();
        // cadapt-lint: allow(nondet-source) -- the perf smoke measures wall time by design; timings feed the perf report, never the golden records
        let start = Instant::now();
        let report =
            run_on_profile(params, n, &mut source, config).expect("perf case must complete");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(elapsed);
        boxes = report.boxes_used;
    }
    (best, boxes)
}

fn entry<S: BoxSource>(
    name: &str,
    params: AbcParams,
    n: u64,
    model: ExecModel,
    make_source: impl Fn() -> S,
) -> PerfEntry {
    let per_box_config = RunConfig {
        model,
        fast_path: false,
        ..RunConfig::default()
    };
    let batched_config = RunConfig {
        model,
        ..RunConfig::default()
    };
    let (per_box_ms, slow_boxes) = time_case(params, n, &per_box_config, &make_source);
    let (batched_ms, fast_boxes) = time_case(params, n, &batched_config, &make_source);
    assert_eq!(
        slow_boxes, fast_boxes,
        "{name}: fast path diverged from the per-box baseline"
    );
    PerfEntry {
        name: name.to_string(),
        boxes: fast_boxes,
        per_box_ms,
        batched_ms,
        speedup: per_box_ms / batched_ms,
    }
}

/// Run the full suite at the given scale.
///
/// The two headline cases exercise the two segment kinds of the fast path:
///
/// * `constant` — MM-Scan fed constant boxes (one infinite run; the
///   multi-sibling jump collapse and the scan division do all the work);
/// * `worst_case` — a wide adversary (a = 16) whose profile is dominated
///   by leaf bursts, the case the worst-case experiments spend their time
///   in. Width matters: a bounds the per-box work a leaf burst replaces,
///   so it bounds the attainable speedup.
///
/// `constant_capacity` times the capacity model's steady-cycle batching on
/// the same constant feed.
#[must_use]
pub fn run(scale: Scale) -> PerfSuite {
    let mm = AbcParams::mm_scan();
    let constant_n: u64 = scale.pick(1 << 16, 1 << 18);
    let wide = AbcParams::new(16, 4, 1.0, 1).expect("valid params");
    let wc_depth = scale.pick(5, 6);
    let wc = WorstCase::new(16, 4, 1, wc_depth).expect("valid worst case");
    let wc_n = wide.canonical_size(wc_depth);
    let entries = vec![
        entry("constant", mm, constant_n, ExecModel::Simplified, || {
            ConstantSource::new(16)
        }),
        entry("worst_case", wide, wc_n, ExecModel::Simplified, || {
            wc.source()
        }),
        entry(
            "constant_capacity",
            mm,
            constant_n,
            ExecModel::capacity(),
            || ConstantSource::new(16),
        ),
    ];
    PerfSuite {
        schema_version: SCHEMA_VERSION,
        scale: scale.name().to_string(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serialises_at_tiny_scale() {
        // Exercise the machinery (not the timings) on a reduced case.
        let e = entry(
            "tiny",
            AbcParams::mm_scan(),
            256,
            ExecModel::Simplified,
            || ConstantSource::new(16),
        );
        assert!(e.boxes > 0);
        assert!(e.per_box_ms >= 0.0 && e.batched_ms >= 0.0);
        let suite = PerfSuite {
            schema_version: SCHEMA_VERSION,
            scale: "quick".to_string(),
            entries: vec![e],
        };
        let json = suite.to_json();
        let parsed: PerfSuite = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].name, "tiny");
        assert!(suite.table().contains("tiny"));
    }
}
