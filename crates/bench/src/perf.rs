//! Wall-clock comparison of the per-box baseline against the run-length
//! fast path, plus the experiment engine's thread-scaling ladder
//! (`cadapt-bench perf`).
//!
//! Each fast-path entry runs the *same* execution twice — once with
//! `RunConfig { fast_path: false }` (per-box advancement, the pre-fast-path
//! behaviour) and once with the default batched draining — and reports the
//! minimum-of-iterations wall time for each. The two runs are also checked
//! to agree on every report aggregate, so a perf record doubles as an
//! end-to-end equivalence assertion at benchmark sizes.
//!
//! The thread-scaling section times the trial-parallel experiments at
//! worker counts 1, 2, 4, and the host's available parallelism, and
//! asserts **in process** that every parallel record reproduces the
//! serial one bit-for-bit (metric bits, counters, tables) — the engine's
//! determinism contract, measured and enforced in the same pass. Speedups
//! are honest wall-clock ratios for the recording host: on a single-core
//! machine they hover near (or slightly below) 1.0.
//!
//! The `analytic_vs_simulated` section pins the analytic cache model's
//! speedup claim: a fixed-capacity sweep over each corpus trace is timed
//! through the LRU simulator (one full replay per sweep point) and
//! through the analytic backend (one summary build, then O(log A)
//! queries), with the fault counts asserted equal in process before any
//! timing is reported. The summary build is timed separately so the
//! one-time cost is visible next to the per-sweep savings; `speedup` is
//! the honest end-to-end ratio including it.
//!
//! The `bytecode` section pins the compiled-trace-replay claim: streaming
//! a corpus trace's events out of its compiled bytecode program must beat
//! re-deriving them by re-running the instrumented kernel (into a
//! preallocated tracer — the fairest vector baseline) — the
//! compile-once-replay-many scenario every sweep lives in. The decoded
//! stream is asserted equal to the re-derived event vector in process
//! before any timing is reported, and the entry records the bytes-per-
//! event compression that lets programs reach sizes vectors cannot.

use crate::harness::{self, RunRecord};
use crate::{BenchError, ExpCtx, Scale};
use cadapt_analysis::parallel::resolve_threads;
use cadapt_core::profile::ConstantSource;
use cadapt_core::{Blocks, BoxSource};
use cadapt_paging::{analytic_fixed, replay_fixed};
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_cursor_on_profile, run_on_profile, AbcParams, ExecModel, RunConfig};
use cadapt_trace::corpus::{test_matrices, test_strings};
use cadapt_trace::{
    compile, BlockTrace, TraceAlgo, TraceEvent, TraceProgram, TraceSummary, Tracer,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Bump when the JSON layout changes shape. 2 added `host_parallelism`
/// and the `thread_scaling` section; 3 added the `analytic` section and
/// moved the committed record to `BENCH_6.json`; 4 added the `bytecode`
/// section and moved the committed record to `BENCH_7.json`; 5 added the
/// `streaming` section (cursor pipelines vs the batched fast path, plus
/// the constant-peak-memory scale drive) and moved the committed record
/// to `BENCH_9.json`.
pub const SCHEMA_VERSION: u32 = 5;

/// The trial-parallel experiments timed by the thread-scaling ladder.
const SCALING_EXPERIMENTS: [&str; 6] = ["e3", "e4", "e5", "e10", "e11", "e13"];

/// Timing iterations per configuration; the minimum is reported (the
/// standard noise-rejection choice for CPU-bound single-threaded work).
const ITERS: u32 = 3;

/// One benchmark case, timed both ways.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfEntry {
    /// Case name (stable across runs; used by tooling).
    pub name: String,
    /// Boxes the execution consumed (identical in both modes).
    pub boxes: u64,
    /// Minimum wall time of the per-box baseline, in milliseconds.
    pub per_box_ms: f64,
    /// Minimum wall time of the batched fast path, in milliseconds.
    pub batched_ms: f64,
    /// `per_box_ms / batched_ms`.
    pub speedup: f64,
}

/// One experiment at one worker count on the thread-scaling ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingEntry {
    /// Registry id of the experiment.
    pub experiment: String,
    /// Worker threads used for the trial fan-out.
    pub threads: usize,
    /// Wall time of the run, in milliseconds.
    pub wall_ms: f64,
    /// Serial wall time divided by this run's wall time.
    pub speedup: f64,
    /// Did the record reproduce the serial record bit-for-bit? (Also
    /// asserted in process: a `false` can never reach the JSON.)
    pub matches_serial: bool,
}

/// One corpus trace's capacity sweep, timed through both cache backends.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyticEntry {
    /// Corpus algorithm label.
    pub name: String,
    /// Accesses in the trace being swept.
    pub accesses: u64,
    /// Capacities in the sweep (each one full simulator replay).
    pub sweep_points: usize,
    /// Minimum wall time of the simulated sweep, in milliseconds.
    pub simulated_ms: f64,
    /// Minimum wall time of the one-time summary build, in milliseconds.
    pub summary_ms: f64,
    /// Minimum wall time of the analytic sweep (prebuilt summary), in
    /// milliseconds.
    pub analytic_ms: f64,
    /// `simulated_ms / (summary_ms + analytic_ms)` — end to end,
    /// one-time build included.
    pub speedup: f64,
    /// `simulated_ms / analytic_ms` — the marginal cost of one more
    /// sweep point once the summary exists (the corpus store memoizes it
    /// across sweep points and trial workers, so wide sweeps approach
    /// this ratio).
    pub query_speedup: f64,
}

/// One corpus trace in the compile-once-replay-many comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BytecodeEntry {
    /// Corpus algorithm label.
    pub name: String,
    /// Accesses in the trace.
    pub accesses: u64,
    /// Total events (accesses + leaf marks).
    pub events: u64,
    /// Minimum wall time of one structural compile, in milliseconds
    /// (paid once per corpus key, then memoized).
    pub compile_ms: f64,
    /// Minimum wall time of re-deriving and folding the event vector by
    /// re-running the instrumented kernel into a preallocated tracer, in
    /// milliseconds — what every replay cost before the bytecode store.
    pub rederive_ms: f64,
    /// Minimum wall time of folding the same events streamed out of the
    /// compiled program, in milliseconds.
    pub replay_ms: f64,
    /// `rederive_ms / replay_ms` — the compile-once-replay-many win.
    pub speedup: f64,
    /// Bytes of the `Vec<TraceEvent>` representation (16 per event).
    pub vec_bytes: u64,
    /// Bytes of the compiled program.
    pub bytecode_bytes: u64,
    /// `vec_bytes / bytecode_bytes`.
    pub compression: f64,
}

/// One execution driven twice — through the batched [`BoxSource`] fast
/// path and through the equivalent streaming cursor pipeline — with the
/// reports asserted equal in process before either clock is read. The
/// cursor layer is a zero-cost abstraction over the same closed-form
/// advancement, so `overhead` is expected to sit within timing noise of
/// 1.0; a committed record pins that claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingEntry {
    /// Case name (stable across runs; used by tooling).
    pub name: String,
    /// Boxes the execution consumed (identical in both modes).
    pub boxes: u64,
    /// Minimum wall time through the batched `BoxSource` driver, in
    /// milliseconds.
    pub batched_ms: f64,
    /// Minimum wall time through the streaming cursor driver, in
    /// milliseconds.
    pub streaming_ms: f64,
    /// `streaming_ms / batched_ms` — the cursor layer's overhead
    /// (≈ 1.0 expected; the two paths share the draining loop).
    pub overhead: f64,
}

/// The constant-memory scale drive: a three-tenant contended round-robin
/// pipeline streamed through the execution driver at E15's longest replay
/// length and at 64× that length, with peak heap growth metered (when the
/// `count-alloc` feature is compiled in) and asserted flat — the long
/// drive may not allocate more than the short one plus a fixed slack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingScale {
    /// Boxes streamed in the short drive (= E15's longest replay length).
    pub boxes_short: u64,
    /// Boxes streamed in the long drive (64× the short one).
    pub boxes_long: u64,
    /// `boxes_long` over E15's longest replay at the same scale.
    pub growth_vs_e15: f64,
    /// Minimum wall time of the short drive, in milliseconds.
    pub short_ms: f64,
    /// Minimum wall time of the long drive, in milliseconds.
    pub long_ms: f64,
    /// Peak heap growth of the short drive, bytes (metered builds only).
    pub peak_short_bytes: Option<u64>,
    /// Peak heap growth of the long drive, bytes (metered builds only).
    /// Asserted in process to stay within `PEAK_SLACK_BYTES` of the
    /// short drive's peak — a `None` means the meter was compiled out,
    /// never that the assertion was skipped silently.
    pub peak_long_bytes: Option<u64>,
}

/// The whole suite, as serialised to `BENCH_9.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSuite {
    /// JSON layout version.
    pub schema_version: u32,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// `std::thread::available_parallelism` on the recording host —
    /// context for reading the speedup column.
    pub host_parallelism: usize,
    /// All timed fast-path cases.
    pub entries: Vec<PerfEntry>,
    /// Simulator-vs-analytic capacity sweeps (equality asserted in
    /// process before timing is reported).
    pub analytic: Vec<AnalyticEntry>,
    /// Compiled-replay vs kernel re-derivation (stream equality asserted
    /// in process before timing is reported).
    pub bytecode: Vec<BytecodeEntry>,
    /// Streaming cursor pipelines vs the batched fast path (reports
    /// asserted equal in process before timing is reported).
    pub streaming: Vec<StreamingEntry>,
    /// The constant-memory contended drive at 64× E15 lengths.
    pub streaming_scale: StreamingScale,
    /// The thread-scaling ladder (serial baseline first per experiment).
    pub thread_scaling: Vec<ScalingEntry>,
}

impl PerfSuite {
    /// Pretty JSON for the committed record.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_value(self).render_pretty();
        text.push('\n');
        text
    }

    /// Render the human table printed by the CLI.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>12} {:>14} {:>14} {:>9}\n",
            "case", "boxes", "per-box (ms)", "batched (ms)", "speedup"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<20} {:>12} {:>14.2} {:>14.2} {:>8.1}x\n",
                e.name, e.boxes, e.per_box_ms, e.batched_ms, e.speedup
            ));
        }
        if !self.analytic.is_empty() {
            out.push_str(&format!(
                "\nanalytic vs simulated (capacity sweeps):\n{:<14} {:>10} {:>7} {:>13} {:>12} {:>13} {:>9} {:>11}\n",
                "trace", "accesses", "points", "simulated", "summary", "analytic", "speedup", "per-query"
            ));
            for e in &self.analytic {
                out.push_str(&format!(
                    "{:<14} {:>10} {:>7} {:>10.2}ms {:>10.3}ms {:>10.3}ms {:>8.1}x {:>10.0}x\n",
                    e.name,
                    e.accesses,
                    e.sweep_points,
                    e.simulated_ms,
                    e.summary_ms,
                    e.analytic_ms,
                    e.speedup,
                    e.query_speedup
                ));
            }
        }
        if !self.bytecode.is_empty() {
            out.push_str(&format!(
                "\nbytecode replay vs kernel re-derivation:\n{:<14} {:>10} {:>11} {:>11} {:>10} {:>9} {:>12} {:>12}\n",
                "trace", "accesses", "compile", "re-derive", "replay", "speedup", "bytecode B", "compression"
            ));
            for e in &self.bytecode {
                out.push_str(&format!(
                    "{:<14} {:>10} {:>9.2}ms {:>9.2}ms {:>8.3}ms {:>8.1}x {:>12} {:>11.1}x\n",
                    e.name,
                    e.accesses,
                    e.compile_ms,
                    e.rederive_ms,
                    e.replay_ms,
                    e.speedup,
                    e.bytecode_bytes,
                    e.compression
                ));
            }
        }
        if !self.streaming.is_empty() {
            out.push_str(&format!(
                "\nstreaming cursor vs batched fast path:\n{:<14} {:>12} {:>13} {:>13} {:>9}\n",
                "case", "boxes", "batched", "streaming", "overhead"
            ));
            for e in &self.streaming {
                out.push_str(&format!(
                    "{:<14} {:>12} {:>11.2}ms {:>11.2}ms {:>8.2}x\n",
                    e.name, e.boxes, e.batched_ms, e.streaming_ms, e.overhead
                ));
            }
        }
        {
            let s = &self.streaming_scale;
            let fmt_peak = |p: Option<u64>| match p {
                Some(bytes) => format!("{bytes} B"),
                None => "unmetered".to_string(),
            };
            out.push_str(&format!(
                "\ncontended streaming drive (peak heap flat by assertion):\n\
                 {:<10} {:>14} {:>12} {:>14}\n\
                 {:<10} {:>14} {:>10.1}ms {:>14}\n\
                 {:<10} {:>14} {:>10.1}ms {:>14}\n",
                "drive",
                "boxes",
                "wall",
                "peak heap",
                "short",
                s.boxes_short,
                s.short_ms,
                fmt_peak(s.peak_short_bytes),
                "long(64x)",
                s.boxes_long,
                s.long_ms,
                fmt_peak(s.peak_long_bytes),
            ));
        }
        if !self.thread_scaling.is_empty() {
            out.push_str(&format!(
                "\nthread scaling (host parallelism {}):\n{:<12} {:>8} {:>12} {:>9} {:>15}\n",
                self.host_parallelism,
                "experiment",
                "threads",
                "wall (ms)",
                "speedup",
                "matches serial"
            ));
            for e in &self.thread_scaling {
                out.push_str(&format!(
                    "{:<12} {:>8} {:>12.1} {:>8.2}x {:>15}\n",
                    e.experiment, e.threads, e.wall_ms, e.speedup, e.matches_serial
                ));
            }
        }
        out
    }
}

/// Time `make_source` + `run_on_profile` under `config`, returning
/// (min wall ms, boxes used).
fn time_case<S: BoxSource>(
    params: AbcParams,
    n: u64,
    config: &RunConfig,
    make_source: impl Fn() -> S,
) -> Result<(f64, u64), BenchError> {
    let mut best = f64::INFINITY;
    let mut boxes = 0;
    for _ in 0..ITERS {
        let mut source = make_source();
        // cadapt-lint: allow(nondet-source) -- the perf smoke measures wall time by design; timings feed the perf report, never the golden records
        let start = Instant::now();
        let report = run_on_profile(params, n, &mut source, config)?;
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(elapsed);
        boxes = report.boxes_used;
    }
    Ok((best, boxes))
}

fn entry<S: BoxSource>(
    name: &str,
    params: AbcParams,
    n: u64,
    model: ExecModel,
    make_source: impl Fn() -> S,
) -> Result<PerfEntry, BenchError> {
    let per_box_config = RunConfig {
        model,
        fast_path: false,
        ..RunConfig::default()
    };
    let batched_config = RunConfig {
        model,
        ..RunConfig::default()
    };
    let (per_box_ms, slow_boxes) = time_case(params, n, &per_box_config, &make_source)?;
    let (batched_ms, fast_boxes) = time_case(params, n, &batched_config, &make_source)?;
    if slow_boxes != fast_boxes {
        return Err(BenchError::invariant(format!(
            "{name}: fast path diverged from the per-box baseline ({fast_boxes} vs {slow_boxes} boxes)"
        )));
    }
    Ok(PerfEntry {
        name: name.to_string(),
        boxes: fast_boxes,
        per_box_ms,
        batched_ms,
        speedup: per_box_ms / batched_ms,
    })
}

/// Run the full suite at the given scale.
///
/// The two headline cases exercise the two segment kinds of the fast path:
///
/// * `constant` — MM-Scan fed constant boxes (one infinite run; the
///   multi-sibling jump collapse and the scan division do all the work);
/// * `worst_case` — a wide adversary (a = 16) whose profile is dominated
///   by leaf bursts, the case the worst-case experiments spend their time
///   in. Width matters: a bounds the per-box work a leaf burst replaces,
///   so it bounds the attainable speedup.
///
/// Are two run records bit-identical in everything golden comparison
/// reads? Wall time is excluded by definition; metric values compare by
/// bit pattern, not tolerance.
fn records_identical(a: &RunRecord, b: &RunRecord) -> bool {
    a.counters == b.counters
        && a.tables == b.tables
        && a.metrics.len() == b.metrics.len()
        && a.metrics.iter().zip(&b.metrics).all(|(x, y)| {
            x.name == y.name
                && x.value.to_bits() == y.value.to_bits()
                && x.ci95.to_bits() == y.ci95.to_bits()
        })
}

/// The worker-count ladder: 1, 2, 4, and the host parallelism, deduped
/// and sorted.
fn ladder(host: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Time the trial-parallel experiments across the worker ladder,
/// checking each parallel record reproduces the serial one exactly.
///
/// # Errors
///
/// Returns a typed error if any parallel run diverges from the serial
/// record — that is a determinism bug in the engine, not a tolerable
/// measurement artifact — or if any run fails outright.
fn thread_scaling(scale: Scale, host: usize) -> Result<Vec<ScalingEntry>, BenchError> {
    let mut out = Vec::new();
    for id in SCALING_EXPERIMENTS {
        let exp = harness::find(id).ok_or_else(|| {
            BenchError::invariant(format!("scaling experiment {id} is not registered"))
        })?;
        let mut serial: Option<RunRecord> = None;
        for &threads in &ladder(host) {
            eprintln!("[cadapt-bench] scaling {id} with {threads} thread(s)…");
            let record = harness::run_record_ctx(exp, ExpCtx::with_threads(scale, threads))?;
            let (speedup, matches_serial) = match &serial {
                None => (1.0, true),
                Some(base) => {
                    let matches = records_identical(base, &record);
                    if !matches {
                        return Err(BenchError::invariant(format!(
                            "{id}: record at {threads} threads diverged from the serial record"
                        )));
                    }
                    (base.wall_ms / record.wall_ms, matches)
                }
            };
            out.push(ScalingEntry {
                experiment: id.to_string(),
                threads,
                wall_ms: record.wall_ms,
                speedup,
                matches_serial,
            });
            if serial.is_none() {
                serial = Some(record);
            }
        }
    }
    Ok(out)
}

/// The fixed-capacity sweep both backends are timed on.
fn sweep_capacities() -> Vec<Blocks> {
    (2..=12).map(|j| 1u64 << j).collect()
}

/// Time the capacity sweep through the simulator and through the
/// analytic model, per corpus trace, asserting equal fault counts first.
///
/// # Errors
///
/// Any fault-count disagreement between the backends is a typed
/// invariant failure — the timing never reaches the JSON.
fn analytic_vs_simulated(scale: Scale) -> Result<Vec<AnalyticEntry>, BenchError> {
    let side = scale.pick(32, 64);
    let block_words = 4;
    let capacities = sweep_capacities();
    let mut out = Vec::new();
    for algo in TraceAlgo::ALL {
        eprintln!(
            "[cadapt-bench] analytic sweep: {} at side {side}…",
            algo.label()
        );
        let trace = algo.trace(side, block_words);
        let summary = TraceSummary::new(&trace);

        // Correctness before clocks: the whole sweep must agree.
        for &m in &capacities {
            let sim = replay_fixed(&trace, m);
            let ana = analytic_fixed(&summary, m);
            if sim != ana {
                return Err(BenchError::invariant(format!(
                    "analytic sweep: {} M={m}: simulator {} vs analytic {}",
                    algo.label(),
                    sim.io,
                    ana.io
                )));
            }
        }

        let mut simulated_ms = f64::INFINITY;
        let mut summary_ms = f64::INFINITY;
        let mut analytic_ms = f64::INFINITY;
        for _ in 0..ITERS {
            // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
            let start = Instant::now();
            let mut total: u128 = 0;
            for &m in &capacities {
                total += replay_fixed(&trace, m).io;
            }
            simulated_ms = simulated_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(total);

            // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
            let start = Instant::now();
            let rebuilt = TraceSummary::new(&trace);
            summary_ms = summary_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&rebuilt);

            // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
            let start = Instant::now();
            let mut total: u128 = 0;
            for &m in &capacities {
                total += analytic_fixed(&summary, m).io;
            }
            analytic_ms = analytic_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(total);
        }
        out.push(AnalyticEntry {
            name: algo.label().to_string(),
            accesses: summary.accesses(),
            sweep_points: capacities.len(),
            simulated_ms,
            summary_ms,
            analytic_ms,
            speedup: simulated_ms / (summary_ms + analytic_ms),
            query_speedup: simulated_ms / analytic_ms,
        });
    }
    Ok(out)
}

/// Fold an event stream to a checksum — the common consumer both replay
/// paths are timed through (cheap enough that decode/derive dominates).
/// Uses `Iterator::fold` so the decoder's internal-iteration fast path
/// engages for bytecode streams.
fn fold_events<I: Iterator<Item = TraceEvent>>(events: I) -> (u64, u64) {
    events.fold((0u64, 0u64), |(blocks, leaves), event| match event {
        TraceEvent::Access(b) => (blocks.wrapping_add(b), leaves),
        TraceEvent::Leaf => (blocks, leaves + 1),
    })
}

/// Re-derive a corpus trace's event vector by re-running the instrumented
/// kernel into a tracer preallocated from the program's stored counts —
/// the fairest possible vector baseline.
fn rederive_trace(
    algo: TraceAlgo,
    side: usize,
    block_words: u64,
    program: &TraceProgram,
) -> BlockTrace {
    let mut tracer = Tracer::with_capacity(
        block_words,
        program.accesses(),
        program.leaves(),
        program.distinct_blocks(),
    );
    match algo {
        TraceAlgo::MmScan => {
            let (a, b) = test_matrices(side);
            let _ = cadapt_trace::mm::mm_scan_with(&a, &b, block_words, &mut tracer);
        }
        TraceAlgo::MmInplace => {
            let (a, b) = test_matrices(side);
            let _ = cadapt_trace::mm::mm_inplace_with(&a, &b, block_words, &mut tracer);
        }
        TraceAlgo::Strassen => {
            let (a, b) = test_matrices(side);
            let _ = cadapt_trace::strassen::strassen_with(&a, &b, block_words, &mut tracer);
        }
        TraceAlgo::EditDistance => {
            let (x, y) = test_strings(side);
            let _ = cadapt_trace::edit::edit_distance_with(&x, &y, block_words, &mut tracer);
        }
        TraceAlgo::VebSearch => {
            let _ = cadapt_trace::veb::veb_search_with(side, block_words, &mut tracer);
        }
    }
    tracer.into_trace()
}

/// Time the compile-once-replay-many comparison per corpus trace: folding
/// events streamed from the compiled program against folding events
/// re-derived by re-running the kernel, with the streams asserted equal
/// in process before any clock is read.
///
/// # Errors
///
/// Any stream disagreement is a typed invariant failure — the timing
/// never reaches the JSON.
fn bytecode_replay(scale: Scale) -> Result<Vec<BytecodeEntry>, BenchError> {
    let side = scale.pick(32, 64);
    let block_words = 4;
    let mut out = Vec::new();
    for algo in TraceAlgo::EXTENDED {
        eprintln!(
            "[cadapt-bench] bytecode replay: {} at side {side}…",
            algo.label()
        );
        let program = algo.compile(side, block_words);

        // Correctness before clocks: structural emission must equal
        // recompilation, and the decoded stream must equal the re-derived
        // vector (and therefore fold identically).
        let rederived = rederive_trace(algo, side, block_words, &program);
        if compile(&rederived) != program {
            return Err(BenchError::invariant(format!(
                "bytecode replay: {} structural emission diverged from recompilation",
                algo.label()
            )));
        }
        if !program.events().eq(rederived.events().iter().copied()) {
            return Err(BenchError::invariant(format!(
                "bytecode replay: {} decoded stream diverged from the re-derived vector",
                algo.label()
            )));
        }
        if fold_events(program.events()) != fold_events(rederived.events().iter().copied()) {
            return Err(BenchError::invariant(format!(
                "bytecode replay: {} stream fold diverged from the vector fold",
                algo.label()
            )));
        }
        drop(rederived);

        let mut compile_ms = f64::INFINITY;
        let mut rederive_ms = f64::INFINITY;
        let mut replay_ms = f64::INFINITY;
        for _ in 0..ITERS {
            // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
            let start = Instant::now();
            let recompiled = algo.compile(side, block_words);
            compile_ms = compile_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(&recompiled);

            // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
            let start = Instant::now();
            let trace = rederive_trace(algo, side, block_words, &program);
            let fold = fold_events(trace.events().iter().copied());
            rederive_ms = rederive_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(fold);

            // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
            let start = Instant::now();
            let fold = fold_events(program.events());
            replay_ms = replay_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(fold);
        }

        let events = u64::try_from(program.event_count()).unwrap_or(u64::MAX);
        let vec_bytes = events.saturating_mul(16);
        let bytecode_bytes = cadapt_core::cast::u64_from_usize(program.byte_len());
        out.push(BytecodeEntry {
            name: algo.label().to_string(),
            accesses: program.accesses(),
            events,
            compile_ms,
            rederive_ms,
            replay_ms,
            speedup: rederive_ms / replay_ms,
            vec_bytes,
            bytecode_bytes,
            compression: vec_bytes as f64 / bytecode_bytes as f64,
        });
    }
    Ok(out)
}

/// Heap slack the long contended drive is allowed over the short one when
/// the `count-alloc` meter is installed: 64 KiB covers allocator jitter
/// while still failing loudly if any pipeline stage scales with length.
const PEAK_SLACK_BYTES: u64 = 64 * 1024;

/// Time one execution through the batched `BoxSource` driver and through
/// the identical streaming cursor pipeline, asserting the two reports are
/// equal before either clock is read.
fn streaming_entry<S, C>(
    name: &str,
    params: AbcParams,
    n: u64,
    make_source: impl Fn() -> S,
    make_cursor: impl Fn() -> C,
) -> Result<StreamingEntry, BenchError>
where
    S: BoxSource,
    C: cadapt_core::RunCursor,
{
    let config = RunConfig::default();

    // Correctness before clocks: the full adaptivity reports must agree.
    let batched_report = run_on_profile(params, n, &mut make_source(), &config)?;
    let streamed_report = run_cursor_on_profile(params, n, &mut make_cursor(), &config)?;
    if batched_report != streamed_report {
        return Err(BenchError::invariant(format!(
            "streaming {name}: cursor drive diverged from the batched fast path"
        )));
    }

    let mut batched_ms = f64::INFINITY;
    let mut streaming_ms = f64::INFINITY;
    for _ in 0..ITERS {
        let mut source = make_source();
        // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
        let start = Instant::now();
        let report = run_on_profile(params, n, &mut source, &config)?;
        batched_ms = batched_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&report);

        let mut cursor = make_cursor();
        // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
        let start = Instant::now();
        let report = run_cursor_on_profile(params, n, &mut cursor, &config)?;
        streaming_ms = streaming_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(&report);
    }
    Ok(StreamingEntry {
        name: name.to_string(),
        boxes: batched_report.boxes_used,
        batched_ms,
        streaming_ms,
        overhead: streaming_ms / batched_ms,
    })
}

/// The batched-vs-streaming throughput cases: the same two headline feeds
/// the fast-path section times, driven through cursor pipelines.
fn streaming_section(scale: Scale) -> Result<Vec<StreamingEntry>, BenchError> {
    let mm = AbcParams::mm_scan();
    let constant_n: u64 = scale.pick(1 << 16, 1 << 18);
    let wide = AbcParams::new(16, 4, 1.0, 1)?;
    let wc_depth = scale.pick(5, 6);
    let wc = WorstCase::new(16, 4, 1, wc_depth)?;
    let wc_n = wide.canonical_size(wc_depth);
    eprintln!("[cadapt-bench] streaming cursor overhead…");
    Ok(vec![
        streaming_entry(
            "constant",
            mm,
            constant_n,
            || ConstantSource::new(16),
            || ConstantSource::new(16).into_cursor(),
        )?,
        streaming_entry(
            "worst_case",
            wide,
            wc_n,
            || wc.source(),
            || wc.source().into_cursor(),
        )?,
    ])
}

/// Stream a three-tenant contended round-robin pipeline for exactly
/// `target` boxes, returning the minimum wall time and the metered peak
/// heap growth. The execution cannot complete at `huge_n`, so the typed
/// `ProfileExhausted { after_boxes == target }` outcome proves every box
/// was consumed.
fn contended_drive(target: u64, huge_n: u64) -> Result<(f64, Option<u64>), BenchError> {
    use cadapt_core::{RunCursor, RunCursorExt};
    let mm = AbcParams::mm_scan();
    let config = RunConfig::default();
    let tooth: Vec<u64> = (1..=32).chain((1..=32).rev()).collect();
    let tooth = cadapt_core::SquareProfile::new(tooth)
        .map_err(|e| BenchError::invariant(format!("contended drive tooth menu: {e}")))?;
    let adversary = WorstCase::new(8, 4, 1, 20)?;
    let total_cache = 96u64;
    let mut wall_ms = f64::INFINITY;
    let mut peak: Option<u64> = None;
    for _ in 0..ITERS {
        let drive = || -> Result<(), BenchError> {
            let tenants: Vec<Box<dyn RunCursor + '_>> = vec![
                Box::new(adversary.source().into_cursor()),
                Box::new(tooth.cycle().into_cursor()),
                Box::new(ConstantSource::new(total_cache).into_cursor()),
            ];
            let mut pipeline = cadapt_profiles::contended_round_robin(tenants, 1024, total_cache)
                .take_boxes(target);
            match run_cursor_on_profile(mm, huge_n, &mut pipeline, &config) {
                Err(cadapt_recursion::RunError::ProfileExhausted { after_boxes })
                    if after_boxes == target =>
                {
                    Ok(())
                }
                Err(e) => Err(BenchError::invariant(format!(
                    "contended drive: expected exhaustion at {target}, got {e}"
                ))),
                Ok(report) => Err(BenchError::invariant(format!(
                    "contended drive completed in {} boxes — n is not huge enough",
                    report.boxes_used
                ))),
            }
        };
        // cadapt-lint: allow(nondet-source) -- wall-clock timing is the point of the perf suite; timings never feed golden records
        let start = Instant::now();
        let (outcome, growth) = crate::alloc_meter::measure_peak_growth(drive);
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        outcome?;
        peak = match (peak, growth) {
            (Some(best), Some(g)) => Some(best.min(g)),
            (None, g) => g,
            (best, None) => best,
        };
    }
    Ok((wall_ms, peak))
}

/// The constant-memory scale drive (see [`StreamingScale`]).
///
/// # Errors
///
/// A drive that does not exhaust its pipeline exactly, or (when metered)
/// a long drive whose peak heap exceeds the short drive's by more than
/// `PEAK_SLACK_BYTES`, is a typed invariant failure.
fn streaming_scale(scale: Scale) -> Result<StreamingScale, BenchError> {
    let side = scale.pick(64, 128);
    let e15_len = TraceAlgo::EXTENDED
        .iter()
        .map(|algo| cadapt_trace::compiled(*algo, side, 4).accesses())
        .max()
        .ok_or_else(|| BenchError::invariant("streaming scale: empty corpus"))?;
    let boxes_short = e15_len;
    let boxes_long = e15_len.saturating_mul(64);
    let huge_n = AbcParams::mm_scan().canonical_size(30);
    eprintln!("[cadapt-bench] streaming contended drive: {boxes_short} then {boxes_long} boxes…");
    let (short_ms, peak_short_bytes) = contended_drive(boxes_short, huge_n)?;
    let (long_ms, peak_long_bytes) = contended_drive(boxes_long, huge_n)?;
    if let (Some(short), Some(long)) = (peak_short_bytes, peak_long_bytes) {
        if long > short.saturating_add(PEAK_SLACK_BYTES) {
            return Err(BenchError::invariant(format!(
                "streaming scale: peak heap grew with pipeline length \
                 ({short} B at {boxes_short} boxes, {long} B at {boxes_long} boxes)"
            )));
        }
        eprintln!("[cadapt-bench] streaming peak heap: {short} B short, {long} B long (flat)");
    }
    Ok(StreamingScale {
        boxes_short,
        boxes_long,
        growth_vs_e15: boxes_long as f64 / e15_len as f64,
        short_ms,
        long_ms,
        peak_short_bytes,
        peak_long_bytes,
    })
}

/// `constant_capacity` times the capacity model's steady-cycle batching on
/// the same constant feed.
///
/// # Errors
///
/// Propagates run failures and engine determinism violations as typed
/// errors.
pub fn run(scale: Scale) -> Result<PerfSuite, BenchError> {
    let mm = AbcParams::mm_scan();
    let constant_n: u64 = scale.pick(1 << 16, 1 << 18);
    let wide = AbcParams::new(16, 4, 1.0, 1)?;
    let wc_depth = scale.pick(5, 6);
    let wc = WorstCase::new(16, 4, 1, wc_depth)?;
    let wc_n = wide.canonical_size(wc_depth);
    let entries = vec![
        entry("constant", mm, constant_n, ExecModel::Simplified, || {
            ConstantSource::new(16)
        })?,
        entry("worst_case", wide, wc_n, ExecModel::Simplified, || {
            wc.source()
        })?,
        entry(
            "constant_capacity",
            mm,
            constant_n,
            ExecModel::capacity(),
            || ConstantSource::new(16),
        )?,
    ];
    let host = resolve_threads(0);
    Ok(PerfSuite {
        schema_version: SCHEMA_VERSION,
        scale: scale.name().to_string(),
        host_parallelism: host,
        entries,
        analytic: analytic_vs_simulated(scale)?,
        bytecode: bytecode_replay(scale)?,
        streaming: streaming_section(scale)?,
        streaming_scale: streaming_scale(scale)?,
        thread_scaling: thread_scaling(scale, host)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serialises_at_tiny_scale() {
        // Exercise the machinery (not the timings) on a reduced case.
        let e = entry(
            "tiny",
            AbcParams::mm_scan(),
            256,
            ExecModel::Simplified,
            || ConstantSource::new(16),
        )
        .expect("tiny perf entry runs");
        assert!(e.boxes > 0);
        assert!(e.per_box_ms >= 0.0 && e.batched_ms >= 0.0);
        let suite = PerfSuite {
            schema_version: SCHEMA_VERSION,
            scale: "quick".to_string(),
            host_parallelism: 1,
            entries: vec![e],
            analytic: vec![AnalyticEntry {
                name: "MM-Scan".to_string(),
                accesses: 1000,
                sweep_points: 11,
                simulated_ms: 10.0,
                summary_ms: 0.5,
                analytic_ms: 0.01,
                speedup: 10.0 / 0.51,
                query_speedup: 1000.0,
            }],
            bytecode: vec![BytecodeEntry {
                name: "MM-Scan".to_string(),
                accesses: 1000,
                events: 1100,
                compile_ms: 2.0,
                rederive_ms: 2.5,
                replay_ms: 0.25,
                speedup: 10.0,
                vec_bytes: 17600,
                bytecode_bytes: 1100,
                compression: 16.0,
            }],
            streaming: vec![StreamingEntry {
                name: "constant".to_string(),
                boxes: 1 << 15,
                batched_ms: 1.0,
                streaming_ms: 1.05,
                overhead: 1.05,
            }],
            streaming_scale: StreamingScale {
                boxes_short: 1 << 18,
                boxes_long: 1 << 24,
                growth_vs_e15: 64.0,
                short_ms: 1.0,
                long_ms: 60.0,
                peak_short_bytes: Some(4096),
                peak_long_bytes: Some(4096),
            },
            thread_scaling: vec![ScalingEntry {
                experiment: "e3".to_string(),
                threads: 2,
                wall_ms: 1.0,
                speedup: 1.0,
                matches_serial: true,
            }],
        };
        let json = suite.to_json();
        let parsed: PerfSuite = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(parsed.entries[0].name, "tiny");
        assert_eq!(parsed.analytic.len(), 1);
        assert_eq!(parsed.analytic[0].sweep_points, 11);
        assert_eq!(parsed.bytecode.len(), 1);
        assert_eq!(parsed.bytecode[0].bytecode_bytes, 1100);
        assert_eq!(parsed.streaming.len(), 1);
        assert_eq!(parsed.streaming_scale.peak_long_bytes, Some(4096));
        assert_eq!(parsed.thread_scaling.len(), 1);
        let rendered = suite.table();
        assert!(rendered.contains("tiny"));
        assert!(rendered.contains("analytic vs simulated"));
        assert!(rendered.contains("bytecode replay"));
        assert!(rendered.contains("streaming cursor vs batched"));
        assert!(rendered.contains("contended streaming drive"));
        assert!(rendered.contains("thread scaling"));
    }

    #[test]
    fn streaming_section_agrees_and_reports_sane_numbers() {
        // Report equality is asserted inside streaming_entry; check shape.
        let entries = streaming_section(Scale::Quick).expect("streaming section runs");
        assert_eq!(entries.len(), 2);
        for e in &entries {
            assert!(e.boxes > 0);
            assert!(e.batched_ms >= 0.0 && e.streaming_ms >= 0.0);
            assert!(e.overhead.is_finite() && e.overhead > 0.0);
        }
    }

    #[test]
    fn unmetered_peak_round_trips_as_null() {
        let scale = StreamingScale {
            boxes_short: 10,
            boxes_long: 640,
            growth_vs_e15: 64.0,
            short_ms: 1.0,
            long_ms: 2.0,
            peak_short_bytes: None,
            peak_long_bytes: None,
        };
        let json = serde_json::to_value(&scale).render_pretty();
        assert!(json.contains("null"), "{json}");
        let back: StreamingScale = serde_json::from_str(&json).unwrap();
        assert_eq!(back.peak_short_bytes, None);
    }

    #[test]
    fn bytecode_replay_verifies_and_reports_sane_numbers() {
        // The real comparison at the reduced size: stream equality is
        // asserted inside bytecode_replay; here we check the shape.
        let entries = bytecode_replay(Scale::Quick).expect("bytecode replay runs");
        assert_eq!(entries.len(), TraceAlgo::EXTENDED.len());
        for e in &entries {
            assert!(e.accesses > 0 && e.events >= e.accesses);
            assert!(e.compile_ms >= 0.0 && e.rederive_ms >= 0.0 && e.replay_ms >= 0.0);
            assert!(e.speedup.is_finite() && e.speedup > 0.0);
            assert!(e.bytecode_bytes > 0 && e.vec_bytes > e.bytecode_bytes);
            assert!(
                e.compression > 1.0,
                "{}: compression {}",
                e.name,
                e.compression
            );
        }
    }

    #[test]
    fn analytic_sweep_agrees_and_reports_sane_timings() {
        // The real sweep at a reduced size: correctness is asserted
        // inside analytic_vs_simulated; here we check the shape.
        let entries = analytic_vs_simulated(Scale::Quick).expect("sweep runs");
        assert_eq!(entries.len(), TraceAlgo::ALL.len());
        for e in &entries {
            assert!(e.accesses > 0);
            assert_eq!(e.sweep_points, sweep_capacities().len());
            assert!(e.simulated_ms >= 0.0 && e.summary_ms >= 0.0 && e.analytic_ms >= 0.0);
            assert!(e.speedup.is_finite() && e.speedup > 0.0);
            assert!(e.query_speedup >= e.speedup);
        }
    }

    #[test]
    fn ladder_is_deduped_and_starts_serial() {
        assert_eq!(ladder(1), vec![1, 2, 4]);
        assert_eq!(ladder(4), vec![1, 2, 4]);
        assert_eq!(ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(ladder(3), vec![1, 2, 3, 4]);
    }
}
