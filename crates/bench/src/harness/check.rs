//! Golden-record comparison under explicit tolerance bands.
//!
//! Deterministic experiments must reproduce exactly (up to a 1e-9 relative
//! float-formatting floor). Monte-Carlo experiments re-run with the same
//! seeds, but their worker threads partition trials racily, so the merged
//! means differ in the last bits and an intended trial-count change shifts
//! them further; those compare under CI overlap — the difference must be
//! within the sum of both records' CI half-widths plus a small floor.
//! Counters are exact per-trial sums either way and always compare exactly.

use super::record::{Metric, RunRecord};
use std::collections::BTreeMap;

/// Outcome of comparing a fresh run against its golden record.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Experiment id.
    pub experiment: String,
    /// Human-readable mismatch descriptions; empty means the check passed.
    pub failures: Vec<String>,
}

impl CheckReport {
    /// Did every comparison pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Allowed absolute difference between a golden metric and a fresh one.
fn tolerance(deterministic: bool, golden: &Metric, fresh: &Metric) -> f64 {
    let scale = golden.value.abs().max(1.0);
    if deterministic {
        1e-9 * scale
    } else {
        1e-6 * scale + golden.ci95 + fresh.ci95
    }
}

fn values_match(golden: f64, fresh: f64, tol: f64) -> bool {
    if golden.is_nan() && fresh.is_nan() {
        return true;
    }
    (golden - fresh).abs() <= tol
}

/// Compare a fresh [`RunRecord`] against its committed golden.
#[must_use]
pub fn compare(golden: &RunRecord, fresh: &RunRecord) -> CheckReport {
    let mut failures = Vec::new();
    // A partial record (a run that failed and degraded gracefully) can
    // never vouch for, or be vouched for by, anything.
    if !golden.complete {
        failures.push("golden record is marked incomplete (regenerate it)".to_string());
    }
    if !fresh.complete {
        failures.push("fresh run did not complete (see its tables for the failure)".to_string());
    }
    if golden.schema_version != fresh.schema_version {
        failures.push(format!(
            "schema version: golden {} vs fresh {} (regenerate the goldens)",
            golden.schema_version, fresh.schema_version
        ));
    }
    if golden.experiment != fresh.experiment {
        failures.push(format!(
            "experiment id: golden {:?} vs fresh {:?}",
            golden.experiment, fresh.experiment
        ));
    }
    if golden.scale != fresh.scale {
        failures.push(format!(
            "scale: golden {:?} vs fresh {:?}",
            golden.scale, fresh.scale
        ));
    }
    if golden.deterministic != fresh.deterministic {
        failures.push(format!(
            "determinism flag: golden {} vs fresh {}",
            golden.deterministic, fresh.deterministic
        ));
    }
    if !failures.is_empty() {
        // Identity mismatch: value comparisons would only add noise.
        return CheckReport {
            experiment: golden.experiment.clone(),
            failures,
        };
    }

    if golden.counters != fresh.counters {
        failures.push(format!(
            "counters diverged: golden {:?} vs fresh {:?}",
            golden.counters, fresh.counters
        ));
    }

    let golden_by_name: BTreeMap<&str, &Metric> = golden
        .metrics
        .iter()
        .map(|m| (m.name.as_str(), m))
        .collect();
    let fresh_by_name: BTreeMap<&str, &Metric> =
        fresh.metrics.iter().map(|m| (m.name.as_str(), m)).collect();
    for (name, g) in &golden_by_name {
        match fresh_by_name.get(name) {
            None => failures.push(format!("metric {name:?} missing from the fresh run")),
            Some(f) => {
                let tol = tolerance(golden.deterministic, g, f);
                if !values_match(g.value, f.value, tol) {
                    failures.push(format!(
                        "metric {name:?}: golden {} vs fresh {} (tolerance {tol:.3e})",
                        g.value, f.value
                    ));
                }
            }
        }
    }
    for name in fresh_by_name.keys() {
        if !golden_by_name.contains_key(name) {
            failures.push(format!(
                "metric {name:?} not present in the golden (regenerate the goldens)"
            ));
        }
    }

    CheckReport {
        experiment: golden.experiment.clone(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::super::record::{metric, metric_ci, SCHEMA_VERSION};
    use super::*;
    use cadapt_core::CounterSnapshot;

    fn record(deterministic: bool, metrics: Vec<Metric>) -> RunRecord {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            experiment: "demo".into(),
            title: "demo".into(),
            scale: "quick".into(),
            deterministic,
            wall_ms: 1.0,
            counters: CounterSnapshot::ZERO,
            metrics,
            tables: Vec::new(),
            complete: true,
        }
    }

    #[test]
    fn identical_records_pass() {
        let r = record(true, vec![metric("a", 1.0)]);
        assert!(compare(&r, &r).passed());
    }

    #[test]
    fn wall_time_is_not_compared() {
        let golden = record(true, vec![metric("a", 1.0)]);
        let mut fresh = golden.clone();
        fresh.wall_ms = 1e9;
        assert!(compare(&golden, &fresh).passed());
    }

    #[test]
    fn deterministic_drift_fails() {
        let golden = record(true, vec![metric("a", 1.0)]);
        let fresh = record(true, vec![metric("a", 1.0 + 1e-6)]);
        let report = compare(&golden, &fresh);
        assert!(!report.passed());
        assert!(report.failures[0].contains("metric \"a\""));
    }

    #[test]
    fn monte_carlo_uses_ci_overlap() {
        let golden = record(false, vec![metric_ci("a", 1.0, 0.05)]);
        let inside = record(false, vec![metric_ci("a", 1.08, 0.05)]);
        assert!(compare(&golden, &inside).passed(), "within CI sum");
        let outside = record(false, vec![metric_ci("a", 1.25, 0.05)]);
        assert!(!compare(&golden, &outside).passed(), "beyond CI sum");
    }

    #[test]
    fn missing_and_extra_metrics_fail() {
        let golden = record(true, vec![metric("a", 1.0), metric("b", 2.0)]);
        let fresh = record(true, vec![metric("a", 1.0), metric("c", 3.0)]);
        let report = compare(&golden, &fresh);
        assert_eq!(report.failures.len(), 2);
    }

    #[test]
    fn counter_divergence_fails() {
        let golden = record(true, vec![]);
        let mut fresh = golden.clone();
        fresh.counters.boxes_advanced = 5;
        assert!(!compare(&golden, &fresh).passed());
    }

    #[test]
    fn schema_version_mismatch_short_circuits() {
        let golden = record(true, vec![metric("a", 1.0)]);
        let mut fresh = record(true, vec![metric("a", 99.0)]);
        fresh.schema_version = SCHEMA_VERSION + 1;
        let report = compare(&golden, &fresh);
        assert_eq!(report.failures.len(), 1, "identity mismatch only");
        assert!(report.failures[0].contains("schema version"));
    }

    #[test]
    fn nan_matches_nan() {
        let golden = record(true, vec![metric("a", f64::NAN)]);
        assert!(compare(&golden, &golden.clone()).passed());
    }

    #[test]
    fn incomplete_records_always_fail() {
        let golden = record(true, vec![metric("a", 1.0)]);
        let mut fresh = golden.clone();
        fresh.complete = false;
        let report = compare(&golden, &fresh);
        assert!(!report.passed());
        assert!(report.failures[0].contains("did not complete"));

        let mut stale_golden = golden.clone();
        stale_golden.complete = false;
        assert!(!compare(&stale_golden, &golden).passed());
    }
}
