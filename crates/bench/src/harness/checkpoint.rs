//! Crash-safe checkpoint manifests for `cadapt-bench run`.
//!
//! A checkpointed run (`--checkpoint-every N` / `--resume`) keeps a
//! `MANIFEST.json` next to its record files. The manifest is a
//! checksummed envelope (see [`store`]) whose payload
//! records the run's fingerprint (scale + selected experiment ids, in job
//! order), the completed job-index spans
//! ([`TrialSpans`] pairs), and — because run
//! records themselves stay in the un-enveloped golden byte format — a
//! CRC-32 tag vouching for each completed record file's exact bytes.
//!
//! On `--resume` the manifest is verified end-to-end: envelope checksum,
//! fingerprint, then every claimed record file's content tag, parse, and
//! `complete` flag. Entries that fail any check are **dropped**, not
//! trusted — the engine just re-runs those experiments. Because every
//! experiment is a pure function of (id, scale) and the engine reduces in
//! job order, the resumed run's final records are byte-identical to an
//! uninterrupted run's (checkpointed records canonicalize `wall_ms` to 0,
//! the one field a wall clock would smear).

use super::record::RunRecord;
use super::store::{self, ArtifactWriter, StoreError};
use crate::error::BenchError;
use cadapt_analysis::TrialSpans;
use cadapt_core::cast;
use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version of the manifest payload layout.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name of the manifest inside the run's `--out` directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// The manifest path for an output directory.
#[must_use]
pub fn manifest_path(out: &Path) -> PathBuf {
    out.join(MANIFEST_NAME)
}

/// One completed job the manifest vouches for.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DoneEntry {
    /// Experiment id (also names the record file, `<id>.json`).
    id: String,
    /// CRC tag of the record file's exact bytes.
    crc: String,
}

struct State {
    done: TrialSpans,
    records: BTreeMap<u64, DoneEntry>,
    since_flush: u64,
}

/// Incremental manifest writer for one checkpointed run.
///
/// `mark_done` is called from the sharding pool's worker threads (the
/// interior `Mutex` makes that safe); the manifest flushes atomically
/// every `every` completions and once more at the end of the run.
pub struct Checkpointer {
    out: PathBuf,
    scale: String,
    ids: Vec<String>,
    every: u64,
    state: Mutex<State>,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("out", &self.out)
            .field("scale", &self.scale)
            .field("ids", &self.ids)
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

impl Checkpointer {
    /// A checkpointer for a run over `ids` (in job order) at `scale`,
    /// flushing the manifest every `every` completed experiments
    /// (`every` is clamped to at least 1).
    #[must_use]
    pub fn new(out: &Path, scale: &str, ids: Vec<String>, every: u64) -> Checkpointer {
        Checkpointer {
            out: out.to_path_buf(),
            scale: scale.to_string(),
            ids,
            every: every.max(1),
            state: Mutex::new(State {
                done: TrialSpans::new(),
                records: BTreeMap::new(),
                since_flush: 0,
            }),
        }
    }

    /// Record a completed job and its record file's content tag, flushing
    /// the manifest if the checkpoint interval elapsed.
    ///
    /// # Errors
    ///
    /// Propagates a manifest-write failure.
    pub fn mark_done(
        &self,
        writer: &dyn ArtifactWriter,
        job: u64,
        id: &str,
        record_text: &str,
    ) -> Result<(), BenchError> {
        let payload = {
            let mut state = self.lock();
            state.done.insert(job);
            state.records.insert(
                job,
                DoneEntry {
                    id: id.to_string(),
                    crc: store::content_tag(record_text),
                },
            );
            state.since_flush += 1;
            if state.since_flush < self.every {
                return Ok(());
            }
            state.since_flush = 0;
            self.payload_locked(&state)
        };
        self.write_payload(writer, &payload)
    }

    /// Seed the checkpointer with jobs recovered by [`resume`] so they
    /// stay in the manifest across the resumed run's flushes.
    pub fn preload(&self, recovered: &BTreeMap<u64, (RunRecord, String)>) {
        let mut state = self.lock();
        for (&job, (record, text)) in recovered {
            state.done.insert(job);
            state.records.insert(
                job,
                DoneEntry {
                    id: record.experiment.clone(),
                    crc: store::content_tag(text),
                },
            );
        }
    }

    /// Write the manifest now, regardless of the interval.
    ///
    /// # Errors
    ///
    /// Propagates a manifest-write failure.
    pub fn flush(&self, writer: &dyn ArtifactWriter) -> Result<(), BenchError> {
        let payload = {
            let mut state = self.lock();
            state.since_flush = 0;
            self.payload_locked(&state)
        };
        self.write_payload(writer, &payload)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(guard) => guard,
            // A worker holding the lock only builds small Vecs; if one
            // panicked anyway, the state is still a consistent snapshot
            // (every mutation is a single insert), so keep going.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn payload_locked(&self, state: &State) -> Value {
        let mut payload = Map::new();
        payload.insert(
            "checkpoint_version",
            Value::Number(Number::U(u128::from(CHECKPOINT_VERSION))),
        );
        payload.insert("scale", Value::String(self.scale.clone()));
        payload.insert(
            "ids",
            Value::Array(self.ids.iter().cloned().map(Value::String).collect()),
        );
        payload.insert(
            "completed_jobs",
            Value::Array(
                state
                    .done
                    .to_pairs()
                    .into_iter()
                    .map(|(start, end)| {
                        Value::Array(vec![
                            Value::Number(Number::U(u128::from(start))),
                            Value::Number(Number::U(u128::from(end))),
                        ])
                    })
                    .collect(),
            ),
        );
        payload.insert(
            "records",
            Value::Array(
                state
                    .records
                    .iter()
                    .map(|(&job, entry)| {
                        let mut object = Map::new();
                        object.insert("job", Value::Number(Number::U(u128::from(job))));
                        object.insert("id", Value::String(entry.id.clone()));
                        object.insert("crc32", Value::String(entry.crc.clone()));
                        Value::Object(object)
                    })
                    .collect(),
            ),
        );
        Value::Object(payload)
    }

    fn write_payload(
        &self,
        writer: &dyn ArtifactWriter,
        payload: &Value,
    ) -> Result<(), BenchError> {
        store::write_envelope(writer, &manifest_path(&self.out), payload).map_err(BenchError::from)
    }
}

/// Verified state recovered from a previous run's manifest: for each
/// completed job index, the parsed record and its exact file text.
pub type Recovered = BTreeMap<u64, (RunRecord, String)>;

/// Load and verify a checkpoint manifest for resuming a run over `ids`
/// (in job order) at `scale`.
///
/// Returns the empty map when no manifest exists (a run killed before its
/// first flush resumes from scratch). Entries whose record files fail
/// verification — missing, content tag mismatch, unparseable, marked
/// incomplete, or disagreeing with the manifest about their id — are
/// dropped so the engine re-runs them.
///
/// # Errors
///
/// [`BenchError::Corrupt`] when the manifest exists but fails envelope
/// verification; [`BenchError::Checkpoint`] when it verifies but
/// describes a different run (fingerprint mismatch) or has an
/// unusable shape.
pub fn resume(out: &Path, scale: &str, ids: &[String]) -> Result<Recovered, BenchError> {
    let path = manifest_path(out);
    if !path.exists() {
        return Ok(Recovered::new());
    }
    let payload = match store::read_envelope(&path) {
        Ok(payload) => payload,
        Err(StoreError::Io {
            action,
            path,
            message,
        }) => {
            return Err(BenchError::Io {
                action,
                path,
                message,
            })
        }
        Err(e) => return Err(BenchError::from(e)),
    };
    parse_manifest(&path, &payload, out, scale, ids)
}

fn checkpoint_err(path: &Path, detail: impl Into<String>) -> BenchError {
    BenchError::Checkpoint {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

fn parse_manifest(
    path: &Path,
    payload: &Value,
    out: &Path,
    scale: &str,
    ids: &[String],
) -> Result<Recovered, BenchError> {
    let object = payload
        .as_object()
        .ok_or_else(|| checkpoint_err(path, "payload is not an object"))?;
    let version = object
        .get("checkpoint_version")
        .and_then(Value::as_u64)
        .ok_or_else(|| checkpoint_err(path, "missing checkpoint_version"))?;
    if version != u64::from(CHECKPOINT_VERSION) {
        return Err(checkpoint_err(
            path,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let manifest_scale = object
        .get("scale")
        .and_then(Value::as_str)
        .ok_or_else(|| checkpoint_err(path, "missing scale"))?;
    if manifest_scale != scale {
        return Err(checkpoint_err(
            path,
            format!("manifest is for scale {manifest_scale:?}, this run is {scale:?}"),
        ));
    }
    let manifest_ids: Vec<&str> = object
        .get("ids")
        .and_then(Value::as_array)
        .ok_or_else(|| checkpoint_err(path, "missing ids"))?
        .iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| checkpoint_err(path, "non-string id"))
        })
        .collect::<Result<_, _>>()?;
    if manifest_ids != ids.iter().map(String::as_str).collect::<Vec<_>>() {
        return Err(checkpoint_err(
            path,
            format!(
                "manifest covers experiments {manifest_ids:?}, this run selects {ids:?} — \
                 resume with the same --exp selection or start a fresh --out directory"
            ),
        ));
    }
    // The span list cross-checks the record entries below; reject outright
    // nonsense (overlaps, inversions) as corruption.
    let span_pairs: Vec<(u64, u64)> = object
        .get("completed_jobs")
        .and_then(Value::as_array)
        .ok_or_else(|| checkpoint_err(path, "missing completed_jobs"))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| checkpoint_err(path, "malformed span pair"))?;
            let start = items[0]
                .as_u64()
                .ok_or_else(|| checkpoint_err(path, "non-integer span bound"))?;
            let end = items[1]
                .as_u64()
                .ok_or_else(|| checkpoint_err(path, "non-integer span bound"))?;
            Ok((start, end))
        })
        .collect::<Result<_, BenchError>>()?;
    let done = TrialSpans::from_pairs(&span_pairs)
        .map_err(|e| checkpoint_err(path, format!("invalid completed_jobs: {e}")))?;

    let mut recovered = Recovered::new();
    for entry in object
        .get("records")
        .and_then(Value::as_array)
        .ok_or_else(|| checkpoint_err(path, "missing records"))?
    {
        let Some(object) = entry.as_object() else {
            continue; // unusable entry: re-run it
        };
        let (Some(job), Some(id), Some(crc)) = (
            object.get("job").and_then(Value::as_u64),
            object.get("id").and_then(Value::as_str),
            object.get("crc32").and_then(Value::as_str),
        ) else {
            continue;
        };
        // The entry must describe a job this run will actually execute.
        let Some(job_index) = cast::checked_usize_from_u64(job) else {
            continue;
        };
        if !done.contains(job) || ids.get(job_index).map(String::as_str) != Some(id) {
            continue;
        }
        // Trust the record file only if its exact bytes carry the tag the
        // manifest vouches for AND they parse as a complete record.
        let record_path = out.join(format!("{id}.json"));
        let Ok(text) = std::fs::read_to_string(&record_path) else {
            continue;
        };
        if !store::tag_matches(crc, &text) {
            continue;
        }
        let Ok(record) = RunRecord::from_json(&text) else {
            continue;
        };
        if !record.complete || record.experiment != id || record.scale != scale {
            continue;
        }
        recovered.insert(job, (record, text));
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::record::{metric, SCHEMA_VERSION};
    use crate::harness::store::FsWriter;
    use cadapt_core::CounterSnapshot;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cadapt-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_record(id: &str) -> RunRecord {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            experiment: id.into(),
            title: "demo".into(),
            scale: "quick".into(),
            deterministic: true,
            wall_ms: 0.0,
            counters: CounterSnapshot::ZERO,
            metrics: vec![metric("m", 1.0)],
            tables: vec![],
            complete: true,
        }
    }

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| (*s).to_string()).collect()
    }

    fn write_record(dir: &Path, record: &RunRecord) -> String {
        let text = record.to_json();
        FsWriter
            .persist(&dir.join(format!("{}.json", record.experiment)), &text)
            .unwrap();
        text
    }

    #[test]
    fn no_manifest_resumes_from_scratch() {
        let dir = scratch_dir("fresh");
        assert!(resume(&dir, "quick", &ids(&["e1"])).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mark_done_then_resume_recovers_verified_records() {
        let dir = scratch_dir("roundtrip");
        let run_ids = ids(&["e1", "e2", "e3"]);
        let ckpt = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        let r1 = demo_record("e1");
        let r3 = demo_record("e3");
        let t1 = write_record(&dir, &r1);
        let t3 = write_record(&dir, &r3);
        ckpt.mark_done(&FsWriter, 0, "e1", &t1).unwrap();
        ckpt.mark_done(&FsWriter, 2, "e3", &t3).unwrap();

        let recovered = resume(&dir, "quick", &run_ids).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered.get(&0).unwrap().0, r1);
        assert_eq!(recovered.get(&2).unwrap().0, r3);
        assert!(!recovered.contains_key(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_interval_defers_flushes() {
        let dir = scratch_dir("interval");
        let run_ids = ids(&["e1", "e2"]);
        let ckpt = Checkpointer::new(&dir, "quick", run_ids.clone(), 2);
        let t1 = write_record(&dir, &demo_record("e1"));
        ckpt.mark_done(&FsWriter, 0, "e1", &t1).unwrap();
        assert!(
            !manifest_path(&dir).exists(),
            "below the interval: no flush yet"
        );
        let t2 = write_record(&dir, &demo_record("e2"));
        ckpt.mark_done(&FsWriter, 1, "e2", &t2).unwrap();
        assert!(manifest_path(&dir).exists(), "interval reached");
        assert_eq!(resume(&dir, "quick", &run_ids).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_record_file_is_rerun_not_trusted() {
        let dir = scratch_dir("tamper");
        let run_ids = ids(&["e1"]);
        let ckpt = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        let text = write_record(&dir, &demo_record("e1"));
        ckpt.mark_done(&FsWriter, 0, "e1", &text).unwrap();
        // Bit-flip the record file after the manifest vouched for it.
        let tampered = text.replacen("1.0", "2.0", 1);
        assert_ne!(tampered, text);
        std::fs::write(dir.join("e1.json"), tampered).unwrap();
        assert!(
            resume(&dir, "quick", &run_ids).unwrap().is_empty(),
            "a tampered record must be re-run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_records_are_rerun() {
        let dir = scratch_dir("incomplete");
        let run_ids = ids(&["e1"]);
        let ckpt = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        let mut record = demo_record("e1");
        record.complete = false;
        let text = write_record(&dir, &record);
        ckpt.mark_done(&FsWriter, 0, "e1", &text).unwrap();
        assert!(
            resume(&dir, "quick", &run_ids).unwrap().is_empty(),
            "an incomplete record must be re-run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let dir = scratch_dir("corrupt");
        let run_ids = ids(&["e1"]);
        let ckpt = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        let text = write_record(&dir, &demo_record("e1"));
        ckpt.mark_done(&FsWriter, 0, "e1", &text).unwrap();
        // Truncate the manifest mid-file: envelope verification must fail.
        let manifest = std::fs::read_to_string(manifest_path(&dir)).unwrap();
        std::fs::write(manifest_path(&dir), &manifest[..manifest.len() / 2]).unwrap();
        let err = resume(&dir, "quick", &run_ids).unwrap_err();
        assert!(matches!(err, BenchError::Corrupt { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        let dir = scratch_dir("fingerprint");
        let run_ids = ids(&["e1", "e2"]);
        let ckpt = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        let text = write_record(&dir, &demo_record("e1"));
        ckpt.mark_done(&FsWriter, 0, "e1", &text).unwrap();

        let err = resume(&dir, "quick", &ids(&["e1"])).unwrap_err();
        assert!(matches!(err, BenchError::Checkpoint { .. }), "{err:?}");
        let err = resume(&dir, "full", &run_ids).unwrap_err();
        assert!(matches!(err, BenchError::Checkpoint { .. }), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn preload_keeps_recovered_jobs_in_later_manifests() {
        let dir = scratch_dir("preload");
        let run_ids = ids(&["e1", "e2"]);
        let first = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        let t1 = write_record(&dir, &demo_record("e1"));
        first.mark_done(&FsWriter, 0, "e1", &t1).unwrap();

        // A resumed run preloads, completes the rest, and flushes —
        // the final manifest must still vouch for the preloaded job.
        let recovered = resume(&dir, "quick", &run_ids).unwrap();
        let second = Checkpointer::new(&dir, "quick", run_ids.clone(), 1);
        second.preload(&recovered);
        let t2 = write_record(&dir, &demo_record("e2"));
        second.mark_done(&FsWriter, 1, "e2", &t2).unwrap();

        let recovered = resume(&dir, "quick", &run_ids).unwrap();
        assert_eq!(recovered.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
