//! Crash-safe artifact persistence.
//!
//! Run records, checkpoint manifests, perf suites, and fault reports all
//! reach disk through this module, which provides two guarantees:
//!
//! * **Atomicity** — [`FsWriter`] writes to `<path>.tmp`, fsyncs, then
//!   renames over the destination. A crash at any instant leaves either
//!   the old file or the new file, never a torn mixture; a stray `.tmp`
//!   is garbage to be overwritten, never read.
//! * **Integrity** — artifacts that will be *trusted later* (checkpoint
//!   manifests, perf suites, fault reports) are wrapped in a checksummed
//!   envelope: `{"cadapt_envelope": 1, "crc32": "crc32:…", "payload": …}`
//!   with the CRC taken over the payload's compact rendering.
//!   [`read_envelope`] recomputes it and refuses truncated, bit-flipped,
//!   or checksum-mismatched files with a typed [`StoreError::Envelope`].
//!
//! Run records themselves are **not** enveloped: their on-disk bytes are
//! the golden format the repo has committed, and this PR keeps those
//! byte-identical. Records get atomicity from the writer and integrity
//! from the CRCs embedded in the checkpoint manifest next to them.
//!
//! The [`ArtifactWriter`] trait exists so the fault-injection harness can
//! substitute a writer that fails or truncates on command
//! (`crate::faults`); production code only ever constructs [`FsWriter`].

use cadapt_core::checksum::crc32_tag;
use serde_json::{Map, Value};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version of the envelope layout.
pub const ENVELOPE_VERSION: u32 = 1;

/// A persistence failure, typed so callers can distinguish "the disk said
/// no" from "the file says something untrustworthy".
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A real filesystem operation failed.
    Io {
        /// What was being attempted.
        action: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error, rendered.
        message: String,
    },
    /// An injected fault (fault-injection harness only): the write failed
    /// with **no** side effects on the destination.
    Injected {
        /// The simulated operation.
        action: &'static str,
        /// The path involved.
        path: PathBuf,
    },
    /// The envelope failed verification; the payload must not be trusted.
    Envelope {
        /// The artifact.
        path: PathBuf,
        /// What exactly failed (parse error, missing field, CRC mismatch).
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                action,
                path,
                message,
            } => write!(f, "failed to {action} {}: {message}", path.display()),
            StoreError::Injected { action, path } => {
                write!(f, "injected {action} fault on {}", path.display())
            }
            StoreError::Envelope { path, detail } => {
                write!(
                    f,
                    "artifact {} failed verification: {detail}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Where artifacts go. Production uses [`FsWriter`]; the fault harness
/// wraps it with an injector.
pub trait ArtifactWriter: Sync {
    /// Atomically persist `text` at `path` (tmp + rename semantics: after
    /// an error the destination holds either its old content or nothing).
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] and leaves the destination
    /// untouched (a leftover `.tmp` file is allowed; it is never read).
    fn persist(&self, path: &Path, text: &str) -> Result<(), StoreError>;
}

/// The real filesystem writer: tmp file, fsync, rename.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsWriter;

impl ArtifactWriter for FsWriter {
    fn persist(&self, path: &Path, text: &str) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        fn io(action: &'static str, p: &Path) -> impl FnOnce(std::io::Error) -> StoreError {
            let p = p.to_path_buf();
            move |e: std::io::Error| StoreError::Io {
                action,
                path: p,
                message: e.to_string(),
            }
        }
        {
            let mut file = std::fs::File::create(&tmp).map_err(io("create", &tmp))?;
            file.write_all(text.as_bytes()).map_err(io("write", &tmp))?;
            // Flush to the device before the rename publishes the file, so
            // a crash cannot publish an empty or partial artifact.
            file.sync_all().map_err(io("sync", &tmp))?;
        }
        std::fs::rename(&tmp, path).map_err(io("rename", path))?;
        Ok(())
    }
}

/// The sibling tmp path the writer stages into.
#[must_use]
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Wrap `payload` in the checksummed envelope and render it as pretty
/// JSON (the CRC is over the payload's *compact* rendering, so pretty
/// whitespace stays out of the integrity domain).
#[must_use]
pub fn envelope_text(payload: &Value) -> String {
    let mut envelope = Map::new();
    envelope.insert(
        "cadapt_envelope",
        Value::Number(serde_json::Number::U(u128::from(ENVELOPE_VERSION))),
    );
    envelope.insert(
        "crc32",
        Value::String(crc32_tag(payload.render_compact().as_bytes())),
    );
    envelope.insert("payload", payload.clone());
    let mut text = Value::Object(envelope).render_pretty();
    text.push('\n');
    text
}

/// Atomically persist `payload` at `path` inside a checksummed envelope.
///
/// # Errors
///
/// Propagates the writer's [`StoreError`].
pub fn write_envelope(
    writer: &dyn ArtifactWriter,
    path: &Path,
    payload: &Value,
) -> Result<(), StoreError> {
    writer.persist(path, &envelope_text(payload))
}

/// Read and verify a checksummed artifact, returning the payload only if
/// every check passes: well-formed JSON, the envelope shape, a known
/// version, and a CRC that matches the payload's canonical bytes.
///
/// # Errors
///
/// [`StoreError::Io`] when the file cannot be read;
/// [`StoreError::Envelope`] when it reads but cannot be trusted
/// (truncation and byte flips land here — never a panic).
pub fn read_envelope(path: &Path) -> Result<Value, StoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| StoreError::Io {
        action: "read",
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    verify_envelope(path, &text)
}

/// [`read_envelope`] on already-loaded text (exposed for corruption
/// tests and the fault harness).
///
/// # Errors
///
/// As [`read_envelope`].
pub fn verify_envelope(path: &Path, text: &str) -> Result<Value, StoreError> {
    let corrupt = |detail: String| StoreError::Envelope {
        path: path.to_path_buf(),
        detail,
    };
    let value = Value::parse_json(text).map_err(|e| corrupt(format!("not valid JSON: {e}")))?;
    let object = value
        .as_object()
        .ok_or_else(|| corrupt("envelope is not a JSON object".to_string()))?;
    let version = object
        .get("cadapt_envelope")
        .and_then(Value::as_u64)
        .ok_or_else(|| corrupt("missing `cadapt_envelope` version field".to_string()))?;
    if version != u64::from(ENVELOPE_VERSION) {
        return Err(corrupt(format!(
            "unsupported envelope version {version} (expected {ENVELOPE_VERSION})"
        )));
    }
    let declared = object
        .get("crc32")
        .and_then(Value::as_str)
        .ok_or_else(|| corrupt("missing `crc32` field".to_string()))?;
    let payload = object
        .get("payload")
        .ok_or_else(|| corrupt("missing `payload` field".to_string()))?;
    let actual = crc32_tag(payload.render_compact().as_bytes());
    if declared != actual {
        return Err(corrupt(format!(
            "checksum mismatch: file declares {declared}, payload hashes to {actual}"
        )));
    }
    Ok(payload.clone())
}

/// CRC tag of a run record's exact on-disk bytes — the integrity hook for
/// *non*-enveloped artifacts: the checkpoint manifest stores this tag
/// next to each record it vouches for.
#[must_use]
pub fn content_tag(text: &str) -> String {
    crc32_tag(text.as_bytes())
}

/// Does `tag` match `text`? (Constant-shape helper for manifest checks.)
#[must_use]
pub fn tag_matches(tag: &str, text: &str) -> bool {
    // Reject anything that is not a well-formed tag, so a corrupted
    // manifest entry can never accidentally vouch for a file.
    tag == content_tag(text) && tag.len() == "crc32:00000000".len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cadapt-store-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_payload() -> Value {
        let mut m = Map::new();
        m.insert("kind", Value::String("demo".into()));
        m.insert("n", Value::Number(serde_json::Number::U(42)));
        m.insert("x", Value::Number(serde_json::Number::F(1.5)));
        Value::Object(m)
    }

    #[test]
    fn fs_writer_round_trips_atomically() {
        let dir = scratch_dir("atomic");
        let path = dir.join("artifact.json");
        FsWriter.persist(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        FsWriter.persist(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // The staging file never survives a successful persist.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_writer_reports_typed_io_errors() {
        let path = Path::new("/definitely/not/a/real/dir/artifact.json");
        let err = FsWriter.persist(path, "x").unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Io {
                    action: "create",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn envelope_round_trips() {
        let dir = scratch_dir("envelope");
        let path = dir.join("manifest.json");
        let payload = demo_payload();
        write_envelope(&FsWriter, &path, &payload).unwrap();
        assert_eq!(read_envelope(&path).unwrap(), payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_boundary_is_rejected_never_panics() {
        let text = envelope_text(&demo_payload());
        let path = Path::new("truncated.json");
        let mut rejected = 0;
        for cut in 0..text.len() {
            // A cut that only strips trailing whitespace leaves the
            // envelope semantically intact and may verify; every other
            // cut must be rejected with a typed error — and no cut may
            // ever verify with the wrong payload.
            let partial = &text[..cut];
            match verify_envelope(path, partial) {
                Ok(payload) => assert_eq!(
                    payload,
                    demo_payload(),
                    "cut at {cut}: truncation verified with the wrong payload"
                ),
                Err(StoreError::Envelope { .. }) => rejected += 1,
                Err(other) => panic!("cut at {cut}: {other:?}"),
            }
        }
        assert!(
            rejected >= text.len() - 2,
            "only whitespace-stripping cuts may verify ({rejected} of {} rejected)",
            text.len()
        );
        // The untruncated text still verifies.
        assert!(verify_envelope(path, &text).is_ok());
    }

    #[test]
    fn bit_flips_in_the_payload_are_rejected() {
        let text = envelope_text(&demo_payload());
        let path = Path::new("flipped.json");
        // Flip characters inside the payload region (after the crc line)
        // in ways that keep the JSON parseable: digit swaps.
        let tampered = text.replacen("42", "43", 1);
        assert_ne!(tampered, text, "the payload digit must appear");
        let err = verify_envelope(path, &tampered).unwrap_err();
        match err {
            StoreError::Envelope { detail, .. } => {
                assert!(detail.contains("checksum mismatch"), "{detail}");
            }
            other => panic!("expected envelope error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_and_missing_fields_are_rejected() {
        let path = Path::new("bad.json");
        let cases = [
            ("{}", "missing `cadapt_envelope`"),
            ("[]", "not a JSON object"),
            (
                "{\"cadapt_envelope\": 99, \"crc32\": \"crc32:00000000\", \"payload\": 1}",
                "unsupported envelope version",
            ),
            (
                "{\"cadapt_envelope\": 1, \"payload\": 1}",
                "missing `crc32`",
            ),
            (
                "{\"cadapt_envelope\": 1, \"crc32\": \"crc32:00000000\"}",
                "missing `payload`",
            ),
        ];
        for (text, want) in cases {
            let err = verify_envelope(path, text).unwrap_err();
            match err {
                StoreError::Envelope { detail, .. } => {
                    assert!(detail.contains(want), "for {text}: {detail}");
                }
                other => panic!("expected envelope error for {text}, got {other:?}"),
            }
        }
    }

    #[test]
    fn content_tags_vouch_for_exact_bytes() {
        let tag = content_tag("{\"a\": 1}\n");
        assert!(tag_matches(&tag, "{\"a\": 1}\n"));
        assert!(!tag_matches(&tag, "{\"a\": 2}\n"));
        assert!(!tag_matches("crc32:bogus", "{\"a\": 1}\n"));
        assert!(!tag_matches("", ""));
    }
}
