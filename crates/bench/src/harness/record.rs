//! Schema-versioned run records: what one experiment run writes to disk.

use crate::experiments::common::RatioSeries;
use cadapt_analysis::GrowthClass;
use cadapt_core::CounterSnapshot;
use serde::{Deserialize, Serialize};

/// Version of the on-disk record layout. Bump when a field changes meaning
/// or shape; `check` refuses to compare records across versions.
pub const SCHEMA_VERSION: u32 = 1;

/// One named scalar extracted from an experiment, with the half-width of
/// its 95% confidence interval (0 for exact quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Stable, slash-separated name (`"series/MM-Scan (8,4,1)/slope"`).
    pub name: String,
    /// The value.
    pub value: f64,
    /// Half-width of the 95% CI; 0 when the quantity is exact.
    pub ci95: f64,
}

/// An exact metric (CI half-width 0).
#[must_use]
pub fn metric(name: impl Into<String>, value: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
        ci95: 0.0,
    }
}

/// A metric with a confidence interval.
#[must_use]
pub fn metric_ci(name: impl Into<String>, value: f64, ci95: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
        ci95,
    }
}

/// Stable numeric encoding of a growth class, so classifications can live
/// in the metric list (a class flip is a regression worth failing on).
#[must_use]
pub fn class_code(class: GrowthClass) -> f64 {
    match class {
        GrowthClass::Constant => 0.0,
        GrowthClass::Logarithmic => 1.0,
        GrowthClass::Indeterminate => 2.0,
    }
}

/// Extract the standard metrics of a classified ratio series: fitted
/// slope, r², final mean ratio, and the growth class.
pub fn push_series(metrics: &mut Vec<Metric>, prefix: &str, series: &RatioSeries) {
    let base = format!("{prefix}/{}", series.label);
    metrics.push(metric(format!("{base}/slope"), series.fit.slope));
    metrics.push(metric(format!("{base}/r2"), series.fit.r2));
    if let Some(&(_, last)) = series.points.last() {
        metrics.push(metric(format!("{base}/final"), last));
    }
    metrics.push(metric(format!("{base}/class"), class_code(series.class)));
}

/// The complete, serialisable outcome of running one experiment once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Registry id (`"e1"` … `"e13"`, `"ablations"`).
    pub experiment: String,
    /// Human-readable title.
    pub title: String,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Whether re-runs are bit-identical (exact golden comparison) or
    /// Monte-Carlo (CI-overlap comparison).
    pub deterministic: bool,
    /// Wall-clock time of the run in milliseconds. Informational only;
    /// never compared against goldens.
    pub wall_ms: f64,
    /// Execution counters recorded across the whole run (exact per-trial
    /// sums — thread-count independent, compared exactly).
    pub counters: CounterSnapshot,
    /// Extracted scalars, compared against goldens under the tolerance
    /// rules in [`crate::harness::check`].
    pub metrics: Vec<Metric>,
    /// Rendered tables (informational only; never compared).
    pub tables: Vec<String>,
}

impl RunRecord {
    /// Serialise to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialisation fails (it cannot for this type).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunRecord serialises")
    }

    /// Parse a record from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        serde_json::from_str(text).map_err(|e| format!("{e:?}"))
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let record = RunRecord {
            schema_version: SCHEMA_VERSION,
            experiment: "e1".into(),
            title: "demo".into(),
            scale: "quick".into(),
            deterministic: true,
            wall_ms: 12.5,
            counters: CounterSnapshot {
                boxes_advanced: 7,
                ..CounterSnapshot::ZERO
            },
            metrics: vec![metric("a/slope", 1.25), metric_ci("b/mean", 2.0, 0.125)],
            tables: vec!["T\nrow".into()],
        };
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(record, back);
    }

    #[test]
    fn class_codes_are_distinct() {
        let codes = [
            class_code(GrowthClass::Constant),
            class_code(GrowthClass::Logarithmic),
            class_code(GrowthClass::Indeterminate),
        ];
        assert_eq!(codes, [0.0, 1.0, 2.0]);
    }

    #[test]
    fn push_series_emits_the_standard_four() {
        let series = RatioSeries::classify("demo", vec![(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        let mut metrics = Vec::new();
        push_series(&mut metrics, "s", &series);
        let names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            ["s/demo/slope", "s/demo/r2", "s/demo/final", "s/demo/class"]
        );
        assert_eq!(metrics[2].value, 2.0);
        assert_eq!(metrics[3].value, 0.0); // Constant
    }
}
