//! Schema-versioned run records: what one experiment run writes to disk.
//!
//! Records are parsed from **untrusted** bytes — a crashed run, a hostile
//! edit, a bad disk — so the reader here is hand-rolled over the JSON
//! value tree with a typed [`RecordError`] for every way a file can fail
//! to be a record: no `unwrap`, no unchecked `u64 → usize`, no indexing
//! assumptions (`cadapt_core::cast::checked_*` everywhere a width
//! changes). The writer is hand-rolled too, so the field order — and
//! therefore every committed golden byte — is fixed by this file, not by
//! a derive: the `complete` flag is serialized **only when false**,
//! keeping healthy records (and all existing goldens) byte-identical to
//! the pre-fault-tolerance format.

use crate::experiments::common::RatioSeries;
use cadapt_analysis::GrowthClass;
use cadapt_core::cast;
use cadapt_core::CounterSnapshot;
use serde_json::{Map, Number, Value};
use std::fmt;

/// Version of the on-disk record layout. Bump when a field changes meaning
/// or shape; `check` refuses to compare records across versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Why a byte stream is not a [`RunRecord`]. Parsing never panics: a
/// hostile file produces one of these, with the offending field named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The text is not well-formed JSON at all (truncation lands here).
    Syntax {
        /// The parser's message.
        message: String,
    },
    /// The JSON is well-formed but a field is missing, has the wrong
    /// type, or holds an out-of-range value.
    Shape {
        /// Dotted path of the offending field (`"metrics[3].value"`).
        field: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Syntax { message } => write!(f, "invalid JSON: {message}"),
            RecordError::Shape { field, message } => {
                write!(f, "field `{field}`: {message}")
            }
        }
    }
}

impl std::error::Error for RecordError {}

fn shape(field: impl Into<String>, message: impl Into<String>) -> RecordError {
    RecordError::Shape {
        field: field.into(),
        message: message.into(),
    }
}

/// One named scalar extracted from an experiment, with the half-width of
/// its 95% confidence interval (0 for exact quantities).
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable, slash-separated name (`"series/MM-Scan (8,4,1)/slope"`).
    pub name: String,
    /// The value.
    pub value: f64,
    /// Half-width of the 95% CI; 0 when the quantity is exact.
    pub ci95: f64,
}

/// An exact metric (CI half-width 0).
#[must_use]
pub fn metric(name: impl Into<String>, value: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
        ci95: 0.0,
    }
}

/// A metric with a confidence interval.
#[must_use]
pub fn metric_ci(name: impl Into<String>, value: f64, ci95: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
        ci95,
    }
}

/// Stable numeric encoding of a growth class, so classifications can live
/// in the metric list (a class flip is a regression worth failing on).
#[must_use]
pub fn class_code(class: GrowthClass) -> f64 {
    match class {
        GrowthClass::Constant => 0.0,
        GrowthClass::Logarithmic => 1.0,
        GrowthClass::Indeterminate => 2.0,
    }
}

/// Extract the standard metrics of a classified ratio series: fitted
/// slope, r², final mean ratio, and the growth class.
pub fn push_series(metrics: &mut Vec<Metric>, prefix: &str, series: &RatioSeries) {
    let base = format!("{prefix}/{}", series.label);
    metrics.push(metric(format!("{base}/slope"), series.fit.slope));
    metrics.push(metric(format!("{base}/r2"), series.fit.r2));
    if let Some(&(_, last)) = series.points.last() {
        metrics.push(metric(format!("{base}/final"), last));
    }
    metrics.push(metric(format!("{base}/class"), class_code(series.class)));
}

/// The complete, serialisable outcome of running one experiment once.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Registry id (`"e1"` … `"e13"`, `"ablations"`).
    pub experiment: String,
    /// Human-readable title.
    pub title: String,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// Whether re-runs are bit-identical (exact golden comparison) or
    /// Monte-Carlo (CI-overlap comparison).
    pub deterministic: bool,
    /// Wall-clock time of the run in milliseconds. Informational only;
    /// never compared against goldens. Canonicalized to 0 in
    /// checkpointed runs so resumed records stay byte-identical.
    pub wall_ms: f64,
    /// Execution counters recorded across the whole run (exact per-trial
    /// sums — thread-count independent, compared exactly).
    pub counters: CounterSnapshot,
    /// Extracted scalars, compared against goldens under the tolerance
    /// rules in [`crate::harness::check`].
    pub metrics: Vec<Metric>,
    /// Rendered tables (informational only; never compared).
    pub tables: Vec<String>,
    /// Did the experiment run to completion? A record written after an
    /// isolated failure is marked `false` (and fails `check`); the field
    /// is **omitted** from JSON when `true` so healthy records keep the
    /// original byte format.
    pub complete: bool,
}

fn f64_value(x: f64) -> Value {
    if x.is_finite() {
        Value::Number(Number::F(x))
    } else if x.is_nan() {
        Value::String("NaN".to_string())
    } else if x > 0.0 {
        Value::String("Infinity".to_string())
    } else {
        Value::String("-Infinity".to_string())
    }
}

fn u64_value(x: u64) -> Value {
    Value::Number(Number::U(u128::from(x)))
}

impl RunRecord {
    /// The JSON value tree of this record, in the canonical field order.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut root = Map::new();
        root.insert("schema_version", u64_value(u64::from(self.schema_version)));
        root.insert("experiment", Value::String(self.experiment.clone()));
        root.insert("title", Value::String(self.title.clone()));
        root.insert("scale", Value::String(self.scale.clone()));
        root.insert("deterministic", Value::Bool(self.deterministic));
        root.insert("wall_ms", f64_value(self.wall_ms));
        let mut counters = Map::new();
        counters.insert("boxes_advanced", u64_value(self.counters.boxes_advanced));
        counters.insert("cursor_steps", u64_value(self.counters.cursor_steps));
        counters.insert("ios_charged", u64_value(self.counters.ios_charged));
        counters.insert("cache_hits", u64_value(self.counters.cache_hits));
        counters.insert("cache_evictions", u64_value(self.counters.cache_evictions));
        root.insert("counters", Value::Object(counters));
        let metrics: Vec<Value> = self
            .metrics
            .iter()
            .map(|m| {
                let mut metric = Map::new();
                metric.insert("name", Value::String(m.name.clone()));
                metric.insert("value", f64_value(m.value));
                metric.insert("ci95", f64_value(m.ci95));
                Value::Object(metric)
            })
            .collect();
        root.insert("metrics", Value::Array(metrics));
        root.insert(
            "tables",
            Value::Array(self.tables.iter().cloned().map(Value::String).collect()),
        );
        // Omitted when true: healthy records keep the pre-fault-tolerance
        // byte format, so committed goldens never change.
        if !self.complete {
            root.insert("complete", Value::Bool(false));
        }
        Value::Object(root)
    }

    /// Serialise to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().render_pretty()
    }

    /// Parse a record from JSON, rejecting — never panicking on —
    /// malformed, truncated, or out-of-range input.
    ///
    /// # Errors
    ///
    /// [`RecordError::Syntax`] when the text is not JSON;
    /// [`RecordError::Shape`] naming the first unusable field.
    pub fn from_json(text: &str) -> Result<RunRecord, RecordError> {
        let value = Value::parse_json(text).map_err(|e| RecordError::Syntax {
            message: e.to_string(),
        })?;
        RunRecord::from_value(&value)
    }

    /// Parse a record out of an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`RecordError::Shape`] naming the first unusable field.
    pub fn from_value(value: &Value) -> Result<RunRecord, RecordError> {
        let root = value
            .as_object()
            .ok_or_else(|| shape("<root>", "expected a JSON object"))?;
        let schema_version = field_u32(root, "schema_version")?;
        let record = RunRecord {
            schema_version,
            experiment: field_string(root, "experiment")?,
            title: field_string(root, "title")?,
            scale: field_string(root, "scale")?,
            deterministic: field_bool(root, "deterministic")?,
            wall_ms: field_f64(root, "wall_ms")?,
            counters: parse_counters(root)?,
            metrics: parse_metrics(root)?,
            tables: parse_tables(root)?,
            // Absent means complete: the original format had no flag.
            complete: match root.get("complete") {
                None => true,
                Some(Value::Bool(b)) => *b,
                Some(_) => return Err(shape("complete", "expected a boolean")),
            },
        };
        Ok(record)
    }
}

fn get<'v>(root: &'v Map, field: &str) -> Result<&'v Value, RecordError> {
    root.get(field).ok_or_else(|| shape(field, "missing"))
}

fn field_string(root: &Map, field: &str) -> Result<String, RecordError> {
    get(root, field)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| shape(field, "expected a string"))
}

fn field_bool(root: &Map, field: &str) -> Result<bool, RecordError> {
    match get(root, field)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(shape(field, "expected a boolean")),
    }
}

/// Inverse of [`f64_value`]: accepts the sentinel strings the writer
/// uses for non-finite values, so every record we can write we can also
/// read back.
fn field_f64(root: &Map, field: &str) -> Result<f64, RecordError> {
    match get(root, field)? {
        Value::String(s) if s == "NaN" => Ok(f64::NAN),
        Value::String(s) if s == "Infinity" => Ok(f64::INFINITY),
        Value::String(s) if s == "-Infinity" => Ok(f64::NEG_INFINITY),
        v => v.as_f64().ok_or_else(|| shape(field, "expected a number")),
    }
}

/// A non-negative integer field, range-checked into `u64` via the
/// fallible casts (a hostile `1e300` or `2^100` is a typed rejection, not
/// a panic or a wrap).
fn field_u64(root: &Map, field: &str) -> Result<u64, RecordError> {
    match get(root, field)? {
        Value::Number(Number::U(u)) => cast::checked_u64_from_u128(*u)
            .ok_or_else(|| shape(field, "integer out of range for u64")),
        _ => Err(shape(field, "expected a non-negative integer")),
    }
}

fn field_u32(root: &Map, field: &str) -> Result<u32, RecordError> {
    match get(root, field)? {
        Value::Number(Number::U(u)) => cast::checked_u32_from_u128(*u)
            .ok_or_else(|| shape(field, "integer out of range for u32")),
        _ => Err(shape(field, "expected a non-negative integer")),
    }
}

fn parse_counters(root: &Map) -> Result<CounterSnapshot, RecordError> {
    let counters = get(root, "counters")?
        .as_object()
        .ok_or_else(|| shape("counters", "expected an object"))?;
    Ok(CounterSnapshot {
        boxes_advanced: field_u64(counters, "boxes_advanced")
            .map_err(|e| prefix_field("counters", e))?,
        cursor_steps: field_u64(counters, "cursor_steps")
            .map_err(|e| prefix_field("counters", e))?,
        ios_charged: field_u64(counters, "ios_charged").map_err(|e| prefix_field("counters", e))?,
        cache_hits: field_u64(counters, "cache_hits").map_err(|e| prefix_field("counters", e))?,
        cache_evictions: field_u64(counters, "cache_evictions")
            .map_err(|e| prefix_field("counters", e))?,
    })
}

fn prefix_field(prefix: &str, e: RecordError) -> RecordError {
    match e {
        RecordError::Shape { field, message } => RecordError::Shape {
            field: format!("{prefix}.{field}"),
            message,
        },
        other => other,
    }
}

fn parse_metrics(root: &Map) -> Result<Vec<Metric>, RecordError> {
    let items = get(root, "metrics")?
        .as_array()
        .ok_or_else(|| shape("metrics", "expected an array"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let at = |inner: &str| format!("metrics[{i}].{inner}");
            let object = item
                .as_object()
                .ok_or_else(|| shape(format!("metrics[{i}]"), "expected an object"))?;
            Ok(Metric {
                name: field_string(object, "name").map_err(|e| reword(at("name"), e))?,
                value: field_f64(object, "value").map_err(|e| reword(at("value"), e))?,
                ci95: field_f64(object, "ci95").map_err(|e| reword(at("ci95"), e))?,
            })
        })
        .collect()
}

fn reword(field: String, e: RecordError) -> RecordError {
    match e {
        RecordError::Shape { message, .. } => RecordError::Shape { field, message },
        other => other,
    }
}

fn parse_tables(root: &Map) -> Result<Vec<String>, RecordError> {
    let items = get(root, "tables")?
        .as_array()
        .ok_or_else(|| shape("tables", "expected an array"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| shape(format!("tables[{i}]"), "expected a string"))
        })
        .collect()
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    fn demo_record() -> RunRecord {
        RunRecord {
            schema_version: SCHEMA_VERSION,
            experiment: "e1".into(),
            title: "demo".into(),
            scale: "quick".into(),
            deterministic: true,
            wall_ms: 12.5,
            counters: CounterSnapshot {
                boxes_advanced: 7,
                ..CounterSnapshot::ZERO
            },
            metrics: vec![metric("a/slope", 1.25), metric_ci("b/mean", 2.0, 0.125)],
            tables: vec!["T\nrow".into()],
            complete: true,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let record = demo_record();
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(record, back);
    }

    #[test]
    fn complete_flag_round_trips_and_stays_out_of_healthy_records() {
        let healthy = demo_record();
        assert!(
            !healthy.to_json().contains("complete"),
            "healthy records must keep the original byte format"
        );
        let mut partial = demo_record();
        partial.complete = false;
        let json = partial.to_json();
        assert!(json.contains("\"complete\": false"), "{json}");
        let back = RunRecord::from_json(&json).unwrap();
        assert!(!back.complete);
    }

    #[test]
    fn serialization_matches_the_derived_legacy_format() {
        // The manual writer must reproduce what the derive produced for
        // the committed goldens: same field order, same float rendering.
        let json = demo_record().to_json();
        let expected_prefix = "{\n  \"schema_version\": 1,\n  \"experiment\": \"e1\",\n  \"title\": \"demo\",\n  \"scale\": \"quick\",\n  \"deterministic\": true,\n  \"wall_ms\": 12.5,";
        assert!(
            json.starts_with(expected_prefix),
            "unexpected layout:\n{json}"
        );
        assert!(json.contains("\"boxes_advanced\": 7"));
        assert!(json.ends_with('}'), "no trailing newline inside to_json");
    }

    #[test]
    fn truncation_is_a_typed_syntax_error() {
        let json = demo_record().to_json();
        for cut in 0..json.len() {
            match RunRecord::from_json(&json[..cut]) {
                Err(_) => {}
                Ok(_) => assert_eq!(cut, 0, "prefix of length {cut} parsed as a record"),
            }
        }
        assert!(matches!(
            RunRecord::from_json("{\"schema_ver"),
            Err(RecordError::Syntax { .. })
        ));
    }

    #[test]
    fn hostile_integers_are_rejected_not_panicked_on() {
        // u128-scale counters must not wrap or abort a 64-bit parse.
        let json = demo_record().to_json().replace(
            "\"boxes_advanced\": 7",
            "\"boxes_advanced\": 340282366920938463463374607431768211455",
        );
        let err = RunRecord::from_json(&json).unwrap_err();
        match err {
            RecordError::Shape { field, message } => {
                assert_eq!(field, "counters.boxes_advanced");
                assert!(message.contains("out of range"), "{message}");
            }
            other => panic!("expected shape error, got {other:?}"),
        }

        let json = demo_record().to_json().replace(
            "\"schema_version\": 1",
            "\"schema_version\": 99999999999999",
        );
        assert!(matches!(
            RunRecord::from_json(&json),
            Err(RecordError::Shape { .. })
        ));
    }

    #[test]
    fn wrong_shapes_name_the_field() {
        let cases = [
            ("\"experiment\": \"e1\"", "\"experiment\": 3", "experiment"),
            (
                "\"deterministic\": true",
                "\"deterministic\": \"yes\"",
                "deterministic",
            ),
            ("\"wall_ms\": 12.5", "\"wall_ms\": []", "wall_ms"),
            ("\"ci95\": 0.125", "\"ci95\": null", "metrics[1].ci95"),
            ("\"T\\nrow\"", "17", "tables[0]"),
        ];
        for (from, to, want_field) in cases {
            let json = demo_record().to_json().replacen(from, to, 1);
            let err = RunRecord::from_json(&json).unwrap_err();
            match err {
                RecordError::Shape { field, .. } => {
                    assert_eq!(field, want_field, "after replacing {from}")
                }
                other => panic!("expected shape error after replacing {from}, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_fields_are_named() {
        let json = "{\n  \"schema_version\": 1\n}";
        let err = RunRecord::from_json(json).unwrap_err();
        assert!(matches!(err, RecordError::Shape { ref field, .. } if field == "experiment"));
        assert!(err.to_string().contains("experiment"));
    }

    #[test]
    fn class_codes_are_distinct() {
        let codes = [
            class_code(GrowthClass::Constant),
            class_code(GrowthClass::Logarithmic),
            class_code(GrowthClass::Indeterminate),
        ];
        assert_eq!(codes, [0.0, 1.0, 2.0]);
    }

    #[test]
    fn push_series_emits_the_standard_four() {
        let series = RatioSeries::classify("demo", vec![(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        let mut metrics = Vec::new();
        push_series(&mut metrics, "s", &series);
        let names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            ["s/demo/slope", "s/demo/r2", "s/demo/final", "s/demo/class"]
        );
        assert_eq!(metrics[2].value, 2.0);
        assert_eq!(metrics[3].value, 0.0); // Constant
    }
}
