//! # The experiment engine
//!
//! One registry, one runner, one on-disk format — the machinery behind the
//! `cadapt-bench` binary. Every experiment module implements [`Experiment`]
//! (id, title, determinism, and a `run` producing metrics + rendered
//! tables); [`run_record`] executes one under a counter [`Recording`] and a
//! wall clock and packages the outcome as a schema-versioned [`RunRecord`];
//! [`check::compare`] diffs a fresh record against a committed golden under
//! explicit tolerance bands.
//!
//! Determinism contract: every experiment routes its trial fan-out through
//! `cadapt_analysis::parallel`, whose trial-ordered reduction makes results
//! bit-identical at any thread count (the [`ExpCtx`] thread budget only
//! moves wall time). An experiment declares itself `deterministic` only if
//! a re-run in any environment reproduces every metric bit-for-bit; the
//! Monte-Carlo experiments (e2, e6, ablations) keep `deterministic =
//! false` and are compared by CI overlap instead, so their committed
//! goldens stay robust to retunings of trial counts and sweeps.

pub mod check;
pub mod record;

pub use check::{compare, CheckReport};
pub use record::{class_code, metric, metric_ci, push_series, Metric, RunRecord, SCHEMA_VERSION};

use crate::experiments::{
    ablations, e10_contention, e11_no_catchup, e12_scan_hiding, e13_scheduling, e1_worst_case_gap,
    e2_iid_smoothing, e3_size_perturb, e4_start_shift, e5_box_order, e6_recurrence, e7_potential,
    e8_trace_validation, e9_taxonomy,
};
use crate::{ExpCtx, Scale};
use cadapt_core::counters::Recording;
use std::time::Instant;

/// What an experiment hands back to the engine: extracted scalars plus the
/// rendered tables the old per-experiment binaries used to print.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Named scalars for golden comparison.
    pub metrics: Vec<Metric>,
    /// Rendered tables (printed by `run`, stored for reference).
    pub tables: Vec<String>,
}

/// A registered experiment.
pub trait Experiment: Sync {
    /// Stable registry id (`"e1"` … `"e13"`, `"ablations"`).
    fn id(&self) -> &'static str;
    /// One-line human title.
    fn title(&self) -> &'static str;
    /// Is a re-run bit-identical? (See the module docs for the contract.)
    fn deterministic(&self) -> bool;
    /// Execute under the given context (scale + trial-worker budget).
    fn run(&self, ctx: ExpCtx) -> ExperimentOutput;
}

/// Every experiment, in presentation order.
#[must_use]
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 14] = [
        &e1_worst_case_gap::Exp,
        &e2_iid_smoothing::Exp,
        &e3_size_perturb::Exp,
        &e4_start_shift::Exp,
        &e5_box_order::Exp,
        &e6_recurrence::Exp,
        &e7_potential::Exp,
        &e8_trace_validation::Exp,
        &e9_taxonomy::Exp,
        &e10_contention::Exp,
        &e11_no_catchup::Exp,
        &e12_scan_hiding::Exp,
        &e13_scheduling::Exp,
        &ablations::Exp,
    ];
    &REGISTRY
}

/// Look up an experiment by registry id.
#[must_use]
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().find(|e| e.id() == id).copied()
}

/// Run one experiment under the observability layer and package the
/// outcome as a [`RunRecord`], with the default thread budget.
#[must_use]
pub fn run_record(exp: &dyn Experiment, scale: Scale) -> RunRecord {
    run_record_ctx(exp, ExpCtx::new(scale))
}

/// As [`run_record`], with an explicit execution context. The worker
/// counters of the experiment's trial fan-out fold into this recording
/// (per-trial sums), so the record's counters are thread-count
/// independent.
#[must_use]
pub fn run_record_ctx(exp: &dyn Experiment, ctx: ExpCtx) -> RunRecord {
    // cadapt-lint: allow(nondet-source) -- wall clock feeds only the wall_ms field, which golden comparison explicitly ignores (see check::wall_time_is_not_compared)
    let clock = Instant::now();
    let recording = Recording::start();
    let output = exp.run(ctx);
    let counters = recording.finish();
    RunRecord {
        schema_version: SCHEMA_VERSION,
        experiment: exp.id().to_string(),
        title: exp.title().to_string(),
        scale: ctx.scale.name().to_string(),
        deterministic: exp.deterministic(),
        wall_ms: clock.elapsed().as_secs_f64() * 1e3,
        counters,
        metrics: output.metrics,
        tables: output.tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        let distinct: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(ids.len(), distinct.len(), "duplicate registry id");
        for k in 1..=13 {
            assert!(distinct.contains(format!("e{k}").as_str()), "missing e{k}");
        }
        assert!(distinct.contains("ablations"));
    }

    #[test]
    fn find_resolves_ids() {
        assert_eq!(find("e1").unwrap().id(), "e1");
        assert!(find("e99").is_none());
    }

    #[test]
    fn deterministic_run_records_reproduce_and_count() {
        let exp = find("e1").unwrap();
        assert!(exp.deterministic());
        let first = run_record(exp, Scale::Quick);
        let second = run_record(exp, Scale::Quick);
        assert!(!first.metrics.is_empty());
        assert!(!first.tables.is_empty());
        assert!(
            first.counters.boxes_advanced > 0,
            "the recording must see the execution: {:?}",
            first.counters
        );
        let report = compare(&first, &second);
        assert!(
            report.passed(),
            "self-comparison failed: {:?}",
            report.failures
        );
    }

    #[test]
    fn run_record_round_trips_through_json() {
        let exp = find("e11").unwrap();
        let record = run_record(exp, Scale::Quick);
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert!(compare(&record, &back).passed());
        assert_eq!(record.counters, back.counters);
    }

    #[test]
    fn tampered_golden_fails_the_check() {
        let exp = find("e11").unwrap();
        let golden = run_record(exp, Scale::Quick);
        let mut fresh = golden.clone();
        fresh.metrics[0].value += 1.0;
        assert!(!compare(&golden, &fresh).passed());
    }
}
