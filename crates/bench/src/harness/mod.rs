//! # The experiment engine
//!
//! One registry, one runner, one on-disk format — the machinery behind the
//! `cadapt-bench` binary. Every experiment module implements [`Experiment`]
//! (id, title, determinism, and a fallible `run` producing metrics +
//! rendered tables); [`run_record`] executes one under a counter
//! [`Recording`] and a wall clock and packages the outcome as a
//! schema-versioned [`RunRecord`]; [`check::compare`] diffs a fresh record
//! against a committed golden under explicit tolerance bands.
//!
//! Determinism contract: every experiment routes its trial fan-out through
//! `cadapt_analysis::parallel`, whose trial-ordered reduction makes results
//! bit-identical at any thread count (the [`ExpCtx`] thread budget only
//! moves wall time). An experiment declares itself `deterministic` only if
//! a re-run in any environment reproduces every metric bit-for-bit; the
//! Monte-Carlo experiments (e2, e6, ablations) keep `deterministic =
//! false` and are compared by CI overlap instead, so their committed
//! goldens stay robust to retunings of trial counts and sweeps.
//!
//! Failure contract: experiments return typed [`BenchError`]s instead of
//! panicking, and [`run_record_resilient`] additionally contains anything
//! that *does* panic — a failing experiment degrades to a partial record
//! marked `complete: false` (which `check` rejects and `--resume`
//! re-runs) instead of taking down the suite.

pub mod check;
pub mod checkpoint;
pub mod record;
pub mod store;

pub use check::{compare, CheckReport};
pub use record::{
    class_code, metric, metric_ci, push_series, Metric, RecordError, RunRecord, SCHEMA_VERSION,
};
pub use store::{ArtifactWriter, FsWriter, StoreError};

use crate::error::BenchError;
use crate::experiments::{
    ablations, e10_contention, e11_no_catchup, e12_scan_hiding, e13_scheduling, e14_analytic_scale,
    e15_bytecode_scale, e16_streaming_contention, e1_worst_case_gap, e2_iid_smoothing,
    e3_size_perturb, e4_start_shift, e5_box_order, e6_recurrence, e7_potential,
    e8_trace_validation, e9_taxonomy,
};
use crate::{ExpCtx, Scale};
use cadapt_core::counters::Recording;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// What an experiment hands back to the engine: extracted scalars plus the
/// rendered tables the old per-experiment binaries used to print.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Named scalars for golden comparison.
    pub metrics: Vec<Metric>,
    /// Rendered tables (printed by `run`, stored for reference).
    pub tables: Vec<String>,
}

/// A registered experiment.
pub trait Experiment: Sync {
    /// Stable registry id (`"e1"` … `"e16"`, `"ablations"`).
    fn id(&self) -> &'static str;
    /// One-line human title.
    fn title(&self) -> &'static str;
    /// Is a re-run bit-identical? (See the module docs for the contract.)
    fn deterministic(&self) -> bool;
    /// Execute under the given context (scale + trial-worker budget).
    ///
    /// # Errors
    ///
    /// Returns a typed [`BenchError`] instead of panicking; the engine
    /// turns it into a partial record or a process exit code.
    fn run(&self, ctx: ExpCtx) -> Result<ExperimentOutput, BenchError>;
}

/// Every experiment, in presentation order.
#[must_use]
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 17] = [
        &e1_worst_case_gap::Exp,
        &e2_iid_smoothing::Exp,
        &e3_size_perturb::Exp,
        &e4_start_shift::Exp,
        &e5_box_order::Exp,
        &e6_recurrence::Exp,
        &e7_potential::Exp,
        &e8_trace_validation::Exp,
        &e9_taxonomy::Exp,
        &e10_contention::Exp,
        &e11_no_catchup::Exp,
        &e12_scan_hiding::Exp,
        &e13_scheduling::Exp,
        &e14_analytic_scale::Exp,
        &e15_bytecode_scale::Exp,
        &e16_streaming_contention::Exp,
        &ablations::Exp,
    ];
    &REGISTRY
}

/// Look up an experiment by registry id.
#[must_use]
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().find(|e| e.id() == id).copied()
}

/// Run one experiment under the observability layer and package the
/// outcome as a [`RunRecord`], with the default thread budget.
///
/// # Errors
///
/// Propagates the experiment's [`BenchError`].
pub fn run_record(exp: &dyn Experiment, scale: Scale) -> Result<RunRecord, BenchError> {
    run_record_ctx(exp, ExpCtx::new(scale))
}

/// As [`run_record`], with an explicit execution context. The worker
/// counters of the experiment's trial fan-out fold into this recording
/// (per-trial sums), so the record's counters are thread-count
/// independent.
///
/// # Errors
///
/// Propagates the experiment's [`BenchError`].
pub fn run_record_ctx(exp: &dyn Experiment, ctx: ExpCtx) -> Result<RunRecord, BenchError> {
    // cadapt-lint: allow(nondet-source) -- wall clock feeds only the wall_ms field, which golden comparison explicitly ignores (see check::wall_time_is_not_compared)
    let clock = Instant::now();
    let scale = ctx.scale;
    let recording = Recording::start();
    let outcome = exp.run(ctx);
    let counters = recording.finish();
    let output = outcome?;
    Ok(RunRecord {
        schema_version: SCHEMA_VERSION,
        experiment: exp.id().to_string(),
        title: exp.title().to_string(),
        scale: scale.name().to_string(),
        deterministic: exp.deterministic(),
        wall_ms: clock.elapsed().as_secs_f64() * 1e3,
        counters,
        metrics: output.metrics,
        tables: output.tables,
        complete: true,
    })
}

/// Run one experiment, containing **any** failure — a typed error or an
/// outright panic — as a partial record instead of letting it escape.
///
/// On failure the returned record is marked `complete: false`, carries no
/// metrics, and stores the failure text as its only table; the error
/// itself rides alongside so the caller can report it and choose an exit
/// code. `check` rejects incomplete records and `--resume` re-runs them,
/// so a degraded record can never silently stand in for a healthy one.
#[must_use]
pub fn run_record_resilient(exp: &dyn Experiment, ctx: ExpCtx) -> (RunRecord, Option<BenchError>) {
    // cadapt-lint: allow(nondet-source) -- wall clock feeds only the wall_ms field, which golden comparison explicitly ignores
    let clock = Instant::now();
    let scale = ctx.scale;
    let recording = Recording::start();
    // AssertUnwindSafe: the experiment only borrows Sync registry state;
    // a panicking run's partial work is dropped with its stack, and the
    // counter cells stay internally consistent (plain thread-local adds).
    let outcome = catch_unwind(AssertUnwindSafe(|| exp.run(ctx)));
    let counters = recording.finish();
    let failure = match outcome {
        Ok(Ok(output)) => {
            return (
                RunRecord {
                    schema_version: SCHEMA_VERSION,
                    experiment: exp.id().to_string(),
                    title: exp.title().to_string(),
                    scale: scale.name().to_string(),
                    deterministic: exp.deterministic(),
                    wall_ms: clock.elapsed().as_secs_f64() * 1e3,
                    counters,
                    metrics: output.metrics,
                    tables: output.tables,
                    complete: true,
                },
                None,
            )
        }
        Ok(Err(error)) => error,
        Err(payload) => BenchError::Panicked {
            context: format!("experiment {}", exp.id()),
            trial: None,
            message: panic_text(payload.as_ref()),
        },
    };
    let record = RunRecord {
        schema_version: SCHEMA_VERSION,
        experiment: exp.id().to_string(),
        title: exp.title().to_string(),
        scale: scale.name().to_string(),
        deterministic: exp.deterministic(),
        wall_ms: clock.elapsed().as_secs_f64() * 1e3,
        counters,
        metrics: Vec::new(),
        tables: vec![format!("experiment {} FAILED: {failure}\n", exp.id())],
        complete: false,
    };
    (record, Some(failure))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        let distinct: BTreeSet<&str> = ids.iter().copied().collect();
        assert_eq!(ids.len(), distinct.len(), "duplicate registry id");
        for k in 1..=16 {
            assert!(distinct.contains(format!("e{k}").as_str()), "missing e{k}");
        }
        assert!(distinct.contains("ablations"));
    }

    #[test]
    fn find_resolves_ids() {
        assert_eq!(find("e1").unwrap().id(), "e1");
        assert!(find("e99").is_none());
    }

    #[test]
    fn deterministic_run_records_reproduce_and_count() {
        let exp = find("e1").unwrap();
        assert!(exp.deterministic());
        let first = run_record(exp, Scale::Quick).unwrap();
        let second = run_record(exp, Scale::Quick).unwrap();
        assert!(!first.metrics.is_empty());
        assert!(!first.tables.is_empty());
        assert!(first.complete);
        assert!(
            first.counters.boxes_advanced > 0,
            "the recording must see the execution: {:?}",
            first.counters
        );
        let report = compare(&first, &second);
        assert!(
            report.passed(),
            "self-comparison failed: {:?}",
            report.failures
        );
    }

    #[test]
    fn run_record_round_trips_through_json() {
        let exp = find("e11").unwrap();
        let record = run_record(exp, Scale::Quick).unwrap();
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert!(compare(&record, &back).passed());
        assert_eq!(record.counters, back.counters);
    }

    #[test]
    fn tampered_golden_fails_the_check() {
        let exp = find("e11").unwrap();
        let golden = run_record(exp, Scale::Quick).unwrap();
        let mut fresh = golden.clone();
        fresh.metrics[0].value += 1.0;
        assert!(!compare(&golden, &fresh).passed());
    }

    struct Explosive {
        kind: &'static str,
    }

    impl Experiment for Explosive {
        fn id(&self) -> &'static str {
            "explosive"
        }
        fn title(&self) -> &'static str {
            "always fails"
        }
        fn deterministic(&self) -> bool {
            true
        }
        fn run(&self, _ctx: ExpCtx) -> Result<ExperimentOutput, BenchError> {
            match self.kind {
                "panic" => panic!("injected experiment panic"),
                _ => Err(BenchError::invariant("injected typed failure")),
            }
        }
    }

    #[test]
    fn resilient_runner_contains_panics_as_partial_records() {
        let (record, failure) =
            run_record_resilient(&Explosive { kind: "panic" }, ExpCtx::new(Scale::Quick));
        assert!(!record.complete);
        assert!(record.metrics.is_empty());
        assert!(record.tables[0].contains("injected experiment panic"));
        match failure {
            Some(BenchError::Panicked {
                context, message, ..
            }) => {
                assert_eq!(context, "experiment explosive");
                assert!(message.contains("injected"));
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
        // The partial record must round-trip and must NOT pass a check
        // against a healthy golden.
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert!(!back.complete);
    }

    #[test]
    fn resilient_runner_passes_through_typed_errors() {
        let (record, failure) =
            run_record_resilient(&Explosive { kind: "typed" }, ExpCtx::new(Scale::Quick));
        assert!(!record.complete);
        assert!(matches!(failure, Some(BenchError::Invariant { .. })));
    }

    #[test]
    fn resilient_runner_is_transparent_for_healthy_experiments() {
        let exp = find("e11").unwrap();
        let (resilient, failure) = run_record_resilient(exp, ExpCtx::new(Scale::Quick));
        assert!(failure.is_none());
        assert!(resilient.complete);
        let direct = run_record(exp, Scale::Quick).unwrap();
        assert!(compare(&direct, &resilient).passed());
    }
}
