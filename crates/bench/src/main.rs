//! `cadapt-bench` — the one CLI in front of every experiment.
//!
//! ```text
//! cadapt-bench list
//! cadapt-bench run    [--exp e1,e2,…] [--size quick|full] [--threads N] [--out DIR]
//!                     [--checkpoint-every N] [--resume] [--cancel-after MS]
//! cadapt-bench check  [--exp e1,e2,…] [--size quick|full] [--threads N] [--golden DIR]
//! cadapt-bench perf   [--size quick|full] [--out FILE]
//! cadapt-bench faults [--target engine|serve] [--seed N] [--cases N] [--out FILE]
//! cadapt-bench serve  --journal DIR [--addr A] [--workers N] [--queue-cap N]
//!                     [--health-exp ID|none] [--golden DIR]
//! cadapt-bench request --addr HOST:PORT --line JSON [--line JSON…]
//! ```
//!
//! `run` executes the selected experiments (all, by default) through the
//! registry, prints their tables, and — with `--out` — writes one
//! schema-versioned JSON run record per experiment, atomically (tmp +
//! rename). A failing experiment no longer takes the suite down: its
//! record is written with `"complete": false` and the failure text as its
//! only table, the remaining experiments still run, and the process exit
//! code reports the first failure. Regenerate the goldens with
//! `cadapt-bench run --size quick --out tests/golden`.
//!
//! `--checkpoint-every N` keeps a checksummed `MANIFEST.json` next to the
//! records, flushed after every N completed experiments; `--resume`
//! (which implies checkpointing) verifies the manifest and every record
//! it vouches for, reuses the verified ones byte-for-byte, and re-runs
//! the rest. Checkpointed records canonicalize `wall_ms` to 0 so a killed
//! and resumed run's final records are **byte-identical** to an
//! uninterrupted checkpointed run's. Both flags require `--out`.
//!
//! `--cancel-after MS` arms a watcher thread that fires the run's
//! cooperative [`CancelToken`](cadapt_core::CancelToken) after MS
//! milliseconds (0 fires it before any experiment starts). Cursor-driven
//! experiments observe the token between runs and stop with the typed
//! `cancelled after N boxes` outcome (exit code 6); completed records
//! already persisted stay valid, so a cancelled checkpointed run resumes
//! with `--resume` and finishes byte-identical to an uninterrupted one.
//!
//! `check` re-runs the selected experiments and compares each against the
//! committed record in the golden directory (default `tests/golden`) under
//! the tolerance bands of `cadapt_bench::harness::check`. A missing or
//! malformed golden is a typed error naming the file and the exact
//! command that regenerates it (exit 4); a mismatch exits 1.
//!
//! `run` and `check` shard the selected experiments over a work-stealing
//! pool and split the `--threads` budget between experiment shards and
//! each experiment's internal trial fan-out. Stdout is buffered and
//! printed in registry order, and every record is bit-identical at any
//! thread count (the engine's determinism contract), so `--threads` only
//! moves wall time.
//!
//! `perf` times the per-box baseline against the run-length fast path,
//! the streaming cursors against the batched drivers, and the experiment
//! engine's thread-scaling ladder, and writes the suite record (default
//! `BENCH_9.json`; `--out` overrides the file).
//!
//! `faults` runs the deterministic fault-injection harness: `--cases`
//! fault plans expanded from `--seed`, each attacking the engine's
//! isolation, atomicity, and checksum guarantees (`--target engine`, the
//! default) or the job service's crash-recovery guarantees — torn
//! journal tails, sealed-segment corruption, kills between `Started` and
//! `Finished`, keyed double-submits across restarts (`--target serve`).
//! The report (default `FAULTS.json` / `FAULTS_SERVE.json`, a checksummed
//! envelope) is a pure function of the seed. Silent corruption — a
//! verifying artifact with wrong contents, or a recovered result whose
//! bytes drifted — aborts the suite with a typed error.
//!
//! `serve` runs the `cadapt-serve` daemon: NDJSON over TCP, jobs
//! journaled to `--journal DIR` before they run, recovery on restart.
//! The bound address is printed as the first stdout line
//! (`cadapt-serve listening on <addr>`) so scripts can drive it; the
//! process blocks until a client sends `drain`. Unless `--health-exp
//! none`, the daemon's `health` op re-runs one quick experiment (default
//! `e1`) and diffs it against the golden in `--golden DIR`: a mismatch
//! reports `"status":"degraded"` — degraded, not dead.
//!
//! `request` is the thin client: it sends each `--line` to `--addr` on
//! one connection and prints one response line per request.
//!
//! `--quick` is shorthand for `--size quick` on every command.
//!
//! Exit codes (see DESIGN.md's failure model): 0 success, 1 semantic
//! failure (experiment error, check mismatch), 2 usage, 3 filesystem,
//! 4 untrusted data (corrupt artifact, bad golden, unusable checkpoint),
//! 5 isolated panic, 6 cooperative cancellation, 7 job-service failure
//! (daemon, protocol, or journal).

use cadapt_analysis::parallel::{resolve_threads, run_indexed};

/// With `count-alloc`, every allocation in this process is metered so the
/// perf suite can assert the streaming pipelines' flat peak memory.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: cadapt_bench::alloc_meter::CountingAlloc = cadapt_bench::alloc_meter::CountingAlloc;
use cadapt_bench::faults;
use cadapt_bench::harness::checkpoint::{self, Checkpointer, Recovered};
use cadapt_bench::harness::store::{self, ArtifactWriter, FsWriter};
use cadapt_bench::harness::{self, CheckReport, RunRecord};
use cadapt_bench::serve_faults;
use cadapt_bench::{BenchError, ExpCtx, Scale};
use cadapt_core::cast;
use cadapt_serve::{Daemon, DaemonConfig, HealthReport};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cadapt-bench <command> [options]

commands:
  list                     print the experiment registry
  run                      run experiments and print their tables
  check                    re-run experiments and diff against goldens
  perf                     time per-box baseline vs the run-length fast path
  faults                   attack the engine or the job service with
                           deterministic fault injection
  serve                    run the crash-safe job daemon (blocks until drained)
  request                  send NDJSON request lines to a running daemon

options:
  --exp ID[,ID…]           experiments to touch (default: all)
  --size quick|full        scale (default: full for run/perf, quick for check)
  --quick                  shorthand for --size quick
  --threads N              worker-thread budget for run/check sharding and
                           trial fan-out (0 = available parallelism; results
                           are bit-identical at any N)
  --out PATH               run: directory for per-experiment JSON records
                           perf: output file (default BENCH_9.json)
                           faults: report file (default FAULTS.json)
  --golden DIR             check only: golden directory (default tests/golden)
  --checkpoint-every N     run only: flush a crash-safe MANIFEST.json every N
                           completed experiments (requires --out)
  --resume                 run only: reuse verified records from a previous
                           checkpointed run in --out; implies checkpointing
  --cancel-after MS        run only: fire the cooperative cancel token after
                           MS milliseconds (0 = before any experiment);
                           cancelled runs exit 6 and resume cleanly
  --seed N                 faults only: suite seed (default 7)
  --cases N                faults only: fault plans to run (default 16)
  --target engine|serve    faults only: what to attack (default engine)
  --journal DIR            serve only: write-ahead journal directory (required)
  --addr HOST:PORT         serve: bind address (default 127.0.0.1:0)
                           request: daemon address (required)
  --workers N              serve only: job worker threads (default 2)
  --queue-cap N            serve only: admission queue capacity (default 64)
  --health-exp ID|none     serve only: experiment behind the health op's
                           golden self-check (default e1; none disables)
  --line JSON              request only: one request line (repeatable)
";

struct Options {
    ids: Vec<String>,
    scale: Option<Scale>,
    threads: usize,
    out: Option<PathBuf>,
    golden: PathBuf,
    checkpoint_every: Option<u64>,
    resume: bool,
    cancel_after_ms: Option<u64>,
    seed: u64,
    cases: u64,
    target: String,
    journal: Option<PathBuf>,
    addr: Option<String>,
    workers: usize,
    queue_cap: usize,
    health_exp: String,
    lines: Vec<String>,
}

fn usage_err(message: impl Into<String>) -> BenchError {
    BenchError::Usage(message.into())
}

fn parse_options(args: &[String]) -> Result<Options, BenchError> {
    let mut options = Options {
        ids: Vec::new(),
        scale: None,
        threads: 0,
        out: None,
        golden: PathBuf::from("tests/golden"),
        checkpoint_every: None,
        resume: false,
        cancel_after_ms: None,
        seed: 7,
        cases: 16,
        target: "engine".to_string(),
        journal: None,
        addr: None,
        workers: 2,
        queue_cap: 64,
        health_exp: "e1".to_string(),
        lines: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| usage_err(format!("{name} needs a value")))
        };
        let number = |name: &str, text: &str| {
            text.parse::<u64>()
                .map_err(|_| usage_err(format!("{name} needs a number, got {text:?}")))
        };
        match flag.as_str() {
            "--exp" => options.ids = value("--exp")?.split(',').map(str::to_string).collect(),
            "--size" => {
                let name = value("--size")?;
                options.scale = Some(
                    Scale::parse(&name)
                        .ok_or_else(|| usage_err(format!("unknown size {name:?}")))?,
                );
            }
            "--quick" => options.scale = Some(Scale::Quick),
            "--threads" => {
                let text = value("--threads")?;
                options.threads = cast::checked_usize_from_u64(number("--threads", &text)?)
                    .ok_or_else(|| usage_err(format!("--threads {text} does not fit this host")))?;
            }
            "--out" => options.out = Some(PathBuf::from(value("--out")?)),
            "--golden" => options.golden = PathBuf::from(value("--golden")?),
            "--checkpoint-every" => {
                let text = value("--checkpoint-every")?;
                let every = number("--checkpoint-every", &text)?;
                if every == 0 {
                    return Err(usage_err("--checkpoint-every must be at least 1"));
                }
                options.checkpoint_every = Some(every);
            }
            "--resume" => options.resume = true,
            "--cancel-after" => {
                let text = value("--cancel-after")?;
                options.cancel_after_ms = Some(number("--cancel-after", &text)?);
            }
            "--seed" => {
                let text = value("--seed")?;
                options.seed = number("--seed", &text)?;
            }
            "--cases" => {
                let text = value("--cases")?;
                options.cases = number("--cases", &text)?;
            }
            "--target" => {
                let name = value("--target")?;
                if name != "engine" && name != "serve" {
                    return Err(usage_err(format!(
                        "--target must be engine or serve, got {name:?}"
                    )));
                }
                options.target = name;
            }
            "--journal" => options.journal = Some(PathBuf::from(value("--journal")?)),
            "--addr" => options.addr = Some(value("--addr")?),
            "--workers" => {
                let text = value("--workers")?;
                options.workers = cast::checked_usize_from_u64(number("--workers", &text)?)
                    .ok_or_else(|| usage_err(format!("--workers {text} does not fit this host")))?;
            }
            "--queue-cap" => {
                let text = value("--queue-cap")?;
                options.queue_cap = cast::checked_usize_from_u64(number("--queue-cap", &text)?)
                    .ok_or_else(|| {
                        usage_err(format!("--queue-cap {text} does not fit this host"))
                    })?;
            }
            "--health-exp" => options.health_exp = value("--health-exp")?,
            "--line" => options.lines.push(value("--line")?),
            other => return Err(usage_err(format!("unknown option {other:?}"))),
        }
    }
    Ok(options)
}

/// Resolve the requested ids against the registry, defaulting to all.
fn select(ids: &[String]) -> Result<Vec<&'static dyn harness::Experiment>, BenchError> {
    if ids.is_empty() {
        return Ok(harness::registry().to_vec());
    }
    ids.iter()
        .map(|id| harness::find(id).ok_or_else(|| usage_err(format!("unknown experiment {id:?}"))))
        .collect()
}

fn cmd_list() {
    for exp in harness::registry() {
        println!(
            "{:<10} {} {}",
            exp.id(),
            if exp.deterministic() {
                "[exact]"
            } else {
                "[monte-carlo]"
            },
            exp.title()
        );
    }
}

/// Split the thread budget between experiment shards and each shard's
/// internal trial fan-out. The plan only moves wall time: every record is
/// bit-identical regardless of how the budget is split.
fn shard_plan(requested: usize, jobs: usize) -> (usize, usize) {
    let total = resolve_threads(requested);
    let shards = total.min(jobs).max(1);
    let inner = (total / shards).max(1);
    (shards, inner)
}

/// One job's outcome on the run fan-out: the record (possibly partial)
/// and the first error it hit — from the experiment itself or from
/// persisting its artifacts.
struct JobOutcome {
    record: RunRecord,
    error: Option<BenchError>,
}

/// Execute (or reuse) one run job, persisting its record and checkpoint
/// entry. Never panics out of the shard pool: every failure lands in the
/// returned [`JobOutcome`].
fn run_job(
    job: usize,
    exp: &dyn harness::Experiment,
    base_ctx: &ExpCtx,
    out: Option<&Path>,
    ckpt: Option<&Checkpointer>,
    recovered: &Recovered,
) -> JobOutcome {
    let job_index = cast::u64_from_usize(job);
    if let Some((record, _text)) = recovered.get(&job_index) {
        eprintln!(
            "[cadapt-bench] {} reused from checkpoint (verified)",
            exp.id()
        );
        return JobOutcome {
            record: record.clone(),
            error: None,
        };
    }
    eprintln!(
        "[cadapt-bench] running {} ({})…",
        exp.id(),
        base_ctx.scale.name()
    );
    let (mut record, mut error) = harness::run_record_resilient(exp, base_ctx.clone());
    if ckpt.is_some() {
        // Checkpointed runs canonicalize the one wall-clock-smeared field
        // so a killed-and-resumed run is byte-identical to an
        // uninterrupted one.
        record.wall_ms = 0.0;
    }
    match &error {
        None => eprintln!(
            "[cadapt-bench] {} finished in {:.0} ms ({} metrics, {} boxes advanced)",
            record.experiment,
            record.wall_ms,
            record.metrics.len(),
            record.counters.boxes_advanced
        ),
        Some(e) => eprintln!("[cadapt-bench] {} FAILED: {e}", record.experiment),
    }
    if let Some(dir) = out {
        let path = dir.join(format!("{}.json", record.experiment));
        let text = record.to_json();
        let persisted = FsWriter
            .persist(&path, &text)
            .map_err(BenchError::from)
            .and_then(|()| {
                eprintln!("[cadapt-bench] wrote {}", path.display());
                if let (Some(ckpt), true) = (ckpt, record.complete) {
                    ckpt.mark_done(&FsWriter, job_index, &record.experiment, &text)?;
                }
                Ok(())
            });
        if let Err(e) = persisted {
            error.get_or_insert(e);
        }
    }
    JobOutcome { record, error }
}

fn cmd_run(options: &Options) -> Result<(), BenchError> {
    let scale = options.scale.unwrap_or(Scale::Full);
    let experiments = select(&options.ids)?;
    let checkpointing = options.checkpoint_every.is_some() || options.resume;
    let out = options.out.as_deref();
    if checkpointing && out.is_none() {
        return Err(usage_err(
            "--checkpoint-every/--resume need --out DIR to persist into",
        ));
    }
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).map_err(|e| BenchError::io("create", dir, &e))?;
    }
    let ids: Vec<String> = experiments.iter().map(|e| e.id().to_string()).collect();
    let recovered = match (options.resume, out) {
        (true, Some(dir)) => checkpoint::resume(dir, scale.name(), &ids)?,
        _ => Recovered::new(),
    };
    if options.resume {
        eprintln!(
            "[cadapt-bench] resume: {} of {} experiments verified and reused",
            recovered.len(),
            ids.len()
        );
    }
    let ckpt = match (checkpointing, out) {
        (true, Some(dir)) => {
            let ckpt = Checkpointer::new(
                dir,
                scale.name(),
                ids.clone(),
                options.checkpoint_every.unwrap_or(1),
            );
            ckpt.preload(&recovered);
            Some(ckpt)
        }
        _ => None,
    };
    let (shards, inner) = shard_plan(options.threads, experiments.len());
    // One token for the whole run. The watcher fires it from its own
    // thread; cursor-driven experiments observe it between runs and stop
    // with the typed outcome. MS = 0 fires inline so tests get a
    // deterministic "cancelled before the first box" ordering.
    let cancel = cadapt_core::CancelToken::new();
    if let Some(ms) = options.cancel_after_ms {
        if ms == 0 {
            cancel.cancel();
        } else {
            let token = cancel.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                token.cancel();
            });
        }
        eprintln!("[cadapt-bench] cancellation watcher armed: {ms} ms");
    }
    // Tables are buffered in the records and printed in registry order
    // after the fan-out, so sharding never interleaves stdout. Each job
    // persists its own record the moment it completes — a kill mid-suite
    // loses at most the in-flight experiments.
    let base_ctx = ExpCtx::with_threads(scale, inner).with_cancel(cancel.clone());
    let outcomes: Vec<JobOutcome> = run_indexed(experiments.len(), shards, |i| {
        run_job(i, experiments[i], &base_ctx, out, ckpt.as_ref(), &recovered)
    });
    if let Some(ckpt) = &ckpt {
        ckpt.flush(&FsWriter)?;
    }
    let mut first_error = None;
    for outcome in outcomes {
        for table in &outcome.record.tables {
            print!("{table}");
            println!();
        }
        if let Some(e) = outcome.error {
            first_error.get_or_insert(e);
        }
    }
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Load one golden record, mapping every failure to a [`BenchError::Golden`]
/// that names the file and the command that regenerates it.
fn load_golden(dir: &Path, id: &str) -> Result<RunRecord, BenchError> {
    let path = dir.join(format!("{id}.json"));
    let golden = |detail: String| BenchError::Golden {
        id: id.to_string(),
        path: path.clone(),
        detail,
    };
    let text =
        std::fs::read_to_string(&path).map_err(|e| golden(format!("cannot read it: {e}")))?;
    let record = RunRecord::from_json(&text).map_err(|e| golden(e.to_string()))?;
    if record.experiment != id {
        return Err(golden(format!(
            "file claims to be a record for {:?}",
            record.experiment
        )));
    }
    Ok(record)
}

fn cmd_check(options: &Options) -> Result<bool, BenchError> {
    let scale = options.scale.unwrap_or(Scale::Quick);
    let experiments = select(&options.ids)?;
    // Load every golden up front so a missing file fails before any work.
    let goldens = experiments
        .iter()
        .map(|exp| load_golden(&options.golden, exp.id()))
        .collect::<Result<Vec<_>, _>>()?;
    let (shards, inner) = shard_plan(options.threads, experiments.len());
    let reports: Vec<CheckReport> = run_indexed(experiments.len(), shards, |i| {
        let exp = experiments[i];
        eprintln!("[cadapt-bench] checking {} ({})…", exp.id(), scale.name());
        // Resilient: a crashing experiment yields an incomplete record,
        // which compare() reports as a failure for that experiment while
        // the other checks still run.
        let (fresh, _error) =
            harness::run_record_resilient(exp, ExpCtx::with_threads(scale, inner));
        harness::compare(&goldens[i], &fresh)
    });
    let mut all_passed = true;
    for report in &reports {
        if report.passed() {
            println!("PASS {}", report.experiment);
        } else {
            all_passed = false;
            println!("FAIL {}", report.experiment);
            for failure in &report.failures {
                println!("  {failure}");
            }
        }
    }
    Ok(all_passed)
}

fn cmd_perf(options: &Options) -> Result<(), BenchError> {
    let scale = options.scale.unwrap_or(Scale::Full);
    eprintln!(
        "[cadapt-bench] timing per-box vs batched ({})…",
        scale.name()
    );
    let suite = cadapt_bench::perf::run(scale)?;
    print!("{}", suite.table());
    let path = options
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_9.json"));
    FsWriter.persist(&path, &suite.to_json())?;
    eprintln!("[cadapt-bench] wrote {}", path.display());
    Ok(())
}

fn cmd_faults(options: &Options) -> Result<(), BenchError> {
    if options.target == "serve" {
        return cmd_faults_serve(options);
    }
    let seed = options.seed;
    let scratch = faults::scratch_dir(seed);
    eprintln!(
        "[cadapt-bench] injecting faults: seed {seed}, {} cases (scratch {})…",
        options.cases,
        scratch.display()
    );
    let report = faults::run_suite(seed, options.cases, &scratch)?;
    println!(
        "fault suite: seed {seed}, {} cases, {} recovered, {} clean failures, 0 silent corruptions",
        report.cases.len(),
        report.recovered(),
        report.cases.len() - report.recovered()
    );
    let path = options
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("FAULTS.json"));
    store::write_envelope(&FsWriter, &path, &report.to_payload())?;
    eprintln!("[cadapt-bench] wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}

fn cmd_faults_serve(options: &Options) -> Result<(), BenchError> {
    let seed = options.seed;
    let scratch = serve_faults::scratch_dir(seed);
    eprintln!(
        "[cadapt-bench] attacking the job service: seed {seed}, {} cases (scratch {})…",
        options.cases,
        scratch.display()
    );
    let report = serve_faults::run_suite(seed, options.cases, &scratch)?;
    println!(
        "serve fault suite: seed {seed}, {} cases, {} recovered, {} clean failures, 0 silent corruptions",
        report.cases.len(),
        report.recovered(),
        report.cases.len() - report.recovered()
    );
    let path = options
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("FAULTS_SERVE.json"));
    store::write_envelope(&FsWriter, &path, &report.to_payload())?;
    eprintln!("[cadapt-bench] wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}

/// Build the `health`-op self-check: re-run one quick experiment and
/// diff it against its golden. A failing golden makes the daemon report
/// `degraded` — it keeps serving jobs either way.
fn health_hook(exp_id: &str, golden: PathBuf) -> Result<cadapt_serve::HealthHook, BenchError> {
    let exp = harness::find(exp_id)
        .ok_or_else(|| usage_err(format!("unknown experiment {exp_id:?} for --health-exp")))?;
    let id = exp_id.to_string();
    Ok(Box::new(move || {
        let golden_record = match load_golden(&golden, &id) {
            Ok(record) => record,
            Err(e) => {
                return HealthReport {
                    degraded: true,
                    detail: format!("golden self-check unavailable: {e}"),
                }
            }
        };
        let (fresh, _error) = harness::run_record_resilient(exp, ExpCtx::new(Scale::Quick));
        let report = harness::compare(&golden_record, &fresh);
        if report.passed() {
            HealthReport {
                degraded: false,
                detail: format!("golden self-check passed ({id}, quick)"),
            }
        } else {
            HealthReport {
                degraded: true,
                detail: format!(
                    "golden self-check FAILED ({id}, quick): {}",
                    report.failures.join("; ")
                ),
            }
        }
    }))
}

fn cmd_serve(options: &Options) -> Result<(), BenchError> {
    let Some(journal) = options.journal.clone() else {
        return Err(usage_err(
            "serve needs --journal DIR for the write-ahead journal",
        ));
    };
    let mut config = DaemonConfig::new(journal);
    if let Some(addr) = &options.addr {
        config.addr = addr.clone();
    }
    config.workers = options.workers.max(1);
    config.queue_cap = options.queue_cap.max(1);
    if options.health_exp != "none" {
        config.health_hook = Some(health_hook(&options.health_exp, options.golden.clone())?);
    }
    let daemon = Daemon::bind(config)?;
    let replay = daemon.replay();
    eprintln!(
        "[cadapt-bench] journal replayed: {} events, {} sealed segments, clean shutdown: {}{}",
        replay.events.len(),
        replay.segments,
        replay.clean_shutdown,
        if replay.dropped_torn_tail {
            " (dropped a torn tail line)"
        } else {
            ""
        }
    );
    // Scripts parse this line to learn the resolved port; flush so it is
    // visible before the accept loop blocks.
    println!("cadapt-serve listening on {}", daemon.local_addr());
    let _ = std::io::stdout().flush();
    daemon.run()?;
    eprintln!("[cadapt-bench] drained; journal sealed clean");
    Ok(())
}

fn cmd_request(options: &Options) -> Result<(), BenchError> {
    let Some(addr) = &options.addr else {
        return Err(usage_err("request needs --addr HOST:PORT"));
    };
    if options.lines.is_empty() {
        return Err(usage_err("request needs at least one --line JSON"));
    }
    let responses = cadapt_serve::daemon::request_lines(addr, &options.lines)?;
    for response in responses {
        println!("{response}");
    }
    Ok(())
}

/// Dispatch; `Ok(false)` is a check mismatch (exit 1 without an error
/// message — the report already went to stdout).
fn dispatch(command: &str, options: &Options) -> Result<bool, BenchError> {
    match command {
        "list" => {
            cmd_list();
            Ok(true)
        }
        "run" => cmd_run(options).map(|()| true),
        "check" => cmd_check(options),
        "perf" => cmd_perf(options).map(|()| true),
        "faults" => cmd_faults(options).map(|()| true),
        "serve" => cmd_serve(options).map(|()| true),
        "request" => cmd_request(options).map(|()| true),
        other => Err(usage_err(format!("unknown command {other:?}"))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let outcome = parse_options(rest).and_then(|options| dispatch(command, &options));
    // The one place a BenchError becomes a process exit code.
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("cadapt-bench: {e}");
            if matches!(e, BenchError::Usage(_)) {
                eprint!("{USAGE}");
            }
            ExitCode::from(e.exit_code())
        }
    }
}
