//! `cadapt-bench` — the one CLI in front of every experiment.
//!
//! ```text
//! cadapt-bench list
//! cadapt-bench run   [--exp e1,e2,…] [--size quick|full] [--threads N] [--out DIR]
//! cadapt-bench check [--exp e1,e2,…] [--size quick|full] [--threads N] [--golden DIR]
//! cadapt-bench perf  [--size quick|full] [--out FILE]
//! ```
//!
//! `run` executes the selected experiments (all, by default) through the
//! registry, prints their tables, and — with `--out` — writes one
//! schema-versioned JSON run record per experiment. Regenerate the goldens
//! with `cadapt-bench run --size quick --out tests/golden`.
//!
//! `check` re-runs the selected experiments and compares each against the
//! committed record in the golden directory (default `tests/golden`) under
//! the tolerance bands of `cadapt_bench::harness::check`. Exit status 1 on
//! any mismatch.
//!
//! `run` and `check` shard the selected experiments over a work-stealing
//! pool and split the `--threads` budget between experiment shards and
//! each experiment's internal trial fan-out. Stdout is buffered and
//! printed in registry order, and every record is bit-identical at any
//! thread count (the engine's determinism contract), so `--threads` only
//! moves wall time.
//!
//! `perf` times the per-box baseline against the run-length fast path plus
//! the experiment engine's thread-scaling ladder and writes the suite
//! record (default `BENCH_4.json`; `--out` overrides the file). `--quick`
//! is shorthand for `--size quick` on every command.

use cadapt_analysis::parallel::{resolve_threads, run_indexed};
use cadapt_bench::harness::{self, CheckReport, RunRecord};
use cadapt_bench::{ExpCtx, Scale};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cadapt-bench <command> [options]

commands:
  list                     print the experiment registry
  run                      run experiments and print their tables
  check                    re-run experiments and diff against goldens
  perf                     time per-box baseline vs the run-length fast path

options:
  --exp ID[,ID…]           experiments to touch (default: all)
  --size quick|full        scale (default: full for run/perf, quick for check)
  --quick                  shorthand for --size quick
  --threads N              worker-thread budget for run/check sharding and
                           trial fan-out (0 = available parallelism; results
                           are bit-identical at any N)
  --out PATH               run: directory for per-experiment JSON records
                           perf: output file (default BENCH_4.json)
  --golden DIR             check only: golden directory (default tests/golden)
";

struct Options {
    ids: Vec<String>,
    scale: Option<Scale>,
    threads: usize,
    out: Option<PathBuf>,
    golden: PathBuf,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        ids: Vec::new(),
        scale: None,
        threads: 0,
        out: None,
        golden: PathBuf::from("tests/golden"),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--exp" => options.ids = value("--exp")?.split(',').map(str::to_string).collect(),
            "--size" => {
                let name = value("--size")?;
                options.scale =
                    Some(Scale::parse(&name).ok_or_else(|| format!("unknown size {name:?}"))?);
            }
            "--quick" => options.scale = Some(Scale::Quick),
            "--threads" => {
                let text = value("--threads")?;
                options.threads = text
                    .parse()
                    .map_err(|_| format!("--threads needs a number, got {text:?}"))?;
            }
            "--out" => options.out = Some(PathBuf::from(value("--out")?)),
            "--golden" => options.golden = PathBuf::from(value("--golden")?),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

/// Resolve the requested ids against the registry, defaulting to all.
fn select(ids: &[String]) -> Result<Vec<&'static dyn harness::Experiment>, String> {
    if ids.is_empty() {
        return Ok(harness::registry().to_vec());
    }
    ids.iter()
        .map(|id| harness::find(id).ok_or_else(|| format!("unknown experiment {id:?}")))
        .collect()
}

fn cmd_list() {
    for exp in harness::registry() {
        println!(
            "{:<10} {} {}",
            exp.id(),
            if exp.deterministic() {
                "[exact]"
            } else {
                "[monte-carlo]"
            },
            exp.title()
        );
    }
}

/// Split the thread budget between experiment shards and each shard's
/// internal trial fan-out. The plan only moves wall time: every record is
/// bit-identical regardless of how the budget is split.
fn shard_plan(requested: usize, jobs: usize) -> (usize, usize) {
    let total = resolve_threads(requested);
    let shards = total.min(jobs).max(1);
    let inner = (total / shards).max(1);
    (shards, inner)
}

/// Run every selected experiment on the sharding pool, returning records
/// in registry (input) order.
fn run_sharded(
    experiments: &[&'static dyn harness::Experiment],
    scale: Scale,
    requested_threads: usize,
) -> Vec<RunRecord> {
    let (shards, inner) = shard_plan(requested_threads, experiments.len());
    run_indexed(experiments.len(), shards, |i| {
        let exp = experiments[i];
        eprintln!("[cadapt-bench] running {} ({})…", exp.id(), scale.name());
        let record = harness::run_record_ctx(exp, ExpCtx::with_threads(scale, inner));
        eprintln!(
            "[cadapt-bench] {} finished in {:.0} ms ({} metrics, {} boxes advanced)",
            record.experiment,
            record.wall_ms,
            record.metrics.len(),
            record.counters.boxes_advanced
        );
        record
    })
}

fn cmd_run(options: &Options) -> Result<(), String> {
    let scale = options.scale.unwrap_or(Scale::Full);
    let experiments = select(&options.ids)?;
    if let Some(dir) = &options.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    // Tables are buffered in the records and printed in registry order
    // after the fan-out, so sharding never interleaves stdout.
    for record in run_sharded(&experiments, scale, options.threads) {
        for table in &record.tables {
            print!("{table}");
            println!();
        }
        if let Some(dir) = &options.out {
            let path = dir.join(format!("{}.json", record.experiment));
            std::fs::write(&path, record.to_json())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("[cadapt-bench] wrote {}", path.display());
        }
    }
    Ok(())
}

fn load_golden(dir: &Path, id: &str) -> Result<RunRecord, String> {
    let path = dir.join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading golden {}: {e}", path.display()))?;
    RunRecord::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn cmd_check(options: &Options) -> Result<bool, String> {
    let scale = options.scale.unwrap_or(Scale::Quick);
    let experiments = select(&options.ids)?;
    // Load every golden up front so a missing file fails before any work.
    let goldens = experiments
        .iter()
        .map(|exp| load_golden(&options.golden, exp.id()))
        .collect::<Result<Vec<_>, _>>()?;
    let (shards, inner) = shard_plan(options.threads, experiments.len());
    let reports: Vec<CheckReport> = run_indexed(experiments.len(), shards, |i| {
        let exp = experiments[i];
        eprintln!("[cadapt-bench] checking {} ({})…", exp.id(), scale.name());
        let fresh = harness::run_record_ctx(exp, ExpCtx::with_threads(scale, inner));
        harness::compare(&goldens[i], &fresh)
    });
    let mut all_passed = true;
    for report in &reports {
        if report.passed() {
            println!("PASS {}", report.experiment);
        } else {
            all_passed = false;
            println!("FAIL {}", report.experiment);
            for failure in &report.failures {
                println!("  {failure}");
            }
        }
    }
    Ok(all_passed)
}

fn cmd_perf(options: &Options) -> Result<(), String> {
    let scale = options.scale.unwrap_or(Scale::Full);
    eprintln!(
        "[cadapt-bench] timing per-box vs batched ({})…",
        scale.name()
    );
    let suite = cadapt_bench::perf::run(scale);
    print!("{}", suite.table());
    let path = options
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_4.json"));
    std::fs::write(&path, suite.to_json())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("[cadapt-bench] wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let options = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cadapt-bench: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(true)
        }
        "run" => cmd_run(&options).map(|()| true),
        "check" => cmd_check(&options),
        "perf" => cmd_perf(&options).map(|()| true),
        other => {
            eprintln!("cadapt-bench: unknown command {other:?}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("cadapt-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
