//! `cadapt-bench` — the one CLI in front of every experiment.
//!
//! ```text
//! cadapt-bench list
//! cadapt-bench run   [--exp e1,e2,…] [--size quick|full] [--out DIR]
//! cadapt-bench check [--exp e1,e2,…] [--size quick|full] [--golden DIR]
//! cadapt-bench perf  [--size quick|full] [--out FILE]
//! ```
//!
//! `run` executes the selected experiments (all, by default) through the
//! registry, prints their tables, and — with `--out` — writes one
//! schema-versioned JSON run record per experiment. Regenerate the goldens
//! with `cadapt-bench run --size quick --out tests/golden`.
//!
//! `check` re-runs the selected experiments and compares each against the
//! committed record in the golden directory (default `tests/golden`) under
//! the tolerance bands of `cadapt_bench::harness::check`. Exit status 1 on
//! any mismatch.
//!
//! `perf` times the per-box baseline against the run-length fast path and
//! writes the suite record (default `BENCH_2.json`; `--out` overrides the
//! file). `--quick` is shorthand for `--size quick` on every command.

use cadapt_bench::harness::{self, CheckReport, RunRecord};
use cadapt_bench::Scale;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cadapt-bench <command> [options]

commands:
  list                     print the experiment registry
  run                      run experiments and print their tables
  check                    re-run experiments and diff against goldens
  perf                     time per-box baseline vs the run-length fast path

options:
  --exp ID[,ID…]           experiments to touch (default: all)
  --size quick|full        scale (default: full for run/perf, quick for check)
  --quick                  shorthand for --size quick
  --out PATH               run: directory for per-experiment JSON records
                           perf: output file (default BENCH_2.json)
  --golden DIR             check only: golden directory (default tests/golden)
";

struct Options {
    ids: Vec<String>,
    scale: Option<Scale>,
    out: Option<PathBuf>,
    golden: PathBuf,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        ids: Vec::new(),
        scale: None,
        out: None,
        golden: PathBuf::from("tests/golden"),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--exp" => options.ids = value("--exp")?.split(',').map(str::to_string).collect(),
            "--size" => {
                let name = value("--size")?;
                options.scale =
                    Some(Scale::parse(&name).ok_or_else(|| format!("unknown size {name:?}"))?);
            }
            "--quick" => options.scale = Some(Scale::Quick),
            "--out" => options.out = Some(PathBuf::from(value("--out")?)),
            "--golden" => options.golden = PathBuf::from(value("--golden")?),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

/// Resolve the requested ids against the registry, defaulting to all.
fn select(ids: &[String]) -> Result<Vec<&'static dyn harness::Experiment>, String> {
    if ids.is_empty() {
        return Ok(harness::registry().to_vec());
    }
    ids.iter()
        .map(|id| harness::find(id).ok_or_else(|| format!("unknown experiment {id:?}")))
        .collect()
}

fn cmd_list() {
    for exp in harness::registry() {
        println!(
            "{:<10} {} {}",
            exp.id(),
            if exp.deterministic() {
                "[exact]"
            } else {
                "[monte-carlo]"
            },
            exp.title()
        );
    }
}

fn cmd_run(options: &Options) -> Result<(), String> {
    let scale = options.scale.unwrap_or(Scale::Full);
    let experiments = select(&options.ids)?;
    if let Some(dir) = &options.out {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    for exp in experiments {
        eprintln!("[cadapt-bench] running {} ({})…", exp.id(), scale.name());
        let record = harness::run_record(exp, scale);
        for table in &record.tables {
            print!("{table}");
            println!();
        }
        eprintln!(
            "[cadapt-bench] {} finished in {:.0} ms ({} metrics, {} boxes advanced)",
            record.experiment,
            record.wall_ms,
            record.metrics.len(),
            record.counters.boxes_advanced
        );
        if let Some(dir) = &options.out {
            let path = dir.join(format!("{}.json", record.experiment));
            std::fs::write(&path, record.to_json())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            eprintln!("[cadapt-bench] wrote {}", path.display());
        }
    }
    Ok(())
}

fn load_golden(dir: &Path, id: &str) -> Result<RunRecord, String> {
    let path = dir.join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading golden {}: {e}", path.display()))?;
    RunRecord::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn cmd_check(options: &Options) -> Result<bool, String> {
    let scale = options.scale.unwrap_or(Scale::Quick);
    let experiments = select(&options.ids)?;
    let mut reports: Vec<CheckReport> = Vec::new();
    for exp in experiments {
        let golden = load_golden(&options.golden, exp.id())?;
        eprintln!("[cadapt-bench] checking {} ({})…", exp.id(), scale.name());
        let fresh = harness::run_record(exp, scale);
        reports.push(harness::compare(&golden, &fresh));
    }
    let mut all_passed = true;
    for report in &reports {
        if report.passed() {
            println!("PASS {}", report.experiment);
        } else {
            all_passed = false;
            println!("FAIL {}", report.experiment);
            for failure in &report.failures {
                println!("  {failure}");
            }
        }
    }
    Ok(all_passed)
}

fn cmd_perf(options: &Options) -> Result<(), String> {
    let scale = options.scale.unwrap_or(Scale::Full);
    eprintln!(
        "[cadapt-bench] timing per-box vs batched ({})…",
        scale.name()
    );
    let suite = cadapt_bench::perf::run(scale);
    print!("{}", suite.table());
    let path = options
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_2.json"));
    std::fs::write(&path, suite.to_json())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    eprintln!("[cadapt-bench] wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let options = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cadapt-bench: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command.as_str() {
        "list" => {
            cmd_list();
            Ok(true)
        }
        "run" => cmd_run(&options).map(|()| true),
        "check" => cmd_check(&options),
        "perf" => cmd_perf(&options).map(|()| true),
        other => {
            eprintln!("cadapt-bench: unknown command {other:?}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("cadapt-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
