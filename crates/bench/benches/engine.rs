//! Criterion benches of the execution engine itself: cursor throughput
//! (boxes/second) across models and profile shapes, and worst-case profile
//! generation.

// Bench targets: criterion's macros generate undocumented items, and Io
// totals are narrowed for throughput reporting only.
#![allow(missing_docs, clippy::cast_possible_truncation)]

use cadapt_core::profile::ConstantSource;
use cadapt_core::BoxSource;
use cadapt_profiles::dist::{DistSource, PowerOfB};
use cadapt_profiles::WorstCase;
use cadapt_recursion::{run_on_profile, AbcParams, ExecModel, RunConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_cursor_worst_case(c: &mut Criterion) {
    let params = AbcParams::mm_scan();
    let mut group = c.benchmark_group("cursor/worst_case");
    for k in [5u32, 6, 7] {
        let n = params.canonical_size(k);
        let wc = WorstCase::for_problem(&params, n).expect("canonical");
        group.throughput(Throughput::Elements(wc.num_boxes() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut source = wc.source();
                run_on_profile(params, n, &mut source, &RunConfig::default())
                    .expect("run completes")
            });
        });
    }
    group.finish();
}

fn bench_cursor_models(c: &mut Criterion) {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(6);
    let mut group = c.benchmark_group("cursor/models");
    for model in [ExecModel::Simplified, ExecModel::capacity()] {
        group.bench_function(model.label(), |b| {
            b.iter(|| {
                let mut source = ConstantSource::new(16);
                let config = RunConfig {
                    model,
                    ..RunConfig::default()
                };
                run_on_profile(params, n, &mut source, &config).expect("run completes")
            });
        });
    }
    group.finish();
}

fn bench_random_profiles(c: &mut Criterion) {
    let params = AbcParams::mm_scan();
    let n = params.canonical_size(6);
    c.bench_function("cursor/random_boxes", |b| {
        b.iter(|| {
            let rng = ChaCha8Rng::seed_from_u64(1);
            let mut source = DistSource::new(PowerOfB::new(4, 0, 6), rng);
            run_on_profile(params, n, &mut source, &RunConfig::default()).expect("run completes")
        });
    });
}

fn bench_profile_generation(c: &mut Criterion) {
    let wc = WorstCase::new(8, 4, 1, 6).expect("valid");
    let boxes = wc.num_boxes() as u64;
    let mut group = c.benchmark_group("profiles/worst_case_gen");
    group.throughput(Throughput::Elements(boxes));
    group.bench_function("stream_depth6", |b| {
        b.iter(|| {
            let mut source = wc.source();
            let mut acc = 0u64;
            for _ in 0..boxes {
                acc = acc.wrapping_add(source.next_box());
            }
            acc
        });
    });
    group.finish();
}

/// Per-box baseline vs the run-length fast path, on the two profile shapes
/// the perf suite (`cadapt-bench perf`) reports: constant boxes and a wide
/// worst-case adversary. Same executions, only `fast_path` differs.
fn bench_batched_vs_per_box(c: &mut Criterion) {
    let mm = AbcParams::mm_scan();
    let constant_n = mm.canonical_size(7);
    let mut group = c.benchmark_group("cursor/batched_vs_per_box");
    for (label, fast_path) in [("per_box", false), ("batched", true)] {
        group.bench_with_input(
            BenchmarkId::new("constant", label),
            &fast_path,
            |b, &fast_path| {
                b.iter(|| {
                    let mut source = ConstantSource::new(16);
                    let config = RunConfig {
                        fast_path,
                        ..RunConfig::default()
                    };
                    run_on_profile(mm, constant_n, &mut source, &config).expect("run completes")
                });
            },
        );
    }
    let wide = AbcParams::new(16, 4, 1.0, 1).expect("valid");
    let depth = 4;
    let wc = WorstCase::new(16, 4, 1, depth).expect("valid");
    let wc_n = wide.canonical_size(depth);
    for (label, fast_path) in [("per_box", false), ("batched", true)] {
        group.throughput(Throughput::Elements(wc.num_boxes() as u64));
        group.bench_with_input(
            BenchmarkId::new("worst_case_a16", label),
            &fast_path,
            |b, &fast_path| {
                b.iter(|| {
                    let mut source = wc.source();
                    let config = RunConfig {
                        fast_path,
                        ..RunConfig::default()
                    };
                    run_on_profile(wide, wc_n, &mut source, &config).expect("run completes")
                });
            },
        );
    }
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    use cadapt_sched::{EqualShares, JobSpec, Scheduler, SchedulerConfig};
    let specs = vec![JobSpec::new(AbcParams::mm_scan(), 4096); 4];
    let config = SchedulerConfig {
        total_cache: 2048,
        ..SchedulerConfig::default()
    };
    c.bench_function("sched/equal_shares_4x4096", |b| {
        b.iter(|| {
            Scheduler::new(&specs, EqualShares, config)
                .expect("admits")
                .run()
                .expect("completes")
        });
    });
}

/// Short measurement windows: the benched kernels are deterministic
/// simulations, so tight timing suffices and the full suite stays fast.
fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_cursor_worst_case,
    bench_cursor_models,
    bench_random_profiles,
    bench_batched_vs_per_box,
    bench_profile_generation,
    analysis_benches::bench_recurrence,
    analysis_benches::bench_monte_carlo,
    bench_scheduler
}
criterion_main!(benches);

// Appended: analysis-layer benches (recurrence engine and Monte-Carlo
// driver throughput).
mod analysis_benches {
    use cadapt_analysis::recurrence::{recurrence_bounds, DiscreteSigma};
    use cadapt_analysis::{monte_carlo_ratio, McConfig};
    use cadapt_profiles::dist::{BoxDist, DistSource, PowerLawBoxes};
    use cadapt_recursion::AbcParams;
    use criterion::Criterion;

    pub fn bench_recurrence(c: &mut Criterion) {
        let dist = PowerLawBoxes::new(4, 0, 12, 1.0);
        let sigma =
            DiscreteSigma::new(dist.discrete_support().expect("discrete")).expect("valid support");
        c.bench_function("analysis/recurrence_depth24", |b| {
            b.iter(|| recurrence_bounds(8, 4, &sigma, 24));
        });
    }

    pub fn bench_monte_carlo(c: &mut Criterion) {
        let params = AbcParams::mm_scan();
        let dist = PowerLawBoxes::new(4, 0, 5, 1.0);
        c.bench_function("analysis/monte_carlo_32trials", |b| {
            b.iter(|| {
                let config = McConfig {
                    trials: 32,
                    ..McConfig::default()
                };
                monte_carlo_ratio(params, 1024, &config, |rng| {
                    DistSource::new(dist.clone(), rng)
                })
                .expect("mc run")
            });
        });
    }
}
