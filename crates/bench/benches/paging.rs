//! Criterion benches of the paging substrate: LRU throughput and trace
//! replay under fixed caches, square profiles, and arbitrary profiles.

// Bench targets: criterion's macros generate undocumented items, and Io
// totals are narrowed for throughput reporting only.
#![allow(missing_docs)]

use cadapt_core::profile::ConstantSource;
use cadapt_core::Potential;
use cadapt_paging::{replay_fixed, replay_memory_profile, replay_square_profile, LruCache};
use cadapt_profiles::contention::sawtooth;
use cadapt_trace::mm::{mm_inplace, mm_scan};
use cadapt_trace::ZMatrix;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn matrices(side: usize) -> (ZMatrix, ZMatrix) {
    let a: Vec<f64> = (0..side * side).map(|i| (i % 9) as f64).collect();
    let b: Vec<f64> = (0..side * side).map(|i| (i % 7) as f64).collect();
    (
        ZMatrix::from_row_major(side, &a),
        ZMatrix::from_row_major(side, &b),
    )
}

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("paging/lru");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("access_1M_zipfish", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(256);
            let mut hits = 0u64;
            for i in 0..1_000_000u64 {
                // A simple skewed pattern: low blocks hot, high blocks cold.
                let block = (i * i + i / 3) % 1024;
                if cache.access(block) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let (a, b) = matrices(32);
    let (_, trace_scan) = mm_scan(&a, &b, 4);
    let (_, trace_inplace) = mm_inplace(&a, &b, 4);
    let mut group = c.benchmark_group("paging/replay");
    group.throughput(Throughput::Elements(trace_scan.accesses()));
    group.bench_function("fixed_mm_scan_32", |bch| {
        bch.iter(|| replay_fixed(&trace_scan, 64));
    });
    group.bench_function("square_mm_scan_32", |bch| {
        bch.iter(|| {
            let mut source = ConstantSource::new(64);
            replay_square_profile(&trace_scan, &mut source, Potential::new(8, 4))
        });
    });
    group.bench_function("square_mm_inplace_32", |bch| {
        bch.iter(|| {
            let mut source = ConstantSource::new(64);
            replay_square_profile(&trace_inplace, &mut source, Potential::new(8, 4))
        });
    });
    let ws = trace_scan.distinct_blocks();
    let profile = sawtooth(ws / 8 + 1, ws, u128::from(ws), u128::from(ws) * 1000);
    group.bench_function("memory_profile_mm_scan_32", |bch| {
        bch.iter(|| replay_memory_profile(&trace_scan, &profile));
    });
    group.finish();
}

fn bench_tracing(c: &mut Criterion) {
    let (a, b) = matrices(32);
    let mut group = c.benchmark_group("trace/generate");
    group.bench_function("mm_scan_32", |bch| bch.iter(|| mm_scan(&a, &b, 4)));
    group.bench_function("mm_inplace_32", |bch| bch.iter(|| mm_inplace(&a, &b, 4)));
    group.finish();
}

/// Short measurement windows: the benched kernels are deterministic
/// simulations, so tight timing suffices and the full suite stays fast.
fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_lru, bench_replay, bench_tracing
}
criterion_main!(benches);
