//! Criterion benches timing one kernel per experiment (E1–E11 + ablations)
//! at Quick scale — regression guards for the harness itself.

// Bench targets: criterion's macros generate undocumented items, and Io
// totals are narrowed for throughput reporting only.
#![allow(missing_docs)]

use cadapt_bench::experiments::*;
use cadapt_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("e1_worst_case_gap", |b| {
        b.iter(|| e1_worst_case_gap::run(Scale::Quick))
    });
    group.bench_function("e2_iid_smoothing", |b| {
        b.iter(|| e2_iid_smoothing::run(Scale::Quick))
    });
    group.bench_function("e3_size_perturb", |b| {
        b.iter(|| e3_size_perturb::run(Scale::Quick))
    });
    group.bench_function("e4_start_shift", |b| {
        b.iter(|| e4_start_shift::run(Scale::Quick))
    });
    group.bench_function("e5_box_order", |b| {
        b.iter(|| e5_box_order::run(Scale::Quick))
    });
    group.bench_function("e6_recurrence", |b| {
        b.iter(|| e6_recurrence::run(Scale::Quick))
    });
    group.bench_function("e7_potential", |b| {
        b.iter(|| e7_potential::run(Scale::Quick))
    });
    group.bench_function("e8_trace_validation", |b| {
        b.iter(|| e8_trace_validation::run(Scale::Quick))
    });
    group.bench_function("e9_taxonomy", |b| b.iter(|| e9_taxonomy::run(Scale::Quick)));
    group.bench_function("e10_contention", |b| {
        b.iter(|| e10_contention::run(Scale::Quick))
    });
    group.bench_function("e11_no_catchup", |b| {
        b.iter(|| e11_no_catchup::run(Scale::Quick))
    });
    group.bench_function("e12_scan_hiding", |b| {
        b.iter(|| e12_scan_hiding::run(Scale::Quick))
    });
    group.bench_function("e13_scheduling", |b| {
        b.iter(|| e13_scheduling::run(Scale::Quick))
    });
    group.bench_function("ablations", |b| b.iter(|| ablations::run(Scale::Quick)));
    group.finish();
}

/// Short measurement windows: the benched kernels are deterministic
/// simulations, so tight timing suffices and the full suite stays fast.
fn short() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = short();
    targets = bench_experiments
}
criterion_main!(benches);
