//! Robustness properties of the run-record format: round-trips are exact,
//! and hostile bytes — truncations at every boundary, random corruption,
//! adversarial field values — produce typed errors, never panics.
//!
//! These tests are the regression net under the parser hardening: every
//! u64→usize narrowing and index in `harness::record` goes through
//! checked casts, so a crafted record file cannot crash the reader.

use cadapt_bench::harness::record::{metric_ci, Metric, RecordError, RunRecord, SCHEMA_VERSION};
use cadapt_core::CounterSnapshot;
use proptest::prelude::*;

fn record_from(
    experiment: String,
    scale: String,
    wall_ms: f64,
    counters: [u64; 5],
    metrics: Vec<(String, f64, f64)>,
    tables: Vec<String>,
    complete: bool,
) -> RunRecord {
    RunRecord {
        schema_version: SCHEMA_VERSION,
        experiment,
        title: "property-generated record".to_string(),
        scale,
        deterministic: complete,
        wall_ms,
        counters: CounterSnapshot {
            boxes_advanced: counters[0],
            cursor_steps: counters[1],
            ios_charged: counters[2],
            cache_hits: counters[3],
            cache_evictions: counters[4],
        },
        metrics: metrics
            .into_iter()
            .map(|(name, value, ci95)| metric_ci(name, value, ci95))
            .collect(),
        tables,
        complete,
    }
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Strings exercising JSON escaping: quotes, backslashes, newlines,
    // non-ASCII.
    proptest::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("\"".to_string()),
            Just("\\".to_string()),
            Just("\n".to_string()),
            Just("é".to_string()),
            Just("metric/1".to_string()),
        ],
        0..8,
    )
    .prop_map(|parts| parts.concat())
}

fn metric_eq(a: &Metric, b: &Metric) -> bool {
    a.name == b.name
        && a.value.to_bits() == b.value.to_bits()
        && a.ci95.to_bits() == b.ci95.to_bits()
}

proptest! {
    #[test]
    fn round_trip_is_exact(
        experiment in text_strategy(),
        scale in text_strategy(),
        wall_ms in prop_oneof![Just(0.0), 0.0..1e9f64],
        counters in proptest::collection::vec(0u64..=u64::MAX, 5),
        metric_values in proptest::collection::vec((text_strategy(), -1e12..1e12f64, 0.0..1e6f64), 0..6),
        tables in proptest::collection::vec(text_strategy(), 0..4),
        complete in proptest::bool::ANY,
    ) {
        let record = record_from(
            experiment,
            scale,
            wall_ms,
            [counters[0], counters[1], counters[2], counters[3], counters[4]],
            metric_values,
            tables,
            complete,
        );
        let text = record.to_json();
        let parsed = RunRecord::from_json(&text).expect("own serialisation must parse");
        prop_assert_eq!(parsed.schema_version, record.schema_version);
        prop_assert_eq!(&parsed.experiment, &record.experiment);
        prop_assert_eq!(&parsed.scale, &record.scale);
        prop_assert_eq!(parsed.wall_ms.to_bits(), record.wall_ms.to_bits());
        prop_assert_eq!(parsed.counters, record.counters);
        prop_assert_eq!(parsed.metrics.len(), record.metrics.len());
        for (a, b) in parsed.metrics.iter().zip(&record.metrics) {
            prop_assert!(metric_eq(a, b), "metric diverged: {:?} vs {:?}", a, b);
        }
        prop_assert_eq!(&parsed.tables, &record.tables);
        prop_assert_eq!(parsed.complete, record.complete);
        // Serialisation is canonical: a second round trip is byte-stable.
        prop_assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn random_byte_flips_never_panic(
        seed_metric in -1e6..1e6f64,
        position_fraction in 0.0..1.0f64,
        replacement in 0u8..=u8::MAX,
    ) {
        let record = record_from(
            "e1".to_string(),
            "quick".to_string(),
            1.5,
            [1, 2, 3, 4, 5],
            vec![("m".to_string(), seed_metric, 0.0)],
            vec!["table\n".to_string()],
            true,
        );
        let mut bytes = record.to_json().into_bytes();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let position = ((bytes.len() - 1) as f64 * position_fraction) as usize;
        bytes[position] = replacement;
        // Whatever the flip produced: a clean parse or a typed error —
        // from_json must return, not panic.
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = RunRecord::from_json(&text);
        }
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_typed_never_a_panic() {
    let record = record_from(
        "e9".to_string(),
        "quick".to_string(),
        12.25,
        [10, 20, 30, 40, 50],
        vec![
            ("alpha".to_string(), 1.0, 0.1),
            ("beta/slope".to_string(), -2.5, 0.0),
        ],
        vec!["line one\nline two\n".to_string()],
        true,
    );
    let text = record.to_json();
    for cut in 0..text.len() {
        let partial = &text[..cut];
        let err = RunRecord::from_json(partial).expect_err("every strict prefix is incomplete");
        assert!(
            matches!(err, RecordError::Syntax { .. } | RecordError::Shape { .. }),
            "cut at {cut}: {err:?}"
        );
    }
    assert!(RunRecord::from_json(&text).is_ok());
}

#[test]
fn hostile_numeric_fields_are_rejected_not_panicked_on() {
    // Each case attacks a numeric narrowing in the parser: huge
    // schema_version (u64→u32), huge counters are fine (u64), negative
    // counters, counters larger than u64, non-numeric wall_ms.
    let cases = [
        "{\"schema_version\": 99999999999999999999}",
        "{\"schema_version\": 184467440737095516150}",
        "{\"schema_version\": -1}",
        "{\"schema_version\": 3, \"experiment\": \"e1\", \"title\": \"t\", \"scale\": \"quick\", \
          \"deterministic\": true, \"wall_ms\": \"soon\", \"counters\": {}, \"metrics\": [], \"tables\": []}",
        "{\"schema_version\": 3, \"experiment\": \"e1\", \"title\": \"t\", \"scale\": \"quick\", \
          \"deterministic\": true, \"wall_ms\": 0.0, \"counters\": {\"boxes_advanced\": -7, \
          \"cursor_steps\": 0, \"ios_charged\": 0, \"cache_hits\": 0, \"cache_evictions\": 0}, \
          \"metrics\": [], \"tables\": []}",
        "{\"schema_version\": 3, \"experiment\": \"e1\", \"title\": \"t\", \"scale\": \"quick\", \
          \"deterministic\": true, \"wall_ms\": 0.0, \"counters\": {\"boxes_advanced\": 99999999999999999999, \
          \"cursor_steps\": 0, \"ios_charged\": 0, \"cache_hits\": 0, \"cache_evictions\": 0}, \
          \"metrics\": [], \"tables\": []}",
        "{\"schema_version\": 3, \"experiment\": \"e1\", \"title\": \"t\", \"scale\": \"quick\", \
          \"deterministic\": true, \"wall_ms\": 0.0, \"counters\": {\"boxes_advanced\": 0, \
          \"cursor_steps\": 0, \"ios_charged\": 0, \"cache_hits\": 0, \"cache_evictions\": 0}, \
          \"metrics\": [{\"name\": 7}], \"tables\": []}",
        "{\"schema_version\": 3, \"experiment\": \"e1\", \"title\": \"t\", \"scale\": \"quick\", \
          \"deterministic\": true, \"wall_ms\": 0.0, \"counters\": {\"boxes_advanced\": 0, \
          \"cursor_steps\": 0, \"ios_charged\": 0, \"cache_hits\": 0, \"cache_evictions\": 0}, \
          \"metrics\": [], \"tables\": [], \"complete\": \"yes\"}",
    ];
    for text in cases {
        let err = RunRecord::from_json(text).expect_err(text);
        assert!(
            matches!(err, RecordError::Syntax { .. } | RecordError::Shape { .. }),
            "{text}: {err:?}"
        );
    }
}

#[test]
fn non_finite_metric_values_survive_the_round_trip() {
    let record = record_from(
        "e7".to_string(),
        "full".to_string(),
        0.0,
        [0; 5],
        vec![
            ("nan".to_string(), f64::NAN, 0.0),
            ("inf".to_string(), f64::INFINITY, 0.0),
            ("ninf".to_string(), f64::NEG_INFINITY, 0.0),
        ],
        vec![],
        true,
    );
    let parsed = RunRecord::from_json(&record.to_json()).expect("specials must round-trip");
    assert!(parsed.metrics[0].value.is_nan());
    assert_eq!(parsed.metrics[1].value.to_bits(), f64::INFINITY.to_bits());
    assert_eq!(
        parsed.metrics[2].value.to_bits(),
        f64::NEG_INFINITY.to_bits()
    );
}
