//! CLI-level crash-safety tests for `cadapt-bench serve`: a daemon
//! killed with SIGKILL mid-job and restarted on the same journal must
//! hand back results byte-identical to an uninterrupted daemon, and the
//! seeded `faults --target serve` suite must be bit-reproducible.

// Test-only code: unwraps abort the test (the right failure mode).
#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_cadapt-bench");

static NEXT: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("cadapt-cli-serve-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon child with its announced address. Keeps the stdout reader
/// so the pipe stays open for the child's lifetime.
struct Served {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

/// Spawn `cadapt-bench serve` on an ephemeral port and read the
/// announce line to learn the resolved address.
fn spawn_serve(journal: &Path) -> Served {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--journal",
            journal.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--health-exp",
            "none",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("daemon announces");
    let addr = line
        .trim()
        .strip_prefix("cadapt-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .to_string();
    Served {
        child,
        addr,
        stdout,
    }
}

/// Wait for the daemon to exit (it does so after a `drain` request) and
/// return its stderr for assertions about the replay summary.
fn wait_drained(served: Served) -> String {
    drop(served.stdout);
    let output = served.child.wait_with_output().expect("daemon exits");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "daemon exited with {:?}; stderr:\n{stderr}",
        output.status
    );
    stderr
}

/// Drive the daemon through the `request` subcommand, one `--line` per
/// request, returning one response line per request.
fn request(addr: &str, lines: &[&str]) -> Vec<String> {
    let mut cmd = Command::new(BIN);
    cmd.args(["request", "--addr", addr]);
    for line in lines {
        cmd.args(["--line", line]);
    }
    let output = cmd.output().expect("request client runs");
    assert!(
        output.status.success(),
        "request failed: {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let responses: Vec<String> = stdout.lines().map(str::to_string).collect();
    assert_eq!(responses.len(), lines.len(), "one response per request");
    responses
}

/// Job 0 retries through ~765–1530 ms of seeded backoff before
/// completing, so a SIGKILL fired right after submission always lands
/// mid-job; job 1 is a plain budget-capped run.
const SLOW_RETRIER: &str = r#"{"op":"submit","spec":{"algo":"Strassen","n":16,"seed":9,"fail_attempts":8,"max_retries":8}}"#;
const BUDGETED: &str = r#"{"op":"submit","spec":{"algo":"MmScan","n":64,"total_cache":8,"max_boxes":5,"seed":3,"key":"cli-budget"}}"#;
const DRAIN: &str = r#"{"op":"drain"}"#;
const RESULTS_0: &str = r#"{"op":"results","id":0}"#;
const RESULTS_1: &str = r#"{"op":"results","id":1}"#;

#[test]
fn kill_dash_nine_recovery_is_byte_identical_to_an_uninterrupted_run() {
    // Baseline: the same two jobs through a daemon that is never killed.
    let baseline_dir = scratch_dir("baseline");
    let served = spawn_serve(&baseline_dir);
    let responses = request(
        &served.addr,
        &[SLOW_RETRIER, BUDGETED, DRAIN, RESULTS_0, RESULTS_1],
    );
    let baseline = [responses[3].clone(), responses[4].clone()];
    assert!(
        baseline[0].contains(r#""ok":true"#),
        "baseline job 0 finished: {}",
        baseline[0]
    );
    wait_drained(served);

    // Crash run: submit the same jobs, then SIGKILL the daemon while
    // job 0 is still sleeping through its backoff schedule.
    let crash_dir = scratch_dir("crash");
    let mut served = spawn_serve(&crash_dir);
    let submits = request(&served.addr, &[SLOW_RETRIER, BUDGETED]);
    assert!(
        submits[0].contains(r#""ok":true"#),
        "submit: {}",
        submits[0]
    );
    served.child.kill().expect("SIGKILL delivered");
    let _ = served.child.wait();

    // Restart on the same journal; replay must see the crash, finish
    // the work, and answer with byte-identical results.
    let served = spawn_serve(&crash_dir);
    let responses = request(&served.addr, &[DRAIN, RESULTS_0, RESULTS_1]);
    assert_eq!(
        responses[1], baseline[0],
        "recovered job 0 must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        responses[2], baseline[1],
        "recovered job 1 must be byte-identical to the uninterrupted run"
    );
    let stderr = wait_drained(served);
    assert!(
        stderr.contains("journal replayed:"),
        "restart must report the replay: {stderr}"
    );
    assert!(
        stderr.contains("clean shutdown: false"),
        "a SIGKILL is not a clean shutdown: {stderr}"
    );
    assert!(
        stderr.contains("drained; journal sealed clean"),
        "the recovered daemon must seal its own shutdown: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn serve_fault_suite_is_bit_reproducible_and_silent_corruption_free() {
    let dir = scratch_dir("faults");
    std::fs::create_dir_all(&dir).unwrap();
    let runs: Vec<(Vec<u8>, String)> = (0..2)
        .map(|round| {
            let out = dir.join(format!("faults-{round}.json"));
            let output = Command::new(BIN)
                .args([
                    "faults",
                    "--target",
                    "serve",
                    "--seed",
                    "7",
                    "--cases",
                    "4",
                    "--out",
                    out.to_str().unwrap(),
                ])
                .output()
                .expect("fault suite runs");
            assert!(
                output.status.success(),
                "fault suite failed: {:?}\nstderr:\n{}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            );
            (
                std::fs::read(&out).expect("report written"),
                String::from_utf8_lossy(&output.stdout).into_owned(),
            )
        })
        .collect();
    assert!(
        runs[0].1.contains("0 silent corruptions"),
        "suite must certify zero silent corruptions: {}",
        runs[0].1
    );
    assert_eq!(
        runs[0].0, runs[1].0,
        "the same seed must produce a byte-identical fault report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
