//! The engine's determinism contract, asserted end to end: running a
//! trial-parallel experiment with one worker and with four workers must
//! produce bit-identical run records — same metric bits, same counters,
//! same rendered tables. Only wall time may differ.

use cadapt_bench::harness::{find, run_record_ctx, RunRecord};
use cadapt_bench::{ExpCtx, Scale};

fn record(id: &str, threads: usize) -> RunRecord {
    let exp = find(id).expect("experiment is registered");
    assert!(
        exp.deterministic(),
        "{id} must declare the determinism contract it is tested against"
    );
    run_record_ctx(exp, ExpCtx::with_threads(Scale::Quick, threads)).expect("experiment runs")
}

fn assert_bit_identical(id: &str) {
    let serial = record(id, 1);
    let fanned = record(id, 4);
    assert_eq!(serial.counters, fanned.counters, "{id}: counters diverged");
    assert_eq!(serial.tables, fanned.tables, "{id}: tables diverged");
    assert_eq!(
        serial.metrics.len(),
        fanned.metrics.len(),
        "{id}: metric count diverged"
    );
    for (a, b) in serial.metrics.iter().zip(&fanned.metrics) {
        assert_eq!(a.name, b.name, "{id}: metric order diverged");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "{id}/{}: value diverged ({} vs {})",
            a.name,
            a.value,
            b.value
        );
        assert_eq!(
            a.ci95.to_bits(),
            b.ci95.to_bits(),
            "{id}/{}: ci95 diverged",
            a.name
        );
    }
}

#[test]
fn e3_is_bit_identical_across_thread_counts() {
    assert_bit_identical("e3");
}

#[test]
fn e4_is_bit_identical_across_thread_counts() {
    assert_bit_identical("e4");
}

#[test]
fn e5_is_bit_identical_across_thread_counts() {
    assert_bit_identical("e5");
}

#[test]
fn e10_is_bit_identical_across_thread_counts() {
    assert_bit_identical("e10");
}

#[test]
fn e11_is_bit_identical_across_thread_counts() {
    assert_bit_identical("e11");
}

#[test]
fn e13_is_bit_identical_across_thread_counts() {
    assert_bit_identical("e13");
}
