//! End-to-end cooperative-cancellation tests against the real
//! `cadapt-bench` binary: `--cancel-after` surfaces the typed outcome as
//! exit code 6, the partial record stays parseable (and is never vouched
//! for by the checkpoint manifest), and a cancelled checkpointed run
//! resumes to records byte-identical to an uninterrupted run's.

use cadapt_bench::harness::RunRecord;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bench_bin() -> &'static str {
    env!("CARGO_BIN_EXE_cadapt-bench")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadapt-cancel-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_bench(args: &[&str]) -> Output {
    Command::new(bench_bin())
        .args(args)
        .output()
        .expect("cadapt-bench spawns")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("exited (not signalled)")
}

fn stderr_text(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A pre-fired token (`--cancel-after 0`) must abort E16's streaming
/// drive with the typed outcome — exit code 6, "cancelled after 0 boxes"
/// — while still persisting a parseable partial record that `check`-style
/// consumers can reject via its `complete: false` marker. Resuming the
/// same directory re-runs the cancelled experiment and lands the exact
/// bytes an uninterrupted checkpointed run produces.
#[test]
fn cancelled_run_exits_6_and_resumes_byte_identical() {
    let cancelled_dir = scratch("resume");
    let reference_dir = scratch("reference");
    let cancelled_arg = cancelled_dir.to_str().expect("utf8 path");
    let reference_arg = reference_dir.to_str().expect("utf8 path");

    // Reference: the same plan, uninterrupted.
    let reference = run_bench(&[
        "run",
        "--exp",
        "e16",
        "--quick",
        "--threads",
        "1",
        "--out",
        reference_arg,
        "--checkpoint-every",
        "1",
    ]);
    assert_eq!(
        exit_code(&reference),
        0,
        "stderr: {}",
        stderr_text(&reference)
    );

    // Victim: the token fires before the first box is streamed.
    let victim = run_bench(&[
        "run",
        "--exp",
        "e16",
        "--quick",
        "--threads",
        "1",
        "--out",
        cancelled_arg,
        "--checkpoint-every",
        "1",
        "--cancel-after",
        "0",
    ]);
    assert_eq!(exit_code(&victim), 6, "stderr: {}", stderr_text(&victim));
    let err = stderr_text(&victim);
    assert!(err.contains("cancellation watcher armed: 0 ms"), "{err}");
    assert!(err.contains("cancelled after 0 boxes"), "{err}");

    // The partial record is on disk, parseable, and honestly incomplete —
    // never a silent stand-in for a healthy record.
    let partial_path = cancelled_dir.join("e16.json");
    let partial_text = std::fs::read_to_string(&partial_path).expect("partial record readable");
    let partial = RunRecord::from_json(&partial_text).expect("partial record parses");
    assert!(!partial.complete, "cancelled record must not claim success");
    assert!(
        partial.tables.concat().contains("cancelled after 0 boxes"),
        "failure table must carry the typed outcome: {:?}",
        partial.tables
    );
    // The checkpoint manifest must not vouch for the partial record:
    // `completed_jobs` and `records` stay empty (each vouched record
    // would carry a `"job"` entry).
    let manifest =
        std::fs::read_to_string(cancelled_dir.join("MANIFEST.json")).expect("manifest readable");
    assert!(
        !manifest.contains("\"job\""),
        "manifest vouches for a cancelled record: {manifest}"
    );

    // Resume without the watcher: the cancelled experiment re-runs and
    // the final record is byte-identical to the uninterrupted run's.
    let resumed = run_bench(&[
        "run",
        "--exp",
        "e16",
        "--quick",
        "--threads",
        "1",
        "--out",
        cancelled_arg,
        "--resume",
    ]);
    assert_eq!(exit_code(&resumed), 0, "stderr: {}", stderr_text(&resumed));
    let got = std::fs::read(cancelled_dir.join("e16.json")).expect("resumed record");
    let want = std::fs::read(reference_dir.join("e16.json")).expect("reference record");
    assert_eq!(
        got, want,
        "resumed record differs from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&cancelled_dir);
    let _ = std::fs::remove_dir_all(&reference_dir);
}

/// An armed watcher that never fires must not disturb a healthy run.
#[test]
fn unfired_watcher_leaves_the_run_untouched() {
    let output = run_bench(&["run", "--exp", "e1", "--quick", "--cancel-after", "600000"]);
    assert_eq!(exit_code(&output), 0, "stderr: {}", stderr_text(&output));
    assert!(
        stderr_text(&output).contains("cancellation watcher armed: 600000 ms"),
        "{}",
        stderr_text(&output)
    );
}
