//! End-to-end fault-tolerance tests against the real `cadapt-bench`
//! binary: golden diagnostics, exit-code mapping, kill-and-resume
//! byte-identity, and fault-suite determinism.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn bench_bin() -> &'static str {
    env!("CARGO_BIN_EXE_cadapt-bench")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cadapt-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run_bench(args: &[&str]) -> Output {
    Command::new(bench_bin())
        .args(args)
        .output()
        .expect("cadapt-bench spawns")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("exited (not signalled)")
}

fn stderr_text(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn record_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("out dir readable")
        .map(|entry| entry.expect("dir entry"))
        .filter(|entry| {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            name.ends_with(".json") && name != "MANIFEST.json"
        })
        .map(|entry| {
            (
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).expect("record readable"),
            )
        })
        .collect();
    files.sort();
    files
}

// ------------------------------------------------------------- S1: check

#[test]
fn check_against_missing_golden_exits_4_and_names_the_cure() {
    let golden_dir = scratch("missing-golden");
    let output = run_bench(&[
        "check",
        "--exp",
        "e1",
        "--quick",
        "--golden",
        golden_dir.to_str().expect("utf8 path"),
    ]);
    assert_eq!(exit_code(&output), 4, "stderr: {}", stderr_text(&output));
    let err = stderr_text(&output);
    assert!(err.contains("golden record for `e1` unusable"), "{err}");
    assert!(err.contains("e1.json"), "{err}");
    assert!(
        err.contains("regenerate with: cadapt-bench run --exp e1"),
        "diagnostic must name the regeneration command: {err}"
    );
    let _ = std::fs::remove_dir_all(&golden_dir);
}

#[test]
fn check_against_malformed_golden_exits_4_with_the_parse_failure() {
    let golden_dir = scratch("malformed-golden");
    std::fs::write(golden_dir.join("e1.json"), "{\"schema_version\": ").expect("write stub");
    let output = run_bench(&[
        "check",
        "--exp",
        "e1",
        "--quick",
        "--golden",
        golden_dir.to_str().expect("utf8 path"),
    ]);
    assert_eq!(exit_code(&output), 4, "stderr: {}", stderr_text(&output));
    let err = stderr_text(&output);
    assert!(err.contains("golden record for `e1` unusable"), "{err}");
    assert!(err.contains("invalid JSON"), "{err}");
    let _ = std::fs::remove_dir_all(&golden_dir);
}

#[test]
fn check_against_mislabelled_golden_exits_4() {
    // A well-formed record that claims to belong to a different
    // experiment must be refused, not silently compared.
    let golden_dir = scratch("mislabelled-golden");
    let committed = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/e2.json");
    std::fs::copy(committed, golden_dir.join("e1.json")).expect("copy committed golden");
    let output = run_bench(&[
        "check",
        "--exp",
        "e1",
        "--quick",
        "--golden",
        golden_dir.to_str().expect("utf8 path"),
    ]);
    assert_eq!(exit_code(&output), 4, "stderr: {}", stderr_text(&output));
    assert!(
        stderr_text(&output).contains("claims to be a record for \"e2\""),
        "{}",
        stderr_text(&output)
    );
    let _ = std::fs::remove_dir_all(&golden_dir);
}

// ------------------------------------------------------- exit-code contract

#[test]
fn usage_errors_exit_2_with_usage_text() {
    let output = run_bench(&["run", "--no-such-flag"]);
    assert_eq!(exit_code(&output), 2);
    let err = stderr_text(&output);
    assert!(err.contains("unknown option"), "{err}");
    assert!(err.contains("usage: cadapt-bench"), "{err}");
}

#[test]
fn resume_without_out_is_a_usage_error() {
    let output = run_bench(&["run", "--exp", "e1", "--quick", "--resume"]);
    assert_eq!(exit_code(&output), 2);
    assert!(
        stderr_text(&output).contains("--checkpoint-every/--resume need --out"),
        "{}",
        stderr_text(&output)
    );
}

#[test]
fn resume_with_a_different_experiment_set_is_refused() {
    // The manifest fingerprints (scale, ids): resuming under a different
    // plan must be a typed checkpoint error (exit 4), not silent reuse.
    let dir = scratch("fingerprint");
    let dir_arg = dir.to_str().expect("utf8 path");
    let first = run_bench(&[
        "run",
        "--exp",
        "e1",
        "--quick",
        "--out",
        dir_arg,
        "--checkpoint-every",
        "1",
    ]);
    assert_eq!(exit_code(&first), 0, "stderr: {}", stderr_text(&first));
    let second = run_bench(&[
        "run", "--exp", "e1,e2", "--quick", "--out", dir_arg, "--resume",
    ]);
    assert_eq!(exit_code(&second), 4, "stderr: {}", stderr_text(&second));
    assert!(
        stderr_text(&second).contains("checkpoint manifest"),
        "{}",
        stderr_text(&second)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------- kill-and-resume

/// SIGKILL a checkpointed run mid-suite, resume it, and require the final
/// records to be byte-identical to an uninterrupted checkpointed run.
#[test]
fn killed_and_resumed_run_matches_uninterrupted_run_byte_for_byte() {
    const EXPS: &str = "e1,e2,e3,e4";
    let interrupted = scratch("kill-resume");
    let reference = scratch("kill-reference");

    // Reference: the same plan, uninterrupted.
    let full = run_bench(&[
        "run",
        "--exp",
        EXPS,
        "--quick",
        "--threads",
        "1",
        "--out",
        reference.to_str().expect("utf8 path"),
        "--checkpoint-every",
        "1",
    ]);
    assert_eq!(exit_code(&full), 0, "stderr: {}", stderr_text(&full));

    // Victim: spawn, wait for the first record to land, SIGKILL.
    let mut victim = Command::new(bench_bin())
        .args([
            "run",
            "--exp",
            EXPS,
            "--quick",
            "--threads",
            "1",
            "--out",
            interrupted.to_str().expect("utf8 path"),
            "--checkpoint-every",
            "1",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("victim spawns");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if !record_files(&interrupted).is_empty() {
            break;
        }
        if victim.try_wait().expect("poll victim").is_some() || Instant::now() > deadline {
            break; // finished before we could kill it — resume still must work
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = victim.kill(); // SIGKILL on unix
    let _ = victim.wait();
    let survivors = record_files(&interrupted).len();
    assert!(
        survivors <= 4,
        "at most the four planned records can exist, found {survivors}"
    );

    // Resume and compare.
    let resumed = run_bench(&[
        "run",
        "--exp",
        EXPS,
        "--quick",
        "--threads",
        "1",
        "--out",
        interrupted.to_str().expect("utf8 path"),
        "--resume",
    ]);
    assert_eq!(exit_code(&resumed), 0, "stderr: {}", stderr_text(&resumed));
    let got = record_files(&interrupted);
    let want = record_files(&reference);
    assert_eq!(
        got.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
        ["e1.json", "e2.json", "e3.json", "e4.json"]
    );
    for ((name_got, bytes_got), (name_want, bytes_want)) in got.iter().zip(&want) {
        assert_eq!(name_got, name_want);
        assert_eq!(
            bytes_got, bytes_want,
            "{name_got}: resumed record differs from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&interrupted);
    let _ = std::fs::remove_dir_all(&reference);
}

// ------------------------------------------------------ fault determinism

#[test]
fn fault_suite_report_is_a_pure_function_of_the_seed() {
    let dir = scratch("faults-determinism");
    let first = dir.join("first.json");
    let second = dir.join("second.json");
    for path in [&first, &second] {
        let output = run_bench(&[
            "faults",
            "--seed",
            "11",
            "--cases",
            "6",
            "--out",
            path.to_str().expect("utf8 path"),
        ]);
        assert_eq!(exit_code(&output), 0, "stderr: {}", stderr_text(&output));
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        assert!(stdout.contains("0 silent corruptions"), "{stdout}");
    }
    let a = std::fs::read(&first).expect("first report");
    let b = std::fs::read(&second).expect("second report");
    assert_eq!(
        a, b,
        "fault reports for the same seed must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
