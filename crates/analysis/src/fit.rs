//! Growth-law classification for adaptivity-ratio sweeps.
//!
//! The experiments produce series (log_b n, R(n)). Theorem 2 says the
//! worst-case series grows linearly in log_b n; Theorem 1 says smoothed
//! series are bounded. [`classify_growth`] fits a line by least squares and
//! applies simple, explicit decision rules so the integration tests and the
//! EXPERIMENTS.md tables can state "who wins" mechanically.

use serde::{Deserialize, Serialize};

/// Least-squares line fit y = slope·x + intercept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fit a line to (x, y) points.
///
/// # Panics
///
/// Panics with fewer than two points or zero x-variance.
#[must_use]
pub fn fit_line(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mean_x) * (p.1 - mean_y)).sum();
    assert!(sxx > 0.0, "x values must not all coincide");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    // cadapt-lint: allow(float-eq) -- sentinel: ss_tot is exactly 0.0 only for a degenerate all-equal sample; division guard
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r2,
    }
}

/// The growth law of a ratio series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthClass {
    /// Bounded — consistent with efficient cache-adaptivity (Θ(1) ratio).
    Constant,
    /// Grows ~linearly in log_b n — the Theorem 2 gap.
    Logarithmic,
    /// Neither rule fired (noisy or intermediate data).
    Indeterminate,
}

impl std::fmt::Display for GrowthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GrowthClass::Constant => "Θ(1)",
            GrowthClass::Logarithmic => "Θ(log n)",
            GrowthClass::Indeterminate => "?",
        };
        f.write_str(s)
    }
}

/// Classify a ratio series measured at points x = log_b n.
///
/// A converging Θ(1) series and a small-slope Θ(log n) series can share a
/// least-squares slope, so the rule uses the *increment trend* — the ratio
/// of mean increments in the last third to those in the first third — to
/// tell sustained growth from convergence. Decision rules (stated in
/// EXPERIMENTS.md):
///
/// * **Logarithmic** — slope ≥ 0.08/level, r² ≥ 0.85, and the increment
///   trend ≥ 0.7 (growth is sustained; the exact worst case has slope 1
///   and trend 1);
/// * **Constant** — slope < 0.05, total rise < 25% of the mean, or
///   increments collapsing (trend ≤ 0.65 with the final increment ≤ 0.1);
/// * otherwise **Indeterminate**.
///
/// # Panics
///
/// Panics with fewer than two points.
#[must_use]
pub fn classify_growth(points: &[(f64, f64)]) -> (GrowthClass, LineFit) {
    let fit = fit_line(points);
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
    let span_x = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max)
        - points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let rise = fit.slope * span_x;
    let increments: Vec<f64> = points.windows(2).map(|w| w[1].1 - w[0].1).collect();
    let (trend, last_increment) = increment_trend(&increments);

    let sustained = trend >= 0.7;
    let collapsing = trend <= 0.65 && last_increment <= 0.1;
    let class = if fit.slope >= 0.08 && fit.r2 >= 0.85 && sustained && !collapsing {
        GrowthClass::Logarithmic
    } else if rise.abs() < 0.25 * mean_y || fit.slope.abs() < 0.05 || collapsing {
        GrowthClass::Constant
    } else {
        GrowthClass::Indeterminate
    };
    (class, fit)
}

/// (mean of last-third increments / mean of first-third increments, last
/// increment). A trend of 1 means steady growth; ≪ 1 means convergence.
/// Degenerate cases (too few increments, non-positive early growth) return
/// trend 1 so the slope rules decide alone.
fn increment_trend(increments: &[f64]) -> (f64, f64) {
    let last = increments.last().copied().unwrap_or(0.0);
    if increments.len() < 4 {
        return (1.0, last);
    }
    let third = (increments.len() / 3).max(1);
    let first: f64 = increments[..third].iter().sum::<f64>() / third as f64;
    let tail: f64 = increments[increments.len() - third..].iter().sum::<f64>() / third as f64; // cadapt-lint: allow(panic-reach) -- third <= len/3 by construction, so len - third >= 0
    if first <= 1e-9 {
        return (1.0, last);
    }
    (tail / first, last)
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let pts: Vec<_> = (1..=8).map(|k| (k as f64, 1.0 + k as f64)).collect();
        let fit = fit_line(&pts);
        assert!((fit.slope - 1.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_series_is_constant() {
        let pts: Vec<_> = (1..=8).map(|k| (k as f64, 2.5)).collect();
        let (class, fit) = classify_growth(&pts);
        assert_eq!(class, GrowthClass::Constant);
        assert!(fit.slope.abs() < 1e-12);
    }

    #[test]
    fn worst_case_series_is_logarithmic() {
        // The exact Theorem 2 shape: ratio = log_b n + 1.
        let pts: Vec<_> = (2..=9).map(|k| (k as f64, k as f64 + 1.0)).collect();
        let (class, _) = classify_growth(&pts);
        assert_eq!(class, GrowthClass::Logarithmic);
    }

    #[test]
    fn noisy_flat_series_is_constant() {
        let pts: Vec<_> = (1..=10)
            .map(|k| (k as f64, 3.0 + 0.1 * ((k * 37) % 5) as f64))
            .collect();
        let (class, _) = classify_growth(&pts);
        assert_eq!(class, GrowthClass::Constant);
    }

    #[test]
    fn noisy_growing_series_is_logarithmic() {
        let pts: Vec<_> = (1..=10)
            .map(|k| (k as f64, 1.0 + 0.9 * k as f64 + 0.2 * ((k * 13) % 3) as f64))
            .collect();
        let (class, fit) = classify_growth(&pts);
        assert_eq!(class, GrowthClass::Logarithmic);
        assert!(fit.slope > 0.7);
    }

    #[test]
    fn display() {
        assert_eq!(GrowthClass::Constant.to_string(), "Θ(1)");
        assert_eq!(GrowthClass::Logarithmic.to_string(), "Θ(log n)");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        let _ = fit_line(&[(1.0, 1.0)]);
    }

    #[test]
    fn converging_series_is_constant() {
        // The MM-Inplace shape: approaches ~2.4 with decaying increments.
        let pts: Vec<_> = (2..=9)
            .map(|k| (k as f64, 2.4 - 3.0 * 0.55f64.powi(k)))
            .collect();
        let (class, _) = classify_growth(&pts);
        assert_eq!(class, GrowthClass::Constant);
    }

    #[test]
    fn small_slope_sustained_growth_is_logarithmic() {
        // The E5 first-child shape: exactly 1 + k/8.
        let pts: Vec<_> = (2..=9).map(|k| (k as f64, 1.0 + k as f64 / 8.0)).collect();
        let (class, fit) = classify_growth(&pts);
        assert_eq!(class, GrowthClass::Logarithmic);
        assert!((fit.slope - 0.125).abs() < 1e-12);
    }

    #[test]
    fn perfect_vertical_scatter_r2() {
        // All y equal: r2 defined as 1 (no variance to explain).
        let fit = fit_line(&[(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]);
        assert_eq!(fit.r2, 1.0);
    }
}
