//! Completed-trial bookkeeping for crash-safe resume.
//!
//! A Monte-Carlo run is a pure function of `(seed, trial)` — per-trial
//! ChaCha8 streams mean trial 17 produces the same sample whether it runs
//! first, last, or in a second process three reboots later. That makes
//! resume *semantically* trivial: remember which trials finished, run the
//! rest, merge in trial order. This module supplies the two pieces:
//!
//! * [`TrialSpans`] — a sorted, disjoint set of half-open `[start, end)`
//!   index spans, the compact on-disk shape for "which trials are done"
//!   (a checkpoint after a clean prefix is one span, not N entries).
//! * [`run_missing_trials`] — a sweep over exactly the trials **not** in
//!   a span set, fail-fast and panic-isolated like
//!   [`try_run_trials`](crate::parallel::try_run_trials()), returning
//!   `(trial, value)` pairs so the caller can merge them with reloaded
//!   results and fold in **trial order** — bit-identical to the
//!   uninterrupted run (asserted in this module's tests against the
//!   order-sensitive Welford reduction).
//!
//! Persistence (where the spans live on disk, checksums, atomic rename)
//! belongs to the bench harness; this module is pure bookkeeping so the
//! fault-injection harness can exercise it without touching a filesystem.

use crate::parallel::{try_run_trials, SweepError};

/// A sorted, disjoint set of half-open `[start, end)` trial-index spans.
///
/// Inserting individual indices coalesces adjacent spans, so a checkpoint
/// of a clean prefix stays one `(0, k)` pair however it was accumulated.
///
/// ```
/// use cadapt_analysis::checkpoint::TrialSpans;
///
/// let mut done = TrialSpans::new();
/// done.insert(0);
/// done.insert(1);
/// done.insert(5);
/// assert_eq!(done.to_pairs(), vec![(0, 2), (5, 6)]);
/// assert_eq!(done.missing(7), vec![2, 3, 4, 6]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrialSpans {
    /// Sorted, disjoint, non-adjacent `(start, end)` half-open spans.
    spans: Vec<(u64, u64)>,
}

impl TrialSpans {
    /// The empty span set.
    #[must_use]
    pub fn new() -> TrialSpans {
        TrialSpans::default()
    }

    /// Rebuild a span set from serialized `(start, end)` pairs.
    ///
    /// Validates the invariants a hostile or corrupted checkpoint could
    /// break: every span non-empty (`start < end`), pairs sorted and
    /// non-overlapping/non-adjacent (adjacent pairs would be two spellings
    /// of the same set, breaking byte-stable re-serialization).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn from_pairs(pairs: &[(u64, u64)]) -> Result<TrialSpans, String> {
        let mut prev_end: Option<u64> = None;
        for &(start, end) in pairs {
            if start >= end {
                return Err(format!("empty or inverted span ({start}, {end})"));
            }
            if let Some(prev) = prev_end {
                if start <= prev {
                    return Err(format!(
                        "span ({start}, {end}) overlaps or touches the previous span ending at {prev}"
                    ));
                }
            }
            prev_end = Some(end);
        }
        Ok(TrialSpans {
            spans: pairs.to_vec(),
        })
    }

    /// The canonical serialized shape: sorted, disjoint `(start, end)`
    /// pairs. `from_pairs(to_pairs())` is the identity.
    #[must_use]
    pub fn to_pairs(&self) -> Vec<(u64, u64)> {
        self.spans.clone()
    }

    /// Is `trial` in the set?
    #[must_use]
    pub fn contains(&self, trial: u64) -> bool {
        self.spans
            .binary_search_by(|&(start, end)| {
                if trial < start {
                    std::cmp::Ordering::Greater
                } else if trial >= end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Number of trials in the set.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.spans.iter().map(|&(start, end)| end - start).sum()
    }

    /// Is the set empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Does the set cover every trial in `[0, trials)`?
    #[must_use]
    pub fn is_complete(&self, trials: u64) -> bool {
        trials == 0 || self.spans == [(0, trials)]
    }

    /// The trials in `[0, trials)` **not** in the set, ascending.
    #[must_use]
    pub fn missing(&self, trials: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for &(start, end) in &self.spans {
            if cursor >= trials {
                break;
            }
            out.extend(cursor..start.min(trials));
            cursor = cursor.max(end);
        }
        out.extend(cursor..trials);
        out
    }

    /// Insert one trial index, coalescing with adjacent spans.
    pub fn insert(&mut self, trial: u64) {
        // Find the first span starting after `trial`.
        let idx = self.spans.partition_point(|&(start, _)| start <= trial);
        // Already covered by the span before the insertion point?
        // cadapt-lint: allow(panic-reach) -- guarded by idx > 0, so idx-1 is a valid span index
        if idx > 0 && trial < self.spans[idx - 1].1 {
            return;
        }
        let glues_left = idx > 0 && self.spans[idx - 1].1 == trial; // cadapt-lint: allow(panic-reach) -- guarded by idx > 0
        let glues_right = idx < self.spans.len() && self.spans[idx].0 == trial + 1;
        match (glues_left, glues_right) {
            (true, true) => {
                self.spans[idx - 1].1 = self.spans[idx].1; // cadapt-lint: allow(panic-reach) -- glues_left implies idx > 0, glues_right implies idx < len
                self.spans.remove(idx);
            }
            (true, false) => self.spans[idx - 1].1 = trial + 1, // cadapt-lint: allow(panic-reach) -- glues_left implies idx > 0
            (false, true) => self.spans[idx].0 = trial,
            (false, false) => self.spans.insert(idx, (trial, trial + 1)),
        }
    }

    /// Fold another span set into this one.
    pub fn merge(&mut self, other: &TrialSpans) {
        for &(start, end) in &other.spans {
            for trial in start..end {
                self.insert(trial);
            }
        }
    }
}

/// Run exactly the trials of `[0, trials)` **not** already in `done`,
/// fail-fast and panic-isolated like
/// [`try_run_trials`](crate::parallel::try_run_trials()), returning the new
/// `(trial, value)` pairs in trial order.
///
/// The caller merges these with its reloaded results and reduces in trial
/// order; because jobs are pure functions of the trial index, the merged
/// sequence is identical to the uninterrupted run's.
///
/// # Errors
///
/// Returns the failing job's [`SweepError`] with the smallest trial
/// index among the *attempted* (missing) trials.
pub fn run_missing_trials<T, E, F>(
    trials: u64,
    threads: usize,
    done: &TrialSpans,
    run: F,
) -> Result<Vec<(u64, T)>, SweepError<E>>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    let missing = done.missing(trials);
    let values = try_run_trials(
        cadapt_core::cast::u64_from_usize(missing.len()),
        threads,
        |i| {
            let trial = missing[cadapt_core::cast::usize_from_u64(i)]; // cadapt-lint: allow(panic-reach) -- the engine only hands out i < missing.len(), the trial count it was given
            run(trial).map_err(|error| (trial, error))
        },
    )
    .map_err(|e| match e {
        // Re-key the engine's dense index onto the real trial index.
        SweepError::Job {
            error: (trial, error),
            ..
        } => SweepError::Job { trial, error },
        SweepError::Panic(mut p) => {
            p.trial = missing[cadapt_core::cast::usize_from_u64(p.trial)]; // cadapt-lint: allow(panic-reach) -- the engine reports panics keyed by the dense index it was given, always < missing.len()
            SweepError::Panic(p)
        }
    })?;
    Ok(missing.into_iter().zip(values).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::trial_rng;
    use crate::stats::Stats;
    use rand::Rng;
    use std::convert::Infallible;

    #[test]
    fn insert_coalesces_spans() {
        let mut s = TrialSpans::new();
        for t in [3, 1, 0, 2] {
            s.insert(t);
        }
        assert_eq!(s.to_pairs(), vec![(0, 4)]);
        s.insert(6);
        assert_eq!(s.to_pairs(), vec![(0, 4), (6, 7)]);
        s.insert(5);
        s.insert(4);
        assert_eq!(s.to_pairs(), vec![(0, 7)]);
        // Re-inserting is a no-op.
        s.insert(2);
        assert_eq!(s.to_pairs(), vec![(0, 7)]);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn contains_and_missing_agree() {
        let mut s = TrialSpans::new();
        for t in [0, 1, 4, 5, 9] {
            s.insert(t);
        }
        let missing = s.missing(11);
        assert_eq!(missing, vec![2, 3, 6, 7, 8, 10]);
        for t in 0..11 {
            assert_eq!(s.contains(t), !missing.contains(&t), "trial {t}");
        }
        assert!(!s.contains(11));
    }

    #[test]
    fn completeness() {
        let mut s = TrialSpans::new();
        assert!(s.is_complete(0));
        assert!(!s.is_complete(3));
        for t in 0..3 {
            s.insert(t);
        }
        assert!(s.is_complete(3));
        assert!(!s.is_complete(4));
        assert!(s.missing(3).is_empty());
    }

    #[test]
    fn pairs_round_trip_and_reject_corruption() {
        let mut s = TrialSpans::new();
        for t in [0, 1, 5, 7, 8] {
            s.insert(t);
        }
        let pairs = s.to_pairs();
        assert_eq!(TrialSpans::from_pairs(&pairs).unwrap(), s);
        assert!(TrialSpans::from_pairs(&[(3, 3)]).is_err(), "empty span");
        assert!(TrialSpans::from_pairs(&[(5, 2)]).is_err(), "inverted span");
        assert!(
            TrialSpans::from_pairs(&[(0, 4), (2, 6)]).is_err(),
            "overlap"
        );
        assert!(
            TrialSpans::from_pairs(&[(0, 4), (4, 6)]).is_err(),
            "adjacent spans must be coalesced"
        );
        assert!(
            TrialSpans::from_pairs(&[(4, 6), (0, 2)]).is_err(),
            "unsorted"
        );
    }

    #[test]
    fn merge_unions() {
        let a = TrialSpans::from_pairs(&[(0, 3), (8, 10)]).unwrap();
        let mut b = TrialSpans::from_pairs(&[(2, 5), (10, 12)]).unwrap();
        b.merge(&a);
        assert_eq!(b.to_pairs(), vec![(0, 5), (8, 12)]);
    }

    #[test]
    fn run_missing_runs_exactly_the_gaps() {
        let done = TrialSpans::from_pairs(&[(0, 2), (5, 8)]).unwrap();
        let fresh = run_missing_trials(10, 2, &done, |t| Ok::<u64, Infallible>(t * t)).unwrap();
        assert_eq!(fresh, vec![(2, 4), (3, 9), (4, 16), (8, 64), (9, 81)]);
    }

    #[test]
    fn run_missing_reports_the_real_trial_index() {
        let done = TrialSpans::from_pairs(&[(0, 4)]).unwrap();
        let err = run_missing_trials(8, 1, &done, |t| if t == 6 { Err("boom") } else { Ok(t) })
            .unwrap_err();
        assert_eq!(
            err,
            SweepError::Job {
                trial: 6,
                error: "boom"
            }
        );

        let err = run_missing_trials(8, 1, &done, |t| {
            if t == 5 {
                panic!("injected");
            }
            Ok::<u64, Infallible>(t)
        })
        .unwrap_err();
        match err {
            SweepError::Panic(p) => assert_eq!(p.trial, 5),
            other => panic!("expected panic, got {other:?}"),
        }
    }

    /// The theorem behind `--resume`: an interrupted-and-resumed Welford
    /// reduction is **bit-identical** to the uninterrupted one, because
    /// trials are pure functions of their index and the merge replays
    /// trial order exactly.
    #[test]
    fn resume_is_bit_identical_to_uninterrupted() {
        const TRIALS: u64 = 64;
        const SEED: u64 = 0x00C0_FFEE;
        let sample = |trial: u64| -> f64 {
            let mut rng = trial_rng(SEED, trial);
            rng.gen_range(0.0_f64..10.0)
        };

        // Uninterrupted reference at one thread count...
        let reference: Vec<f64> = (0..TRIALS).map(sample).collect();
        let mut ref_stats = Stats::new();
        for &x in &reference {
            ref_stats.push(x);
        }

        for threads in [1, 2, 4] {
            // ...versus a run killed after an arbitrary ragged prefix.
            let mut done = TrialSpans::new();
            let mut salvaged: Vec<(u64, f64)> = Vec::new();
            for t in [0, 1, 2, 3, 10, 11, 40] {
                done.insert(t);
                salvaged.push((t, sample(t)));
            }
            let fresh =
                run_missing_trials(TRIALS, threads, &done, |t| Ok::<f64, Infallible>(sample(t)))
                    .unwrap();
            let mut merged = salvaged.clone();
            merged.extend(fresh);
            merged.sort_unstable_by_key(|&(t, _)| t);

            let values: Vec<f64> = merged.iter().map(|&(_, x)| x).collect();
            // Bit-level equality, not approximate: to_bits comparison.
            let as_bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(as_bits(&values), as_bits(&reference), "threads = {threads}");

            let mut stats = Stats::new();
            for &x in &values {
                stats.push(x);
            }
            assert_eq!(
                stats.mean.to_bits(),
                ref_stats.mean.to_bits(),
                "threads = {threads}"
            );
        }
    }
}
