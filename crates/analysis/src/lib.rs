//! # cadapt-analysis — the paper's theory, coded
//!
//! The machinery that turns executions into the paper's quantities:
//!
//! * [`stats`] — streaming mean/variance/confidence intervals for
//!   Monte-Carlo summaries.
//! * [`recurrence`] — the Lemma 3 stopping-time recurrence: given a
//!   discrete box distribution Σ, compute m_n (average n-bounded
//!   potential), p = Pr[|□| ≥ n] · f(n/b), and rigorous lower/upper bounds
//!   on f(n), the expected number of boxes to complete a problem of size n.
//!   Eq. 3 then predicts the expected adaptivity ratio as f(n) · m_n / n^e.
//! * [`parallel`] — the deterministic parallel execution engine: a
//!   work-stealing trial/job fan-out whose trial-ordered reduction makes
//!   every result bit-identical at any thread count, with per-trial panic
//!   isolation (a poisoned trial is a typed failure, not a dead pool).
//! * [`checkpoint`] — completed-trial span bookkeeping for crash-safe
//!   resume: because trial RNG streams are index-keyed, re-running only
//!   the missing trials reproduces the uninterrupted run bit-for-bit.
//! * [`montecarlo`] — deterministic trial driver (on top of [`parallel`])
//!   estimating the same quantities empirically.
//! * [`fit`] — growth-law classification for ratio-vs-log n sweeps: is the
//!   adaptivity ratio Θ(1) (cache-adaptive) or Θ(log_b n) (the gap)?
//! * [`table`] — plain-text / JSON experiment tables shared by the harness
//!   binaries, benches, and integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fit;
pub mod montecarlo;
pub mod parallel;
pub mod recurrence;
pub mod stats;
pub mod table;

pub use checkpoint::{run_missing_trials, TrialSpans};
pub use fit::{classify_growth, GrowthClass, LineFit};
pub use montecarlo::{
    monte_carlo_ratio, monte_carlo_ratio_cancellable, McConfig, McError, McSummary,
};
pub use parallel::{
    resolve_threads, run_indexed, run_trials, run_trials_isolated, try_run_trials, SweepError,
    TrialPanic,
};
pub use recurrence::{
    equation6_checks, equation7_checks, equation8_products, DiscreteSigma, Equation6Check,
    RecurrenceBounds,
};
pub use stats::{Quantiles, Stats};
pub use table::Table;
