//! The Lemma 3 stopping-time recurrence, coded.
//!
//! For an (a, b, 1)-regular algorithm under the §4 simplified model
//! (base-case size 1, box sizes drawn i.i.d. from a discrete Σ), Lemma 3
//! expresses f(n) — the expected number of boxes to complete a problem of
//! size n — in terms of f(n/b):
//!
//! ```text
//!   p     = Pr[|□| ≥ n] · f(n/b)
//!   f(n)  = Σ_{i=1}^{a} (1 − p)^{i−1} · f(n/b)          (subproblems)
//!         + (1 − p)^a · K_scan(n)                        (final scan)
//! ```
//!
//! where K_scan(n), the expected boxes to complete a scan of length n in
//! isolation, satisfies the paper's renewal bound
//! `n ≤ E[K_scan] · E[min(|□|, n)] ≤ 2n − 1`. The scan term is therefore an
//! interval, and [`RecurrenceBounds`] propagates rigorous lower/upper
//! bounds through the recursion. Cache-adaptivity in expectation (Eq. 3)
//! then reads: f(n) ≤ O(n^{log_b a}) / m_n, i.e. the **predicted ratio**
//! f(n) · m_n / n^{log_b a} is O(1).
//!
//! Experiment E6 compares these bounds against the Monte-Carlo measurement
//! of the same quantities.

use cadapt_core::{Blocks, CoreError, Potential};
use cadapt_profiles::dist::BoxDist;
use serde::{Deserialize, Serialize};

/// A discrete box-size distribution with explicit probabilities — the form
/// the recurrence engine consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteSigma {
    /// (size, probability) pairs, sizes strictly increasing, probabilities
    /// summing to 1.
    support: Vec<(Blocks, f64)>,
}

impl DiscreteSigma {
    /// Build from (size, probability) pairs.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the support is empty, sizes are
    /// not strictly increasing/positive, any probability is not in (0, 1],
    /// or the probabilities do not sum to 1 (±1e-9).
    pub fn new(mut support: Vec<(Blocks, f64)>) -> Result<Self, CoreError> {
        let invalid = |message: String| CoreError::InvalidParameter {
            name: "support",
            message,
        };
        if support.is_empty() {
            return Err(invalid("support must be non-empty".into()));
        }
        support.sort_by_key(|&(s, _)| s);
        let mut total = 0.0;
        let mut prev = 0;
        for &(size, p) in &support {
            if size == 0 {
                return Err(invalid("box sizes must be positive".into()));
            }
            if size == prev {
                return Err(invalid(format!("duplicate size {size}")));
            }
            prev = size;
            if !(p > 0.0 && p <= 1.0) {
                return Err(invalid(format!("probability {p} out of (0, 1]")));
            }
            total += p;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(invalid(format!("probabilities sum to {total}, not 1")));
        }
        Ok(DiscreteSigma { support })
    }

    /// From any [`BoxDist`] that exposes a discrete support.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the distribution has no discrete
    /// support or the support is malformed.
    pub fn from_dist(dist: &dyn BoxDist) -> Result<Self, CoreError> {
        let support = dist.discrete_support().ok_or(CoreError::InvalidParameter {
            name: "dist",
            message: format!("{} has no discrete support", dist.label()),
        })?;
        DiscreteSigma::new(support)
    }

    /// The support.
    #[must_use]
    pub fn support(&self) -> &[(Blocks, f64)] {
        &self.support
    }

    /// Pr[|□| ≥ n].
    #[must_use]
    pub fn prob_at_least(&self, n: Blocks) -> f64 {
        self.support
            .iter()
            .filter(|&&(s, _)| s >= n)
            .map(|&(_, p)| p)
            .sum()
    }

    /// E[min(|□|, n)].
    #[must_use]
    pub fn expected_min(&self, n: Blocks) -> f64 {
        self.support.iter().map(|&(s, p)| p * s.min(n) as f64).sum()
    }

    /// m_n = E[min(|□|, n)^{log_b a}] — the average n-bounded potential.
    #[must_use]
    pub fn average_bounded_potential(&self, rho: &Potential, n: Blocks) -> f64 {
        self.support
            .iter()
            .map(|&(s, p)| p * rho.bounded(n, s))
            .sum()
    }
}

/// Rigorous lower/upper bounds on the Lemma 3 quantities at one problem
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecurrenceBounds {
    /// Problem size n.
    pub n: Blocks,
    /// Lower bound on f(n).
    pub f_lo: f64,
    /// Upper bound on f(n).
    pub f_hi: f64,
    /// Lower bound on f′(n) — the expected boxes to complete the problem
    /// *without* its final scan (the subproblem term of Lemma 3): the
    /// quantity Eq. 7 inducts on.
    pub f_prime_lo: f64,
    /// Upper bound on f′(n).
    pub f_prime_hi: f64,
    /// m_n, the average n-bounded potential.
    pub m_n: f64,
    /// Predicted expected adaptivity-ratio interval: f(n) · m_n / n^e.
    pub ratio_lo: f64,
    /// Upper end of the predicted ratio interval.
    pub ratio_hi: f64,
}

impl RecurrenceBounds {
    /// The Eq. 8 factor f(n)/f′(n) at this level — how much the final scan
    /// inflates the stopping time — evaluated within the upper-bound chain
    /// (f_hi and f′_hi are computed from the same recurrence trajectory,
    /// so their ratio tracks the true inflation rather than compounding
    /// interval slop).
    #[must_use]
    pub fn scan_inflation_hi(&self) -> f64 {
        // cadapt-lint: allow(float-eq) -- sentinel: exact 0.0 denominator; division guard returning infinity
        if self.f_prime_hi == 0.0 {
            return f64::INFINITY;
        }
        self.f_hi / self.f_prime_hi
    }

    /// As [`RecurrenceBounds::scan_inflation_hi`], in the lower-bound chain.
    #[must_use]
    pub fn scan_inflation_lo(&self) -> f64 {
        // cadapt-lint: allow(float-eq) -- sentinel: exact 0.0 denominator; division guard returning infinity
        if self.f_prime_lo == 0.0 {
            return f64::INFINITY;
        }
        self.f_lo / self.f_prime_lo
    }
}

/// Evaluate the recurrence bottom-up for problem sizes 1, b, b², …, b^K.
///
/// ```
/// use cadapt_analysis::recurrence::{recurrence_bounds, DiscreteSigma};
///
/// // Σ = point mass at 64: any problem of size ≤ 64 finishes in one box.
/// let sigma = DiscreteSigma::new(vec![(64, 1.0)])?;
/// let bounds = recurrence_bounds(8, 4, &sigma, 3);
/// let at_64 = bounds.last().unwrap();
/// assert_eq!(at_64.n, 64);
/// assert!((at_64.f_lo - 1.0).abs() < 1e-9);
/// assert!((at_64.f_hi - 1.0).abs() < 1e-9);
/// # Ok::<(), cadapt_core::CoreError>(())
/// ```
///
/// Assumes the §4 conventions: base-case size 1, c = 1, scans at the end.
/// Works for any discrete Σ (box sizes need not be powers of b; the
/// simplified model rounds jumps down to canonical sizes, which only
/// tightens the true f(n) towards `f_hi`). Accepts any a ≥ 1, b ≥ 2.
#[must_use]
pub fn recurrence_bounds(
    a: u64,
    b: u64,
    sigma: &DiscreteSigma,
    max_level: u32,
) -> Vec<RecurrenceBounds> {
    let rho = Potential::new(a, b);
    let mut out = Vec::with_capacity(max_level as usize + 1);
    // Base case: any box (size ≥ 1) completes a size-1 problem.
    let mut f_lo = 1.0;
    let mut f_hi = 1.0;
    let m_1 = sigma.average_bounded_potential(&rho, 1);
    out.push(RecurrenceBounds {
        n: 1,
        f_lo,
        f_hi,
        f_prime_lo: 1.0,
        f_prime_hi: 1.0,
        m_n: m_1,
        ratio_lo: f_lo * m_1,
        ratio_hi: f_hi * m_1,
    });
    let mut n: Blocks = 1;
    for _ in 1..=max_level {
        // cadapt-lint: allow(panic-reach) -- deliberate loud overflow guard: a wrapped size would corrupt the bound tables
        n = n.checked_mul(b).expect("problem size overflows u64");
        let p_ge = sigma.prob_at_least(n);
        // p = Pr[|□| ≥ n] · f(n/b), clamped into [0, 1] (it is a genuine
        // probability, q, in the exact analysis).
        let p_lo = (p_ge * f_lo).clamp(0.0, 1.0);
        let p_hi = (p_ge * f_hi).clamp(0.0, 1.0);
        // Subproblem term: Σ_{i=1}^{a} (1 − p)^{i−1} f(n/b); decreasing
        // in p, so lower bound pairs f_lo with p_hi and vice versa.
        // a is a branching factor (single digits in every preset), so the
        // exponent casts to i32 cannot overflow.
        #[allow(clippy::cast_possible_truncation)]
        let geom = |p: f64| -> f64 { (0..a).map(|i| (1.0 - p).powi(i as i32)).sum() };
        let sub_lo = geom(p_hi) * f_lo;
        let sub_hi = geom(p_lo) * f_hi;
        // Scan term: (1 − p)^a · K_scan with n ≤ K_scan · E[min] ≤ 2n − 1.
        let e_min = sigma.expected_min(n);
        #[allow(clippy::cast_possible_truncation)]
        let scan_lo = (1.0 - p_hi).powi(a as i32) * (n as f64 / e_min);
        #[allow(clippy::cast_possible_truncation)]
        let scan_hi = (1.0 - p_lo).powi(a as i32) * ((2 * n - 1) as f64 / e_min);
        f_lo = sub_lo + scan_lo;
        f_hi = sub_hi + scan_hi;
        let m_n = sigma.average_bounded_potential(&rho, n);
        let req = rho.eval(n);
        out.push(RecurrenceBounds {
            n,
            f_lo,
            f_hi,
            // f′(n) is exactly the subproblem term of Lemma 3.
            f_prime_lo: sub_lo,
            f_prime_hi: sub_hi,
            m_n,
            ratio_lo: f_lo * m_n / req,
            ratio_hi: f_hi * m_n / req,
        });
    }
    out
}

/// The Equation 6 diagnostic at one level: the paper's candidate induction
/// step `f(n)/f(n/b) ≤ b^e · m_{n/b}/m_n` — which *can fail* (the scan term
/// can inflate f(n)), which is exactly why the proof needs the scanless
/// f′(n) (Eq. 7) and the telescoping product bound (Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Equation6Check {
    /// Problem size n (the step compares n against n/b).
    pub n: Blocks,
    /// The measured (or recurrence) ratio f(n)/f(n/b).
    pub growth: f64,
    /// The Eq. 6 right-hand side b^e · m_{n/b} / m_n.
    pub bound: f64,
}

impl Equation6Check {
    /// growth / bound: ≤ 1 means the naive induction step holds here.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.growth / self.bound
    }

    /// Does the naive induction step hold at this level?
    #[must_use]
    pub fn holds(&self) -> bool {
        self.margin() <= 1.0 + 1e-9
    }
}

/// Evaluate the Eq. 6 diagnostic for a sequence of per-level expected box
/// counts `f[k] ≈ f(b^k)` (measured or analytic), k = 0 ..= K.
///
/// # Panics
///
/// Panics if fewer than two levels are supplied.
#[must_use]
pub fn equation6_checks(
    a: u64,
    b: u64,
    sigma: &DiscreteSigma,
    f_by_level: &[f64],
) -> Vec<Equation6Check> {
    assert!(f_by_level.len() >= 2, "need at least two levels");
    let rho = Potential::new(a, b);
    let growth_factor = rho.eval(b); // b^e = a
    let mut out = Vec::with_capacity(f_by_level.len() - 1);
    let mut n: Blocks = 1;
    for k in 1..f_by_level.len() {
        // cadapt-lint: allow(panic-reach) -- deliberate loud overflow guard: a wrapped size would corrupt the bound tables
        n = n.checked_mul(b).expect("size overflow");
        let m_n = sigma.average_bounded_potential(&rho, n);
        let m_prev = sigma.average_bounded_potential(&rho, n / b);
        out.push(Equation6Check {
            n,
            growth: f_by_level[k] / f_by_level[k - 1], // cadapt-lint: allow(panic-reach) -- k ranges over 1..len, so k and k-1 both index f_by_level
            bound: growth_factor * m_prev / m_n,
        });
    }
    out
}

/// The Eq. 7 induction step at each level: f′(n)/f(n/b) ≤ b^e · m_{n/b}/m_n,
/// evaluated within the upper-bound chain (f′_hi over f_hi at the previous
/// level — a consistent trajectory, so the ratio tracks the true growth
/// instead of compounding interval slop). Unlike Eq. 6, the paper proves
/// this step *does* hold whenever f(n) is near the adaptivity boundary
/// (Eq. 9), because the troublesome final scan is excluded.
#[must_use]
pub fn equation7_checks(a: u64, b: u64, bounds: &[RecurrenceBounds]) -> Vec<Equation6Check> {
    let rho = Potential::new(a, b);
    let growth_factor = rho.eval(b);
    bounds
        .windows(2)
        .map(|w| {
            let (prev, cur) = (&w[0], &w[1]);
            Equation6Check {
                n: cur.n,
                growth: cur.f_prime_hi / prev.f_hi,
                bound: growth_factor * prev.m_n / cur.m_n,
            }
        })
        .collect()
}

/// The Eq. 8 quantity: Π_k f(b^k)/f′(b^k) — the aggregate inflation from
/// final scans across all levels — evaluated in each consistent bound
/// chain. The paper proves the true product is O(1); both chain estimates
/// converge with it, and callers assert a concrete cap.
#[must_use]
pub fn equation8_products(bounds: &[RecurrenceBounds]) -> (f64, f64) {
    let lo = bounds
        .iter()
        .skip(1) // the base case has no scan
        .map(RecurrenceBounds::scan_inflation_lo)
        .product();
    let hi = bounds
        .iter()
        .skip(1)
        .map(RecurrenceBounds::scan_inflation_hi)
        .product();
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_profiles::dist::{PointMass, PowerOfB};

    #[test]
    fn sigma_validation() {
        assert!(DiscreteSigma::new(vec![]).is_err());
        assert!(DiscreteSigma::new(vec![(0, 1.0)]).is_err());
        assert!(DiscreteSigma::new(vec![(1, 0.5), (1, 0.5)]).is_err());
        assert!(DiscreteSigma::new(vec![(1, 0.5), (2, 0.4)]).is_err());
        assert!(DiscreteSigma::new(vec![(1, 0.5), (2, 0.5)]).is_ok());
        // Unsorted input is sorted.
        let s = DiscreteSigma::new(vec![(4, 0.5), (1, 0.5)]).unwrap();
        assert_eq!(s.support()[0].0, 1);
    }

    #[test]
    fn sigma_moments() {
        let s = DiscreteSigma::new(vec![(1, 0.5), (16, 0.5)]).unwrap();
        assert!((s.prob_at_least(1) - 1.0).abs() < 1e-12);
        assert!((s.prob_at_least(2) - 0.5).abs() < 1e-12);
        assert!((s.prob_at_least(17) - 0.0).abs() < 1e-12);
        assert!((s.expected_min(4) - (0.5 + 2.0)).abs() < 1e-12);
        let rho = Potential::new(8, 4);
        // m_4 = 0.5·1 + 0.5·8.
        assert!((s.average_bounded_potential(&rho, 4) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn from_dist_uses_discrete_support() {
        let d = PowerOfB::new(4, 0, 2);
        let s = DiscreteSigma::from_dist(&d).unwrap();
        assert_eq!(s.support().len(), 3);
    }

    #[test]
    fn point_mass_of_problem_size_gives_one_box() {
        // Σ = point mass at n: every problem of size ≤ n finishes in one
        // box, so f(n) = 1 and the ratio is m_n/n^e = 1 at size n.
        let n = 64u64;
        let sigma = DiscreteSigma::from_dist(&PointMass { size: n }).unwrap();
        let bounds = recurrence_bounds(8, 4, &sigma, 3);
        let at_n = bounds.last().unwrap();
        assert_eq!(at_n.n, 64);
        assert!((at_n.f_lo - 1.0).abs() < 1e-9, "f_lo = {}", at_n.f_lo);
        assert!((at_n.f_hi - 1.0).abs() < 1e-9, "f_hi = {}", at_n.f_hi);
        assert!((at_n.ratio_lo - 1.0).abs() < 1e-9);
    }

    #[test]
    fn point_mass_small_boxes_ratio_is_constant() {
        // Σ = point mass at 1: every box completes one leaf or one scan
        // access. f(n) = total time = Θ(n^{3/2}), m_n = 1, and the ratio
        // f(n)/n^{3/2} stays bounded: point-mass profiles are adaptive.
        let sigma = DiscreteSigma::from_dist(&PointMass { size: 1 }).unwrap();
        let bounds = recurrence_bounds(8, 4, &sigma, 8);
        for w in bounds.windows(2).skip(1) {
            // Ratio bounds must not grow with n.
            assert!(
                w[1].ratio_hi <= w[0].ratio_hi * 1.05 + 0.5,
                "ratio_hi grew: {} -> {}",
                w[0].ratio_hi,
                w[1].ratio_hi
            );
        }
        let last = bounds.last().unwrap();
        assert!(last.ratio_hi < 4.0, "ratio_hi = {}", last.ratio_hi);
        assert!(last.ratio_lo >= 0.9, "ratio_lo = {}", last.ratio_lo);
    }

    #[test]
    fn bounds_are_ordered_and_positive() {
        let sigma = DiscreteSigma::from_dist(&PowerOfB::new(4, 0, 6)).unwrap();
        for (a, b) in [(8u64, 4u64), (7, 4), (3, 2), (16, 4)] {
            let bounds = recurrence_bounds(a, b, &sigma, 8);
            for rb in &bounds {
                assert!(rb.f_lo > 0.0);
                assert!(rb.f_lo <= rb.f_hi + 1e-9, "f bounds crossed at n={}", rb.n);
                assert!(rb.ratio_lo <= rb.ratio_hi + 1e-9);
            }
        }
    }

    #[test]
    fn equation8_telescoping_for_small_box_point_mass() {
        // Σ = point(1): f(n) = T(n) = 8 f(n/4) + n, so the Eq. 6 margin at
        // every level is 1 + n/(8 f(n/4)) — *always* slightly violated,
        // with the excess shrinking geometrically. This is precisely the
        // situation Eq. 8 handles: the product of the margins (the
        // aggregate effect of all scans) stays bounded by a constant.
        let sigma = DiscreteSigma::from_dist(&PointMass { size: 1 }).unwrap();
        // f(4^k) = T(4^k) for (8,4,1) with base 1.
        let mut f = vec![1.0];
        let mut n = 1u64;
        for _ in 1..=10 {
            n *= 4;
            f.push(8.0 * f.last().unwrap() + n as f64);
        }
        let checks = equation6_checks(8, 4, &sigma, &f);
        // Every level individually violates Eq. 6…
        assert!(checks.iter().all(|c| !c.holds()));
        // …by a margin that strictly shrinks towards 1…
        for w in checks.windows(2) {
            assert!(w[1].margin() < w[0].margin());
        }
        // …and whose telescoping product (Eq. 8's quantity) is O(1).
        let product: f64 = checks.iter().map(Equation6Check::margin).product();
        assert!(product < 4.0, "telescoped margin product {product}");
    }

    #[test]
    fn equation6_can_fail_while_adaptivity_holds() {
        // The paper's §4 caveat, exhibited concretely: Σ = point(n₀) with
        // n₀ mid-range. At n = b·n₀ the subproblems finish in one box each
        // but the scan needs b more — f jumps by a + b = 12 while the
        // Eq. 6 bound is only b^e = 8. Yet the Eq. 3 ratio stays bounded:
        // exactly the situation that forces the paper's detour through
        // f′(n) and the telescoping product (Eqs. 7–8).
        let n0 = 64u64;
        let sigma = DiscreteSigma::from_dist(&PointMass { size: n0 }).unwrap();
        let levels = 6u32;
        let bounds = recurrence_bounds(8, 4, &sigma, levels);
        // Analytic f for the simplified model under point(n₀):
        // n ≤ n₀ → 1 box; n = 4n₀ → 8 subproblems + scan 4n₀/n₀ = 12; and
        // f(4^j n₀) = 8 f(4^{j-1} n₀) + 4^j.
        let mut f = vec![1.0, 1.0, 1.0, 1.0]; // n = 1, 4, 16, 64
        f.push(8.0 + 4.0); // n = 256
        f.push(8.0 * f[4] + 16.0); // n = 1024
        f.push(8.0 * f[5] + 64.0); // n = 4096
        let checks = equation6_checks(8, 4, &sigma, &f);
        let violated: Vec<_> = checks.iter().filter(|c| !c.holds()).collect();
        assert!(
            !violated.is_empty(),
            "expected an Eq. 6 violation at the n₀ → 4n₀ step"
        );
        // The violating step is the first one past n₀.
        assert!(violated.iter().any(|c| c.n == 4 * n0));
        // …and yet the recurrence's Eq. 3 ratio prediction stays bounded.
        let max_ratio = bounds.iter().map(|b| b.ratio_hi).fold(0.0, f64::max);
        assert!(max_ratio < 8.0, "ratio exploded: {max_ratio}");
    }

    #[test]
    fn theorem_one_prediction_ratio_bounded_for_mixed_sigma() {
        // Theorem 1: ratios stay O(1) as n grows, for any Σ. Check the
        // recurrence prediction stays bounded over 10 levels for a
        // deliberately awkward two-point distribution.
        let sigma = DiscreteSigma::new(vec![(1, 0.9), (4096, 0.1)]).unwrap();
        let bounds = recurrence_bounds(8, 4, &sigma, 10);
        let max_hi = bounds.iter().map(|b| b.ratio_hi).fold(0.0, f64::max);
        assert!(max_hi < 16.0, "predicted ratio exploded: {max_hi}");
    }

    #[test]
    fn f_prime_excludes_the_scan() {
        // Σ = point(1): f(n) = 8 f(n/4) + n and f′(n) = 8 f(n/4) exactly.
        let sigma = DiscreteSigma::from_dist(&PointMass { size: 1 }).unwrap();
        let bounds = recurrence_bounds(8, 4, &sigma, 6);
        for w in bounds.windows(2) {
            let (prev, cur) = (&w[0], &w[1]);
            assert!((cur.f_prime_lo - 8.0 * prev.f_lo).abs() < 1e-6);
            assert!((cur.f_lo - (cur.f_prime_lo + cur.n as f64)).abs() < 1e-6);
        }
    }

    #[test]
    fn equation7_holds_where_equation6_fails() {
        // point(1) violates every Eq. 6 step (see the telescoping test),
        // but the scanless Eq. 7 step holds at every level: the paper's
        // reason for inducting on f′.
        let sigma = DiscreteSigma::from_dist(&PointMass { size: 1 }).unwrap();
        let bounds = recurrence_bounds(8, 4, &sigma, 10);
        let checks = equation7_checks(8, 4, &bounds);
        assert!(
            checks.iter().all(Equation6Check::holds),
            "margins: {:?}",
            checks
                .iter()
                .map(Equation6Check::margin)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn equation8_products_are_bounded_constants() {
        for dist_support in [
            vec![(1u64, 1.0)],
            vec![(1, 0.5), (256, 0.5)],
            vec![(1, 0.9), (4096, 0.1)],
        ] {
            let sigma = DiscreteSigma::new(dist_support.clone()).unwrap();
            let bounds = recurrence_bounds(8, 4, &sigma, 12);
            let (lo, hi) = equation8_products(&bounds);
            assert!(lo >= 1.0 - 1e-9, "{dist_support:?}: lo {lo}");
            assert!(hi < 8.0, "{dist_support:?}: hi {hi}");
            assert!(lo <= hi + 1e-9);
        }
    }
}
