//! Streaming sample statistics (Welford) and normal-approximation
//! confidence intervals for Monte-Carlo summaries.

use serde::{Deserialize, Serialize};

/// Accumulated statistics of one scalar across trials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Stats {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sum of squared deviations (Welford's M2); variance = m2/(count−1).
    m2: f64,
    /// Smallest sample seen.
    pub min: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl Stats {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Stats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample (Welford's update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction;
    /// Chan et al. combine).
    pub fn merge(&mut self, other: &Stats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval for the mean (normal
    /// approximation, z = 1.96).
    #[must_use]
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Collect an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = Stats::new();
        for x in samples {
            s.push(x);
        }
        s
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={})",
            self.mean,
            self.ci95(),
            self.count
        )
    }
}

/// Exact sample quantiles from a retained sample set (for per-trial ratio
/// distributions where the mean hides tail behaviour, e.g. E5's minima).
#[derive(Debug, Clone, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Empty collector.
    #[must_use]
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Is the collector empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The q-quantile (nearest-rank), q ∈ [0, 1]. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if q is outside [0, 1] or a sample was NaN.
    // The ceil'd rank is clamped into [1, len], so the f64→usize cast cannot
    // land out of range.
    #[allow(clippy::cast_possible_truncation)]
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1]) // cadapt-lint: allow(panic-reach) -- rank is clamped into [1, len] on the previous line
    }

    /// Median (0.5-quantile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Stats::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance: Σ(x−5)² / 7 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_sample() {
        let s = Stats::from_samples([3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn empty() {
        let s = Stats::new();
        assert_eq!(s.count, 0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq = Stats::from_samples(all.iter().copied());
        let mut a = Stats::from_samples(all[..37].iter().copied());
        let b = Stats::from_samples(all[37..].iter().copied());
        a.merge(&b);
        assert_eq!(a.count, seq.count);
        assert!((a.mean - seq.mean).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-8);
        assert_eq!(a.min, seq.min);
        assert_eq!(a.max, seq.max);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Stats::from_samples([1.0, 2.0]);
        let before = s;
        s.merge(&Stats::new());
        assert_eq!(s, before);
        let mut e = Stats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let narrow = Stats::from_samples((0..1000).map(|i| f64::from(i % 2)));
        let wide = Stats::from_samples((0..10).map(|i| f64::from(i % 2)));
        assert!(narrow.ci95() < wide.ci95());
    }

    #[test]
    fn display_formats() {
        let s = Stats::from_samples([1.0, 1.0]);
        let out = s.to_string();
        assert!(out.contains("n=2"));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut q = Quantiles::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(x);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.median(), Some(3.0));
        assert_eq!(q.quantile(0.2), Some(1.0));
        assert_eq!(q.quantile(0.8), Some(4.0));
        assert_eq!(q.quantile(1.0), Some(5.0));
    }

    #[test]
    fn quantiles_empty_and_single() {
        let mut q = Quantiles::new();
        assert_eq!(q.median(), None);
        assert!(q.is_empty());
        q.push(7.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.quantile(0.01), Some(7.0));
        assert_eq!(q.quantile(0.99), Some(7.0));
    }

    #[test]
    fn quantiles_resort_after_push() {
        let mut q = Quantiles::new();
        q.push(2.0);
        assert_eq!(q.median(), Some(2.0));
        q.push(1.0);
        q.push(3.0);
        assert_eq!(q.median(), Some(2.0));
        q.push(0.0);
        q.push(-1.0);
        assert_eq!(q.quantile(0.0), Some(-1.0));
    }
}
