//! Plain-text / JSON experiment tables.
//!
//! Every experiment harness produces a [`Table`]; the binaries print it,
//! the integration tests assert on its cells, and EXPERIMENTS.md embeds the
//! printed form. Keeping one representation avoids the classic drift
//! between what the harness computes and what the docs claim.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A titled table with a header row and string cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// The cell at (row, col).
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Column index by header name.
    #[must_use]
    pub fn column(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// A column parsed as f64 (cells that fail to parse are skipped).
    #[must_use]
    pub fn numeric_column(&self, header: &str) -> Vec<f64> {
        let Some(idx) = self.column(header) else {
            return Vec::new();
        };
        self.rows
            .iter()
            .filter_map(|r| r[idx].split_whitespace().next()?.parse().ok())
            .collect()
    }

    /// Render as aligned plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{cell:<width$}  ", width = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serialise to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never in practice (the type is plain data).
    #[must_use]
    pub fn to_json(&self) -> String {
        // cadapt-lint: allow(panic-reach) -- invariant: plain-data struct, serialisation cannot fail (documented under # Panics)
        serde_json::to_string_pretty(self).expect("tables are serialisable")
    }

    /// Write the JSON form to `dir/<slug>.json`, deriving the slug from the
    /// title (lowercase alphanumerics and dashes).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let path = dir.join(format!("{slug}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float compactly for table cells.
#[must_use]
pub fn fnum(x: f64) -> String {
    // cadapt-lint: allow(float-eq) -- sentinel: formatting special-case for exact zero; both branches render correctly
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new("demo", &["n", "ratio"]);
        t.push_row(vec!["64".into(), "1.5".into()]);
        t.push_row(vec!["256".into(), "1.75".into()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("ratio"));
        assert!(text.contains("256"));
        assert_eq!(t.cell(1, 1), "1.75");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn numeric_column_parses() {
        let mut t = Table::new("demo", &["n", "ratio"]);
        t.push_row(vec!["64".into(), "1.5 ± 0.1".into()]);
        t.push_row(vec!["256".into(), "2.5".into()]);
        assert_eq!(t.numeric_column("ratio"), vec![1.5, 2.5]);
        assert!(t.numeric_column("missing").is_empty());
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("demo", &["x"]);
        t.push_row(vec!["1".into()]);
        let back: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn write_json_slugs_title() {
        let mut t = Table::new("E1: adaptivity ratio (worst case)", &["x"]);
        t.push_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("cadapt-table-test");
        let path = t.write_json(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("e1-"));
        let back: Table = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, t);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.500");
        assert!(fnum(123456.0).contains('e'));
        assert!(fnum(0.0001).contains('e'));
    }
}
