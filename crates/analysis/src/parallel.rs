//! The deterministic parallel execution engine.
//!
//! Every multi-threaded code path in the workspace funnels through this
//! module — the Monte-Carlo driver, the six converted trial-sweep
//! experiments, and `cadapt-bench`'s experiment-level sharding. The
//! determinism contract, stated once and enforced here:
//!
//! * **Work-stealing dispatch, trial-ordered reduction.** Workers claim
//!   the next unclaimed index from a shared atomic counter (a straggler
//!   never idles the other cores), tag every outcome with its index, and
//!   the caller receives the outcomes sorted by index. Any reduction the
//!   caller performs — in particular the order-sensitive f64 Welford
//!   updates in [`Stats`](crate::Stats) — therefore replays the exact
//!   serial sequence, so results are **bit-identical at any thread count**.
//! * **Per-index randomness.** Callers draw randomness only from
//!   [`trial_rng`](crate::montecarlo::trial_rng)`(seed, index)` inside the
//!   job closure; no RNG state crosses trials, so the schedule cannot leak
//!   into the sample path.
//! * **Counter observability.** Each worker records the execution counters
//!   thread-locally and the totals are folded into the calling thread's
//!   open [`Recording`] when the sweep finishes. Counter totals are
//!   per-trial sums, so they too are independent of the schedule.
//!
//! `cadapt-lint`'s `nondet-source` rule bans `thread::spawn` /
//! `crossbeam` in every other library module, so new parallel code must
//! either go through these entry points or extend the engine here.

use cadapt_core::cast;
use cadapt_core::counters::{Recording, SharedCounters};
use std::convert::Infallible;
use std::sync::atomic::{AtomicU64, Ordering};

/// Resolve a requested worker count: `0` means "available parallelism"
/// (falling back to 1 if the host will not say).
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// Run `trials` independent jobs over `threads` workers (0 = available
/// parallelism) and return their results **in trial order**.
///
/// ```
/// use cadapt_analysis::parallel::run_trials;
///
/// let squares = run_trials(8, 2, |trial| trial * trial);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_trials<T, F>(trials: u64, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    match try_run_trials(trials, threads, |trial| Ok::<T, Infallible>(run(trial))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// [`run_trials`] over `usize` indices — the shape `cadapt-bench` uses to
/// shard registry entries.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials(cast::u64_from_usize(jobs), threads, |i| {
        run(cast::usize_from_u64(i))
    })
}

/// Fallible [`run_trials`]: the first job error — "first" meaning the
/// **smallest trial index** among the failures, not whichever worker lost
/// the race — aborts the sweep and is returned.
///
/// Worker counter totals are folded into the caller's open [`Recording`]
/// even on the error path, so partial sweeps stay observable.
///
/// # Errors
///
/// Returns the failing job's error with the smallest trial index.
pub fn try_run_trials<T, E, F>(trials: u64, threads: usize, run: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    let threads = resolve_threads(threads)
        .min(cast::usize_from_u64(trials.max(1)))
        .max(1);
    let next_trial = AtomicU64::new(0);
    let shared_counters = SharedCounters::new();
    let run = &run;
    // A worker's haul: completed (trial, value) pairs, plus the failure
    // that stopped it, if any.
    type Haul<T, E> = (Vec<(u64, T)>, Option<(u64, E)>);
    let hauls: Vec<Haul<T, E>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next_trial;
            let counters = &shared_counters;
            handles.push(scope.spawn(move |_| {
                let recording = Recording::start();
                let mut done: Vec<(u64, T)> = Vec::new();
                let mut failed: Option<(u64, E)> = None;
                loop {
                    let trial = next.fetch_add(1, Ordering::Relaxed);
                    if trial >= trials {
                        break;
                    }
                    match run(trial) {
                        Ok(value) => done.push((trial, value)),
                        Err(e) => {
                            failed = Some((trial, e));
                            break;
                        }
                    }
                }
                counters.add(&recording.finish());
                (done, failed)
            }));
        }
        handles
            .into_iter()
            // cadapt-lint: allow(no-panic-lib) -- worker panics are programming errors; re-raising them is the error policy
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    // cadapt-lint: allow(no-panic-lib) -- worker panics are programming errors; re-raising them is the error policy
    .expect("scope panicked");

    // Make the workers' counts visible to the caller's own recording (a
    // per-trial sum, hence schedule-independent) before any early return.
    let totals = shared_counters.snapshot();
    cadapt_core::counters::count_snapshot(&totals);

    let mut results: Vec<(u64, T)> = Vec::with_capacity(cast::usize_from_u64(trials));
    let mut first_failure: Option<(u64, E)> = None;
    for (done, failed) in hauls {
        results.extend(done);
        if let Some((trial, e)) = failed {
            let earlier = match &first_failure {
                None => true,
                Some((t, _)) => trial < *t,
            };
            if earlier {
                first_failure = Some((trial, e));
            }
        }
    }
    if let Some((_, e)) = first_failure {
        return Err(e);
    }
    results.sort_unstable_by_key(|&(trial, _)| trial);
    Ok(results.into_iter().map(|(_, value)| value).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::counters::{count_boxes, Recording};

    #[test]
    fn results_come_back_in_trial_order_at_any_thread_count() {
        for threads in [1, 2, 4, 0] {
            let got = run_trials(32, threads, |t| 1000 + t);
            let want: Vec<u64> = (0..32).map(|t| 1000 + t).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn zero_trials_is_empty() {
        assert_eq!(run_trials(0, 4, |t| t), Vec::<u64>::new());
    }

    #[test]
    fn worker_counters_fold_into_the_caller_recording() {
        let rec = Recording::start();
        let _ = run_trials(10, 4, |_| count_boxes(3));
        let delta = rec.finish();
        assert_eq!(delta.boxes_advanced, 30);
    }

    #[test]
    fn error_with_smallest_trial_index_wins() {
        for threads in [1, 3, 8] {
            let err = try_run_trials(64, threads, |t| if t % 10 == 7 { Err(t) } else { Ok(t) })
                .unwrap_err();
            assert_eq!(err, 7, "threads = {threads}");
        }
    }

    #[test]
    fn counters_fold_even_when_a_trial_fails() {
        let rec = Recording::start();
        let _ = try_run_trials(8, 2, |t| {
            count_boxes(1);
            if t == 3 {
                Err(())
            } else {
                Ok(())
            }
        });
        assert!(rec.finish().boxes_advanced >= 1);
    }

    #[test]
    fn resolve_threads_zero_means_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn run_indexed_orders_like_run_trials() {
        assert_eq!(run_indexed(5, 2, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }
}
