//! The deterministic parallel execution engine.
//!
//! Every multi-threaded code path in the workspace funnels through this
//! module — the Monte-Carlo driver, the six converted trial-sweep
//! experiments, and `cadapt-bench`'s experiment-level sharding. The
//! determinism contract, stated once and enforced here:
//!
//! * **Work-stealing dispatch, trial-ordered reduction.** Workers claim
//!   the next unclaimed index from a shared atomic counter (a straggler
//!   never idles the other cores), tag every outcome with its index, and
//!   the caller receives the outcomes sorted by index. Any reduction the
//!   caller performs — in particular the order-sensitive f64 Welford
//!   updates in [`Stats`](crate::Stats) — therefore replays the exact
//!   serial sequence, so results are **bit-identical at any thread count**.
//! * **Per-index randomness.** Callers draw randomness only from
//!   [`trial_rng`]`(seed, index)` inside the job closure; no RNG state
//!   crosses trials, so the schedule cannot leak into the sample path.
//!   `trial_rng` is defined here — and only here — because
//!   `cadapt-lint`'s `rng-discipline` rule confines RNG stream minting
//!   to this module.
//! * **Counter observability.** Each worker records the execution counters
//!   thread-locally and the totals are folded into the calling thread's
//!   open [`Recording`] when the sweep finishes. Counter totals are
//!   per-trial sums, so they too are independent of the schedule.
//! * **Panic isolation.** Every trial body runs under
//!   [`std::panic::catch_unwind`]: a panicking trial is reported as a
//!   typed [`TrialPanic`] carrying its trial index, the worker keeps its
//!   pool slot, and the other trials are unaffected. [`try_run_trials`]
//!   surfaces the panic as [`SweepError::Panic`]; [`run_trials_isolated`]
//!   returns a per-trial `Result` so callers (the fault-injection
//!   harness, the engine's degrade-gracefully paths) can keep every
//!   healthy trial. [`run_trials`] re-raises the panic on the calling
//!   thread — its contract is infallible jobs, so a panic there is a
//!   programming error that must stay loud.
//!
//! `cadapt-lint`'s `nondet-source` rule bans `thread::spawn` /
//! `crossbeam` in every other library module, so new parallel code must
//! either go through these entry points or extend the engine here.

use cadapt_core::cast;
use cadapt_core::counters::{Recording, SharedCounters};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::convert::Infallible;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The deterministic per-trial RNG: stream `trial` of `seed`.
///
/// This is the single sanctioned RNG mint in the workspace. The returned
/// value is handed to exactly one trial closure and dropped with it —
/// never stored, never cloned, never re-aimed — which is the invariant
/// the waiver below claims.
#[must_use]
// cadapt-lint: allow(rng-discipline) -- the engine's one sanctioned mint: a fresh stream per (seed, trial), consumed by a single trial closure and dropped with it
pub fn trial_rng(seed: u64, trial: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rng.set_stream(trial);
    rng
}

/// Resolve a requested worker count: `0` means "available parallelism"
/// (falling back to 1 if the host will not say).
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// A trial that panicked, caught at the engine boundary: the trial index
/// plus the rendered panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialPanic {
    /// Index of the trial whose body panicked.
    pub trial: u64,
    /// The panic payload as text (`&str` / `String` payloads verbatim;
    /// anything else is summarised).
    pub message: String,
}

impl fmt::Display for TrialPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trial {} panicked: {}", self.trial, self.message)
    }
}

impl std::error::Error for TrialPanic {}

/// Why a fallible sweep stopped: a job's own error, or a caught panic.
/// Either way the failing trial index is the **smallest** among the
/// failures, not whichever worker lost the race.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError<E> {
    /// A job returned its error type.
    Job {
        /// Index of the failing trial.
        trial: u64,
        /// The job's error.
        error: E,
    },
    /// A job panicked; the panic was caught and the pool survived.
    Panic(TrialPanic),
}

impl<E: fmt::Display> fmt::Display for SweepError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Job { trial, error } => write!(f, "trial {trial} failed: {error}"),
            SweepError::Panic(p) => write!(f, "{p}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for SweepError<E> {}

/// Render a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How one trial ended inside the engine.
enum Outcome<E> {
    Error(E),
    Panicked(String),
}

/// One worker's haul: completed `(trial, value)` pairs plus the failures
/// it observed (a panicking trial does not stop a non-fail-fast worker).
type Haul<T, E> = (Vec<(u64, T)>, Vec<(u64, Outcome<E>)>);

/// The shared work-stealing loop behind every public entry point.
///
/// Returns completed `(trial, value)` pairs and failures `(trial,
/// outcome)` — both sorted by trial index. With `fail_fast`, workers stop
/// claiming new trials once any failure is observed (the already-claimed
/// trials still finish), so an early error does not burn the whole sweep.
fn run_engine<T, E, F>(trials: u64, threads: usize, fail_fast: bool, run: &F) -> Haul<T, E>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    let threads = resolve_threads(threads)
        .min(cast::usize_from_u64(trials.max(1)))
        .max(1);
    let next_trial = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let shared_counters = SharedCounters::new();
    let hauls: Vec<Haul<T, E>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next_trial;
            let stop = &stop;
            let counters = &shared_counters;
            handles.push(scope.spawn(move |_| {
                let recording = Recording::start();
                let mut done: Vec<(u64, T)> = Vec::new();
                let mut failed: Vec<(u64, Outcome<E>)> = Vec::new();
                loop {
                    if fail_fast && stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let trial = next.fetch_add(1, Ordering::Relaxed);
                    if trial >= trials {
                        break;
                    }
                    // AssertUnwindSafe: the closure only reads `Sync` state
                    // and the counters are atomics — a panicking trial
                    // cannot leave either torn, and its own partial work is
                    // discarded with the unwound stack.
                    match catch_unwind(AssertUnwindSafe(|| run(trial))) {
                        Ok(Ok(value)) => done.push((trial, value)),
                        Ok(Err(e)) => {
                            failed.push((trial, Outcome::Error(e)));
                            if fail_fast {
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                        Err(payload) => {
                            failed
                                .push((trial, Outcome::Panicked(panic_message(payload.as_ref()))));
                            if fail_fast {
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
                counters.add(&recording.finish());
                (done, failed)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(haul) => haul,
                // Workers catch trial panics themselves; a panic escaping a
                // worker means the engine's own bookkeeping is broken.
                // cadapt-lint: allow(panic-reach) -- engine-internal invariant: worker bodies cannot unwind past catch_unwind
                Err(payload) => panic!(
                    "engine worker panicked: {}",
                    panic_message(payload.as_ref())
                ),
            })
            .collect()
    })
    // cadapt-lint: allow(panic-reach) -- engine-internal invariant: the scope closure above does not panic
    .expect("scope panicked");

    // Make the workers' counts visible to the caller's own recording (a
    // per-trial sum, hence schedule-independent) before any early return.
    let totals = shared_counters.snapshot();
    cadapt_core::counters::count_snapshot(&totals);

    let mut done: Vec<(u64, T)> = Vec::new();
    let mut failed: Vec<(u64, Outcome<E>)> = Vec::new();
    for (d, f) in hauls {
        done.extend(d);
        failed.extend(f);
    }
    done.sort_unstable_by_key(|&(trial, _)| trial);
    failed.sort_unstable_by_key(|&(trial, _)| trial);
    (done, failed)
}

/// Run `trials` independent jobs over `threads` workers (0 = available
/// parallelism) and return their results **in trial order**.
///
/// ```
/// use cadapt_analysis::parallel::run_trials;
///
/// let squares = run_trials(8, 2, |trial| trial * trial);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// A panicking job is caught at the engine boundary (the pool survives)
/// and re-raised here with its trial index — infallible jobs that panic
/// are programming errors. Use [`run_trials_isolated`] to keep the
/// healthy trials instead.
pub fn run_trials<T, F>(trials: u64, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    match try_run_trials(trials, threads, |trial| Ok::<T, Infallible>(run(trial))) {
        Ok(results) => results,
        Err(SweepError::Job { error, .. }) => match error {},
        // cadapt-lint: allow(panic-reach) -- re-raising an isolated panic with its trial index is this entry point's documented contract
        Err(SweepError::Panic(p)) => panic!("{p}"),
    }
}

/// [`run_trials`] over `usize` indices — the shape `cadapt-bench` uses to
/// shard registry entries.
///
/// # Panics
///
/// As [`run_trials`]: re-raises a job panic with its index.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials(cast::u64_from_usize(jobs), threads, |i| {
        run(cast::usize_from_u64(i))
    })
}

/// Fallible [`run_trials`]: the first failure — "first" meaning the
/// **smallest trial index** among the failures, not whichever worker lost
/// the race — aborts the sweep and is returned. A caught panic is a
/// failure like any other, surfaced as [`SweepError::Panic`] instead of
/// poisoning the pool.
///
/// Worker counter totals are folded into the caller's open [`Recording`]
/// even on the error path, so partial sweeps stay observable.
///
/// # Errors
///
/// Returns the failing job's [`SweepError`] with the smallest trial index.
pub fn try_run_trials<T, E, F>(trials: u64, threads: usize, run: F) -> Result<Vec<T>, SweepError<E>>
where
    T: Send,
    E: Send,
    F: Fn(u64) -> Result<T, E> + Sync,
{
    let (done, mut failed) = run_engine(trials, threads, true, &run);
    if let Some((trial, outcome)) = failed.drain(..).next() {
        return Err(match outcome {
            Outcome::Error(error) => SweepError::Job { trial, error },
            Outcome::Panicked(message) => SweepError::Panic(TrialPanic { trial, message }),
        });
    }
    Ok(done.into_iter().map(|(_, value)| value).collect())
}

/// Run **all** `trials` jobs, isolating panics per trial: the result is
/// one `Result` per trial, in trial order, where a panicked trial carries
/// its [`TrialPanic`] and every other trial's value survives. This is the
/// degrade-gracefully entry point: one poisoned trial costs one slot in
/// the output, never the sweep.
pub fn run_trials_isolated<T, F>(trials: u64, threads: usize, run: F) -> Vec<Result<T, TrialPanic>>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let (done, failed) = run_engine(trials, threads, false, &|trial| {
        Ok::<T, Infallible>(run(trial))
    });
    let mut out: Vec<Result<T, TrialPanic>> = Vec::with_capacity(cast::usize_from_u64(trials));
    let mut done = done.into_iter().peekable();
    let mut failed = failed.into_iter().peekable();
    for trial in 0..trials {
        if done.peek().is_some_and(|&(t, _)| t == trial) {
            // cadapt-lint: allow(panic-reach) -- peek above guarantees the entry exists
            let (_, value) = done.next().expect("peeked");
            out.push(Ok(value));
        } else if failed.peek().is_some_and(|&(t, _)| t == trial) {
            // cadapt-lint: allow(panic-reach) -- peek above guarantees the entry exists
            let (_, outcome) = failed.next().expect("peeked");
            let message = match outcome {
                Outcome::Panicked(message) => message,
                // Infallible jobs cannot produce Outcome::Error.
                Outcome::Error(never) => match never {},
            };
            out.push(Err(TrialPanic { trial, message }));
        } else {
            // Non-fail-fast engines claim every index; a gap is an engine
            // bug, reported as a synthetic panic rather than an abort.
            out.push(Err(TrialPanic {
                trial,
                message: "trial missing from engine output".to_string(),
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_core::counters::{count_boxes, Recording};

    #[test]
    fn results_come_back_in_trial_order_at_any_thread_count() {
        for threads in [1, 2, 4, 0] {
            let got = run_trials(32, threads, |t| 1000 + t);
            let want: Vec<u64> = (0..32).map(|t| 1000 + t).collect();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn zero_trials_is_empty() {
        assert_eq!(run_trials(0, 4, |t| t), Vec::<u64>::new());
    }

    #[test]
    fn worker_counters_fold_into_the_caller_recording() {
        let rec = Recording::start();
        let _ = run_trials(10, 4, |_| count_boxes(3));
        let delta = rec.finish();
        assert_eq!(delta.boxes_advanced, 30);
    }

    #[test]
    fn error_with_smallest_trial_index_wins() {
        for threads in [1, 3, 8] {
            let err = try_run_trials(64, threads, |t| if t % 10 == 7 { Err(t) } else { Ok(t) })
                .unwrap_err();
            assert_eq!(
                err,
                SweepError::Job { trial: 7, error: 7 },
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn counters_fold_even_when_a_trial_fails() {
        let rec = Recording::start();
        let _ = try_run_trials(8, 2, |t| {
            count_boxes(1);
            if t == 3 {
                Err(())
            } else {
                Ok(())
            }
        });
        assert!(rec.finish().boxes_advanced >= 1);
    }

    #[test]
    fn resolve_threads_zero_means_available() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn run_indexed_orders_like_run_trials() {
        assert_eq!(run_indexed(5, 2, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn a_panicking_trial_surfaces_as_a_typed_sweep_error() {
        for threads in [1, 2, 4] {
            let err = try_run_trials(16, threads, |t| {
                if t == 5 {
                    panic!("injected: trial five is cursed");
                }
                Ok::<u64, ()>(t)
            })
            .unwrap_err();
            match err {
                SweepError::Panic(p) => {
                    assert_eq!(p.trial, 5, "threads = {threads}");
                    assert!(p.message.contains("cursed"), "message: {}", p.message);
                }
                other => panic!("expected a panic error, got {other:?}"),
            }
        }
    }

    #[test]
    fn isolated_sweep_keeps_every_healthy_trial() {
        for threads in [1, 2, 4] {
            let results = run_trials_isolated(12, threads, |t| {
                assert!(t % 5 != 3, "injected: trial {t}");
                t * 10
            });
            assert_eq!(results.len(), 12);
            for (t, r) in results.iter().enumerate() {
                let t = t as u64;
                if t % 5 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.trial, t);
                    assert!(p.message.contains("injected"), "message: {}", p.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), t * 10, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn counters_fold_even_when_a_trial_panics() {
        let rec = Recording::start();
        let results = run_trials_isolated(8, 2, |t| {
            count_boxes(2);
            assert!(t != 4, "injected");
            t
        });
        // Every trial counted before its panic point; totals stay exact.
        assert_eq!(rec.finish().boxes_advanced, 16);
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn sweep_error_and_trial_panic_render() {
        let p = TrialPanic {
            trial: 3,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "trial 3 panicked: boom");
        let e: SweepError<&str> = SweepError::Job {
            trial: 1,
            error: "bad",
        };
        assert_eq!(e.to_string(), "trial 1 failed: bad");
        assert_eq!(
            SweepError::<&str>::Panic(p).to_string(),
            "trial 3 panicked: boom"
        );
    }
}
