//! Deterministic, parallel Monte-Carlo estimation of cache-adaptivity in
//! expectation (Definition 3).
//!
//! Each trial draws an independent infinite profile (via a caller-supplied
//! source factory), runs the execution to completion, and records the
//! bounded-potential sum, box count, and adaptivity ratio. Trials fan out
//! over the [`parallel`](crate::parallel) engine's work-stealing workers
//! (each worker claims the next unclaimed trial index), so a straggler
//! trial never idles the other cores. Every trial's randomness comes from
//! a `ChaCha8Rng` seeded by (experiment seed, trial index), and the
//! per-trial outcomes are reduced into the summary statistics *in trial
//! order* on the main thread, so results are bit-identical regardless of
//! thread count or scheduling — the reproducibility rule the HPC guides
//! insist on.

use crate::parallel::{try_run_trials, SweepError, TrialPanic};
use crate::stats::Stats;
use cadapt_core::counters::{CounterSnapshot, Recording};
use cadapt_core::{Blocks, BoxSource, CancelToken, RunCursorExt};
use cadapt_recursion::{run_cursor_on_profile, AbcParams, RunConfig, RunError};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a Monte-Carlo estimate failed, keyed by the offending trial.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// A trial's execution returned a [`RunError`] (bad problem size, box
    /// budget exhausted, …).
    Run {
        /// Index of the failing trial (smallest among the failures).
        trial: u64,
        /// The execution error.
        error: RunError,
    },
    /// A trial panicked; the engine caught it at the trial boundary.
    Panic(TrialPanic),
}

impl From<SweepError<RunError>> for McError {
    fn from(e: SweepError<RunError>) -> McError {
        match e {
            SweepError::Job { trial, error } => McError::Run { trial, error },
            SweepError::Panic(p) => McError::Panic(p),
        }
    }
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::Run { trial, error } => write!(f, "trial {trial} failed: {error}"),
            McError::Panic(p) => write!(f, "{p}"),
        }
    }
}

impl std::error::Error for McError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McError::Run { error, .. } => Some(error),
            McError::Panic(p) => Some(p),
        }
    }
}

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Number of independent trials.
    pub trials: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Base seed; trial i uses stream i of this seed.
    pub seed: u64,
    /// Execution/run settings shared by all trials.
    pub run: RunConfig,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            trials: 64,
            threads: 0,
            seed: 0x00CA_DA97,
            run: RunConfig::default(),
        }
    }
}

/// Aggregated Monte-Carlo outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McSummary {
    /// Problem size.
    pub n: Blocks,
    /// Adaptivity ratio R(n) across trials.
    pub ratio: Stats,
    /// Boxes used across trials (the stopping time S_n; its mean estimates
    /// f(n)).
    pub boxes: Stats,
    /// Bounded-potential sum across trials (Definition 3's expectation).
    pub bounded_potential: Stats,
    /// Execution counters summed over all trials (boxes advanced, I/Os
    /// charged, cursor steps, …) — the observability layer's per-call
    /// totals. Independent of thread count: every trial records into its
    /// worker's thread-local counters and the snapshots are summed.
    pub counters: CounterSnapshot,
}

// The deterministic per-trial RNG constructor lives in the engine module
// (`rng-discipline` confines RNG stream minting there); re-exported here
// because every experiment driver historically imports it from this path.
pub use crate::parallel::trial_rng;

/// Estimate cache-adaptivity in expectation: run `config.trials`
/// independent executions of `params` on problems of size `n`, drawing each
/// trial's profile from `make_source(trial_rng)`.
///
/// ```
/// use cadapt_analysis::{monte_carlo_ratio, McConfig};
/// use cadapt_profiles::dist::{DistSource, PowerOfB};
/// use cadapt_recursion::AbcParams;
///
/// // Theorem 1 in one call: MM-Scan under i.i.d. power-of-4 boxes.
/// let summary = monte_carlo_ratio(
///     AbcParams::mm_scan(),
///     1024,
///     &McConfig { trials: 32, ..McConfig::default() },
///     |rng| DistSource::new(PowerOfB::new(4, 0, 5), rng),
/// )?;
/// assert!(summary.ratio.mean < 3.0); // adaptive in expectation
/// # Ok::<(), cadapt_analysis::McError>(())
/// ```
///
/// # Errors
///
/// Returns the failure with the smallest trial index: a [`RunError`] from
/// a trial's execution (bad problem size, box budget exhausted), or a
/// caught trial panic — the pool survives either way.
pub fn monte_carlo_ratio<S, F>(
    params: AbcParams,
    n: Blocks,
    config: &McConfig,
    make_source: F,
) -> Result<McSummary, McError>
where
    S: BoxSource,
    F: Fn(ChaCha8Rng) -> S + Sync,
{
    mc_drive(params, n, config, None, make_source)
}

/// As [`monte_carlo_ratio`], but every trial's pipeline observes `token`
/// between runs: cancelling it from another thread stops all in-flight
/// trials cooperatively and surfaces the smallest-index trial's
/// [`RunError::Cancelled`].
///
/// # Errors
///
/// As [`monte_carlo_ratio`], plus [`McError::Run`] wrapping
/// [`RunError::Cancelled`] once `token` fires.
pub fn monte_carlo_ratio_cancellable<S, F>(
    params: AbcParams,
    n: Blocks,
    config: &McConfig,
    token: &CancelToken,
    make_source: F,
) -> Result<McSummary, McError>
where
    S: BoxSource,
    F: Fn(ChaCha8Rng) -> S + Sync,
{
    mc_drive(params, n, config, Some(token), make_source)
}

/// The single Monte-Carlo driver: fan trials out over the engine, drive
/// each through the shared cursor loop
/// ([`run_cursor_on_profile`]), reduce in trial order. The historical
/// per-source draining loop this module once carried is gone — profiles
/// stream through `SourceCursor` pipelines with O(1) resident state.
fn mc_drive<S, F>(
    params: AbcParams,
    n: Blocks,
    config: &McConfig,
    token: Option<&CancelToken>,
    make_source: F,
) -> Result<McSummary, McError>
where
    S: BoxSource,
    F: Fn(ChaCha8Rng) -> S + Sync,
{
    let make_source = &make_source;
    // The engine hands outcomes back in trial order, so the f64 Welford
    // update sequence below — and hence every summary bit — is independent
    // of which worker ran which trial. The engine also folds the workers'
    // counter totals into this thread's recording; the local Recording
    // wrapper measures exactly that fold so the summary can report it
    // (outer recordings keep counting through it).
    let recording = Recording::start();
    let outcomes = try_run_trials(config.trials, config.threads, |trial| {
        let source = make_source(trial_rng(config.seed, trial));
        let report = match token {
            Some(t) => {
                let mut pipeline = source.into_cursor().cancellable(t.clone());
                run_cursor_on_profile(params, n, &mut pipeline, &config.run)
            }
            None => {
                let mut pipeline = source.into_cursor();
                run_cursor_on_profile(params, n, &mut pipeline, &config.run)
            }
        };
        report.map(|report| {
            (
                report.ratio(),
                report.boxes_used as f64,
                report.bounded_potential_sum,
            )
        })
    })
    .map_err(McError::from)?;
    let counters = recording.finish();
    let mut ratio = Stats::new();
    let mut boxes = Stats::new();
    let mut potential = Stats::new();
    for (r, b, p) in outcomes {
        ratio.push(r);
        boxes.push(b);
        potential.push(p);
    }
    Ok(McSummary {
        n,
        ratio,
        boxes,
        bounded_potential: potential,
        counters,
    })
}

// Exact float equality in tests is deliberate: outputs are required to be
// bit-identical run to run (see the golden records).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use cadapt_profiles::dist::{DistSource, PointMass, PowerOfB};

    #[test]
    fn point_mass_is_deterministic_across_trials() {
        let params = AbcParams::mm_scan();
        let config = McConfig {
            trials: 8,
            ..McConfig::default()
        };
        let summary = monte_carlo_ratio(params, 64, &config, |rng| {
            DistSource::new(PointMass { size: 16 }, rng)
        })
        .unwrap();
        assert_eq!(summary.ratio.count, 8);
        // All trials identical: zero variance, known ratio 1.5 (see the
        // recursion crate's constant-box test).
        assert!(summary.ratio.std_dev() < 1e-12);
        assert!((summary.ratio.mean - 1.5).abs() < 1e-9);
        assert!((summary.boxes.mean - 12.0).abs() < 1e-9);
    }

    #[test]
    fn reproducible_regardless_of_thread_count() {
        let params = AbcParams::mm_scan();
        let run = |threads| {
            let config = McConfig {
                trials: 16,
                threads,
                seed: 42,
                ..McConfig::default()
            };
            monte_carlo_ratio(params, 256, &config, |rng| {
                DistSource::new(PowerOfB::new(4, 0, 5), rng)
            })
            .unwrap()
        };
        let single = run(1);
        let multi = run(4);
        assert_eq!(single.ratio.count, multi.ratio.count);
        // Trial-ordered reduction: not just close — bit-identical.
        assert_eq!(single.ratio.mean.to_bits(), multi.ratio.mean.to_bits());
        assert_eq!(single.boxes.mean.to_bits(), multi.boxes.mean.to_bits());
        assert_eq!(
            single.bounded_potential.mean.to_bits(),
            multi.bounded_potential.mean.to_bits()
        );
        assert_eq!(single.ratio.min, multi.ratio.min);
        assert_eq!(single.ratio.max, multi.ratio.max);
        // The counter totals are per-trial sums, so they are exactly
        // thread-count independent too.
        assert_eq!(single.counters, multi.counters);
        assert!(single.counters.boxes_advanced > 0);
        assert!(single.counters.ios_charged > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let params = AbcParams::mm_scan();
        let run = |seed| {
            let config = McConfig {
                trials: 8,
                seed,
                ..McConfig::default()
            };
            monte_carlo_ratio(params, 256, &config, |rng| {
                DistSource::new(PowerOfB::new(4, 0, 5), rng)
            })
            .unwrap()
        };
        assert_ne!(run(1).ratio.mean, run(2).ratio.mean);
    }

    #[test]
    fn wald_identity_holds() {
        // E[Σ min(n,|□_i|)^e] = E[S_n] · m_n (optional stopping): the MC
        // estimates of both sides must agree within CI noise.
        let params = AbcParams::mm_scan();
        let dist = PowerOfB::new(4, 0, 4);
        let config = McConfig {
            trials: 256,
            seed: 7,
            ..McConfig::default()
        };
        let summary =
            monte_carlo_ratio(params, 256, &config, |rng| DistSource::new(dist, rng)).unwrap();
        let sigma = crate::recurrence::DiscreteSigma::from_dist(&dist).unwrap();
        let m_n = sigma.average_bounded_potential(&params.potential(), 256);
        let lhs = summary.bounded_potential.mean;
        let rhs = summary.boxes.mean * m_n;
        // Both sides estimate the same expectation; their difference is
        // sampling noise bounded by the (correlated) standard errors.
        let tolerance = 5.0 * (summary.bounded_potential.std_err() + summary.boxes.std_err() * m_n);
        assert!(
            (lhs - rhs).abs() < tolerance,
            "Wald identity violated: {lhs} vs {rhs} (tolerance {tolerance})"
        );
    }

    #[test]
    fn pre_cancelled_token_stops_every_trial() {
        let params = AbcParams::mm_scan();
        let config = McConfig {
            trials: 4,
            ..McConfig::default()
        };
        let token = CancelToken::new();
        token.cancel();
        let err = monte_carlo_ratio_cancellable(params, 256, &config, &token, |rng| {
            DistSource::new(PowerOfB::new(4, 0, 5), rng)
        })
        .unwrap_err();
        assert!(matches!(
            err,
            McError::Run {
                trial: 0,
                error: RunError::Cancelled { after_boxes: 0 }
            }
        ));
    }

    #[test]
    fn cancellation_from_another_thread_propagates_mid_pipeline() {
        // Tiny boxes on a big problem: millions of runs, so cancellation
        // from the watcher thread lands mid-pipeline (and if it somehow
        // did not, the box budget below would fail the test instead).
        let params = AbcParams::mm_scan();
        let config = McConfig {
            trials: 2,
            threads: 1,
            run: RunConfig {
                max_boxes: u64::MAX,
                ..RunConfig::default()
            },
            ..McConfig::default()
        };
        let token = CancelToken::new();
        let watcher = token.clone();
        let handle = std::thread::spawn(move || watcher.cancel());
        let result = monte_carlo_ratio_cancellable(params, 1 << 24, &config, &token, |rng| {
            DistSource::new(PointMass { size: 1 }, rng)
        });
        handle.join().unwrap();
        match result {
            Err(McError::Run {
                error: RunError::Cancelled { .. },
                ..
            }) => {}
            other => panic!("expected a typed cancellation, got {other:?}"),
        }
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let params = AbcParams::mm_scan();
        let config = McConfig {
            trials: 8,
            seed: 42,
            ..McConfig::default()
        };
        let plain = monte_carlo_ratio(params, 256, &config, |rng| {
            DistSource::new(PowerOfB::new(4, 0, 5), rng)
        })
        .unwrap();
        let token = CancelToken::new();
        let tokened = monte_carlo_ratio_cancellable(params, 256, &config, &token, |rng| {
            DistSource::new(PowerOfB::new(4, 0, 5), rng)
        })
        .unwrap();
        // The cancellable wrapper only adds a between-runs flag check:
        // results are bit-identical.
        assert_eq!(plain.ratio.mean.to_bits(), tokened.ratio.mean.to_bits());
        assert_eq!(plain.counters, tokened.counters);
    }

    #[test]
    fn error_propagates() {
        let params = AbcParams::mm_scan();
        let config = McConfig {
            trials: 4,
            run: RunConfig {
                max_boxes: 2,
                ..RunConfig::default()
            },
            ..McConfig::default()
        };
        let err = monte_carlo_ratio(params, 64, &config, |rng| {
            DistSource::new(PointMass { size: 1 }, rng)
        })
        .unwrap_err();
        // Fail-fast with the smallest trial index: trial 0 loses first.
        assert!(matches!(
            err,
            McError::Run {
                trial: 0,
                error: RunError::BoxBudgetExhausted { .. }
            }
        ));
        assert!(err.to_string().contains("trial 0"));
    }
}
